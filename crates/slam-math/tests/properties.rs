//! Property-based tests for the math substrate.

use proptest::prelude::*;
use slam_math::se3::Twist;
use slam_math::solve::{cholesky_solve, NormalEquations};
use slam_math::stats::{percentile, OnlineStats, Summary};
use slam_math::{Mat3, Quat, Se3, Vec3};

fn small_f32() -> impl Strategy<Value = f32> {
    (-10.0f32..10.0).prop_map(|x| x)
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f32(), small_f32(), small_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter_map("non-degenerate", |v| v.normalized())
}

fn angle() -> impl Strategy<Value = f32> {
    -3.0f32..3.0
}

fn pose() -> impl Strategy<Value = Se3> {
    (unit_vec3(), angle(), vec3()).prop_map(|(axis, a, t)| Se3::from_axis_angle(axis, a, t))
}

proptest! {
    #[test]
    fn cross_product_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-2 * (1.0 + a.norm() * b.norm()));
        prop_assert!(c.dot(b).abs() < 1e-2 * (1.0 + a.norm() * b.norm()));
    }

    #[test]
    fn triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-4);
    }

    #[test]
    fn rotation_preserves_norm(axis in unit_vec3(), theta in angle(), v in vec3()) {
        let r = Mat3::from_axis_angle(axis, theta);
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-3 * (1.0 + v.norm()));
    }

    #[test]
    fn rotation_determinant_one(axis in unit_vec3(), theta in angle()) {
        let r = Mat3::from_axis_angle(axis, theta);
        prop_assert!((r.determinant() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mat3_inverse_roundtrip(axis in unit_vec3(), theta in angle(), d in 0.5f32..3.0) {
        // rotation * diagonal scaling is always invertible
        let m = Mat3::from_axis_angle(axis, theta) * Mat3::from_diagonal(Vec3::splat(d));
        let inv = m.inverse().expect("invertible by construction");
        prop_assert!((m * inv).distance(&Mat3::IDENTITY) < 1e-3);
    }

    #[test]
    fn quat_mat_roundtrip(axis in unit_vec3(), theta in angle(), v in vec3()) {
        let q = Quat::from_axis_angle(axis, theta);
        let q2 = Quat::from_mat3(&q.to_mat3());
        prop_assert!((q.rotate(v) - q2.rotate(v)).norm() < 1e-3 * (1.0 + v.norm()));
    }

    #[test]
    fn se3_group_associativity(a in pose(), b in pose(), c in pose(), p in vec3()) {
        let lhs = ((a * b) * c).transform_point(p);
        let rhs = (a * (b * c)).transform_point(p);
        prop_assert!((lhs - rhs).norm() < 1e-2 * (1.0 + p.norm()));
    }

    #[test]
    fn se3_inverse_is_group_inverse(a in pose(), p in vec3()) {
        let q = a.inverse().transform_point(a.transform_point(p));
        prop_assert!((q - p).norm() < 1e-3 * (1.0 + p.norm()));
    }

    #[test]
    fn se3_exp_log_roundtrip(
        v in (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
        w in (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
    ) {
        let xi = Twist::new(Vec3::new(v.0, v.1, v.2), Vec3::new(w.0, w.1, w.2));
        let back = Se3::exp(xi).log();
        prop_assert!((back.v - xi.v).norm() < 1e-3);
        prop_assert!((back.w - xi.w).norm() < 1e-3);
    }

    #[test]
    fn cholesky_solves_random_spd(
        seed in proptest::array::uniform9(-2.0f64..2.0),
        reg in 0.1f64..2.0,
        b in proptest::array::uniform3(-5.0f64..5.0),
    ) {
        // A = M Mᵀ + reg·I is SPD for any M
        let m = [
            [seed[0], seed[1], seed[2]],
            [seed[3], seed[4], seed[5]],
            [seed[6], seed[7], seed[8]],
        ];
        let mut a = [[0.0f64; 3]; 3];
        for r in 0..3 {
            for c in 0..3 {
                for k in 0..3 {
                    a[r][c] += m[r][k] * m[c][k];
                }
            }
            a[r][r] += reg;
        }
        let x = cholesky_solve(a, b).expect("SPD by construction");
        // check A x == b
        for r in 0..3 {
            let mut s = 0.0;
            for c in 0..3 {
                s += a[r][c] * x[c];
            }
            prop_assert!((s - b[r]).abs() < 1e-6 * (1.0 + b[r].abs()));
        }
    }

    #[test]
    fn normal_equations_recover_plane(
        a0 in -5.0f64..5.0,
        a1 in -5.0f64..5.0,
        a2 in -5.0f64..5.0,
    ) {
        // fit z = a0 + a1 x + a2 y to noiseless samples
        let mut ne = NormalEquations::<3>::new();
        for i in 0..5 {
            for j in 0..5 {
                let (x, y) = (i as f64 * 0.7 - 1.0, j as f64 * 0.3 + 0.5);
                ne.add_row(&[1.0, x, y], a0 + a1 * x + a2 * y, 1.0);
            }
        }
        let sol = ne.solve().expect("well-conditioned grid");
        prop_assert!((sol[0] - a0).abs() < 1e-6);
        prop_assert!((sol[1] - a1).abs() < 1e-6);
        prop_assert!((sol[2] - a2).abs() < 1e-6);
    }

    #[test]
    fn online_stats_match_summary(data in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let sum = Summary::of(&data);
        prop_assert!((s.mean() - sum.mean).abs() < 1e-8);
        prop_assert!((s.std_dev() - sum.std_dev).abs() < 1e-6);
        prop_assert_eq!(s.min(), sum.min);
        prop_assert_eq!(s.max(), sum.max);
    }

    #[test]
    fn percentile_is_monotone(data in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
        let p25 = percentile(&data, 25.0);
        let p50 = percentile(&data, 50.0);
        let p75 = percentile(&data, 75.0);
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn percentile_within_range(data in proptest::collection::vec(-100.0f64..100.0, 1..40), p in 0.0f64..100.0) {
        let v = percentile(&data, p);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn slerp_angle_monotone(axis in unit_vec3(), theta in 0.1f32..2.8, t in 0.0f32..1.0) {
        let q = Quat::IDENTITY.slerp(Quat::from_axis_angle(axis, theta), t);
        prop_assert!((q.angle() - t * theta).abs() < 1e-2);
    }

    #[test]
    fn look_at_is_rigid(eye in vec3(), target in vec3()) {
        prop_assume!((eye - target).norm() > 0.1);
        let pose = Se3::look_at(eye, target, Vec3::Y);
        let r = pose.rotation();
        prop_assert!((r.determinant() - 1.0).abs() < 1e-3);
        prop_assert!((r * r.transpose()).distance(&Mat3::IDENTITY) < 1e-3);
    }
}
