//! Small fixed-size `f32` vectors.
//!
//! These are deliberately plain value types with public fields (they are
//! "compound, passive data structures" in the C spirit) and implement the
//! arithmetic operators one expects from a graphics/robotics vector type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-D `f32` vector, used for image-plane coordinates.
///
/// # Examples
///
/// ```
/// use slam_math::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

/// A 3-D `f32` vector, used for points, directions and normals.
///
/// # Examples
///
/// ```
/// use slam_math::Vec3;
/// let a = Vec3::new(1.0, 0.0, 0.0);
/// let b = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-D `f32` vector, used for homogeneous coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Vec2 {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.dot(self)
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// All components one.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector in the direction of `self`, or `None` when
    /// the length is below [`crate::EPS`].
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Like [`Vec3::normalized`] but returns the zero vector for degenerate
    /// inputs instead of `None`. Useful in shading/normal-map code where a
    /// hole simply propagates.
    #[inline]
    pub fn normalized_or_zero(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::ZERO)
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn component_mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f32 {
        (self - rhs).norm()
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Extends to homogeneous coordinates with the given `w`.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4 {
            x: self.x,
            y: self.y,
            z: self.z,
            w,
        }
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Vec4 = Vec4 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
        Vec4 { x, y, z, w }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec4) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Drops the homogeneous component without dividing.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Performs the homogeneous divide, returning `None` when `w` is
    /// (almost) zero.
    #[inline]
    pub fn project(self) -> Option<Vec3> {
        if self.w.abs() < crate::EPS {
            None
        } else {
            Some(Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w))
        }
    }
}

macro_rules! impl_vec_ops {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty { $ty { $($f: self.$f + rhs.$f),+ } }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty { $ty { $($f: self.$f - rhs.$f),+ } }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty { $ty { $($f: -self.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f32) -> $ty { $ty { $($f: self.$f * rhs),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty { rhs * self }
        }
        impl Div<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f32) -> $ty { $ty { $($f: self.$f / rhs),+ } }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) { *self = *self + rhs; }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) { *self = *self - rhs; }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) { *self = *self * rhs; }
        }
        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, rhs: f32) { *self = *self / rhs; }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);
impl_vec_ops!(Vec4, x, y, z, w);

impl Index<usize> for Vec3 {
    type Output = f32;

    /// # Panics
    ///
    /// Panics when `i > 2`.
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // xtask-allow: panic-path — reason: std `Index` contract: out-of-bounds access must panic (documented above)
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    /// # Panics
    ///
    /// Panics when `i > 2`.
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            // xtask-allow: panic-path — reason: std `IndexMut` contract: out-of-bounds access must panic (documented above)
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> [f32; 3] {
        v.to_array()
    }
}

impl From<(f32, f32)> for Vec2 {
    fn from((x, y): (f32, f32)) -> Vec2 {
        Vec2::new(x, y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.4}, {:.4}, {:.4}, {:.4})",
            self.x, self.y, self.z, self.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn normalized_rejects_tiny_vectors() {
        assert!(Vec3::new(1e-9, 0.0, 0.0).normalized().is_none());
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::ZERO;
        let b = Vec3::ONE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(0.5));
    }

    #[test]
    fn homogeneous_roundtrip() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        let h = v.extend(2.0);
        assert_eq!(h.project().unwrap(), v / 2.0);
        assert_eq!(h.truncate(), v);
        assert!(v.extend(0.0).project().is_none());
    }

    #[test]
    fn indexing_matches_fields() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[2], 9.0);
        v[1] = -1.0;
        assert_eq!(v.y, -1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
        assert!(!format!("{}", Vec2::ZERO).is_empty());
        assert!(!format!("{}", Vec4::ZERO).is_empty());
    }

    #[test]
    fn array_conversions_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
