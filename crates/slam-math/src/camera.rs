//! Pinhole camera projective geometry.
//!
//! Shared by the synthetic renderer (world → image) and the KinectFusion
//! pipeline (image → vertex map), so it lives with the rest of the
//! projective math.

use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pinhole camera intrinsics for an image of `width` × `height` pixels.
///
/// The camera frame convention is +z forward (optical axis), +x right,
/// +y down — the usual RGB-D sensor convention.
///
/// # Examples
///
/// ```
/// use slam_math::camera::PinholeCamera;
/// use slam_math::Vec3;
///
/// let cam = PinholeCamera::kinect();
/// let p = Vec3::new(0.0, 0.0, 2.0);            // on the optical axis
/// let px = cam.project(p).unwrap();
/// assert!((px.x - cam.cx).abs() < 1e-4);
/// let back = cam.unproject(px, 2.0);           // depth 2 m
/// assert!((back - p).norm() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinholeCamera {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length in pixels (x).
    pub fx: f32,
    /// Focal length in pixels (y).
    pub fy: f32,
    /// Principal point x.
    pub cx: f32,
    /// Principal point y.
    pub cy: f32,
}

impl PinholeCamera {
    /// Creates intrinsics from explicit parameters.
    pub const fn new(
        width: usize,
        height: usize,
        fx: f32,
        fy: f32,
        cx: f32,
        cy: f32,
    ) -> PinholeCamera {
        PinholeCamera {
            width,
            height,
            fx,
            fy,
            cx,
            cy,
        }
    }

    /// The Microsoft Kinect / ICL-NUIM standard intrinsics: 640×480,
    /// focal length 525 px, principal point at…  the image centre
    /// (within half a pixel), matching the dataset SLAMBench ships.
    pub const fn kinect() -> PinholeCamera {
        PinholeCamera::new(640, 480, 525.0, 525.0, 319.5, 239.5)
    }

    /// A quarter-resolution camera useful in tests (160×120, same field of
    /// view as [`PinholeCamera::kinect`]).
    pub const fn tiny() -> PinholeCamera {
        PinholeCamera::new(160, 120, 131.25, 131.25, 79.5, 59.5)
    }

    /// Scales the intrinsics down by an integer factor, as the
    /// `compute_size_ratio` parameter and the tracking pyramid do.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero.
    pub fn scaled_down(&self, factor: usize) -> PinholeCamera {
        assert!(factor > 0, "scale factor must be positive");
        let f = factor as f32;
        PinholeCamera {
            width: self.width / factor,
            height: self.height / factor,
            fx: self.fx / f,
            fy: self.fy / f,
            // principal point convention: centre of the scaled image
            cx: (self.cx + 0.5) / f - 0.5,
            cy: (self.cy + 0.5) / f - 0.5,
        }
    }

    /// Number of pixels in the image.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Projects a camera-frame point onto the image plane. Returns `None`
    /// for points at or behind the camera (`z <= 0`).
    ///
    /// The result may lie outside the image bounds; combine with
    /// [`PinholeCamera::contains`] when visibility matters.
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        if p.z <= crate::EPS {
            return None;
        }
        Some(Vec2::new(
            self.fx * p.x / p.z + self.cx,
            self.fy * p.y / p.z + self.cy,
        ))
    }

    /// Back-projects pixel `px` at `depth` metres to a camera-frame point.
    pub fn unproject(&self, px: Vec2, depth: f32) -> Vec3 {
        Vec3::new(
            (px.x - self.cx) * depth / self.fx,
            (px.y - self.cy) * depth / self.fy,
            depth,
        )
    }

    /// The unit ray direction through pixel `(u, v)` (pixel centres).
    pub fn ray_direction(&self, u: f32, v: f32) -> Vec3 {
        // the z component is 1, so the norm is >= 1 and normalisation
        // cannot fail; the optical-axis fallback is unreachable
        Vec3::new((u - self.cx) / self.fx, (v - self.cy) / self.fy, 1.0)
            .normalized()
            .unwrap_or(Vec3::Z)
    }

    /// True when the (sub-pixel) coordinate lies inside the image.
    pub fn contains(&self, px: Vec2) -> bool {
        px.x >= 0.0
            && px.y >= 0.0
            && px.x <= (self.width - 1) as f32
            && px.y <= (self.height - 1) as f32
    }

    /// Horizontal field of view in radians.
    pub fn fov_x(&self) -> f32 {
        2.0 * (self.width as f32 / (2.0 * self.fx)).atan()
    }

    /// Vertical field of view in radians.
    pub fn fov_y(&self) -> f32 {
        2.0 * (self.height as f32 / (2.0 * self.fy)).atan()
    }
}

impl Default for PinholeCamera {
    fn default() -> PinholeCamera {
        PinholeCamera::kinect()
    }
}

impl fmt::Display for PinholeCamera {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} fx={:.1} fy={:.1} cx={:.1} cy={:.1}",
            self.width, self.height, self.fx, self.fy, self.cx, self.cy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_unproject_roundtrip() {
        let cam = PinholeCamera::kinect();
        let p = Vec3::new(0.3, -0.2, 1.7);
        let px = cam.project(p).unwrap();
        let q = cam.unproject(px, p.z);
        assert!((p - q).norm() < 1e-4);
    }

    #[test]
    fn behind_camera_does_not_project() {
        let cam = PinholeCamera::kinect();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam.project(Vec3::new(1.0, 1.0, 0.0)).is_none());
    }

    #[test]
    fn centre_pixel_on_optical_axis() {
        let cam = PinholeCamera::kinect();
        let px = cam.project(Vec3::new(0.0, 0.0, 3.0)).unwrap();
        assert!((px.x - cam.cx).abs() < 1e-4);
        assert!((px.y - cam.cy).abs() < 1e-4);
    }

    #[test]
    fn ray_direction_is_unit_and_consistent() {
        let cam = PinholeCamera::kinect();
        let d = cam.ray_direction(100.0, 200.0);
        assert!((d.norm() - 1.0).abs() < 1e-5);
        // walking along the ray and projecting lands on the same pixel
        let p = d * 2.5;
        let px = cam.project(p).unwrap();
        assert!((px.x - 100.0).abs() < 1e-2);
        assert!((px.y - 200.0).abs() < 1e-2);
    }

    #[test]
    fn scaled_down_preserves_field_of_view() {
        let cam = PinholeCamera::kinect();
        let half = cam.scaled_down(2);
        assert_eq!(half.width, 320);
        assert_eq!(half.height, 240);
        assert!((cam.fov_x() - half.fov_x()).abs() < 1e-3);
        assert!((cam.fov_y() - half.fov_y()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_by_zero_panics() {
        let _ = PinholeCamera::kinect().scaled_down(0);
    }

    #[test]
    fn contains_checks_bounds() {
        let cam = PinholeCamera::tiny();
        assert!(cam.contains(Vec2::new(0.0, 0.0)));
        assert!(cam.contains(Vec2::new(159.0, 119.0)));
        assert!(!cam.contains(Vec2::new(-0.5, 10.0)));
        assert!(!cam.contains(Vec2::new(10.0, 119.5)));
    }

    #[test]
    fn kinect_fov_is_plausible() {
        let cam = PinholeCamera::kinect();
        let deg = cam.fov_x().to_degrees();
        assert!((57.0..=65.0).contains(&deg), "got {deg}");
    }
}
