//! Minimal linear algebra and statistics for the `slambench-rs` workspace.
//!
//! This crate provides exactly the numeric substrate the KinectFusion
//! pipeline, the synthetic renderer and the design-space-exploration engine
//! need, and nothing more:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — small `f32` vectors,
//! * [`Mat3`], [`Mat4`] — row-major matrices,
//! * [`Quat`] — unit quaternions for rotations,
//! * [`Se3`] — rigid-body transforms with `exp`/`log` maps,
//! * [`solve`] — small dense symmetric solvers (Cholesky) used by ICP,
//! * [`stats`] — summary statistics used by the metrics and DSE crates,
//! * [`interp`] — linear/trilinear interpolation helpers used by the TSDF.
//!
//! Everything is implemented in safe, dependency-free Rust so the workspace
//! does not pull a general-purpose linear-algebra crate for the handful of
//! fixed-size operations dense SLAM requires.
//!
//! # Examples
//!
//! ```
//! use slam_math::{Se3, Vec3};
//!
//! // A pose 1 m along +x, rotated 90 degrees about +z.
//! let pose = Se3::from_axis_angle(Vec3::new(0.0, 0.0, 1.0),
//!                                 std::f32::consts::FRAC_PI_2,
//!                                 Vec3::new(1.0, 0.0, 0.0));
//! let p = pose.transform_point(Vec3::new(1.0, 0.0, 0.0));
//! assert!((p - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-6);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod camera;
pub mod interp;
pub mod mat;
pub mod quat;
pub mod se3;
pub mod solve;
pub mod stats;
pub mod vec;

pub use mat::{Mat3, Mat4};
pub use quat::Quat;
pub use se3::Se3;
pub use vec::{Vec2, Vec3, Vec4};

/// The workspace-wide floating point epsilon used for "is this basically
/// zero" decisions in geometry code.
pub const EPS: f32 = 1e-6;

/// Clamps `x` into `[lo, hi]`.
///
/// Unlike [`f32::clamp`] this never panics: if `lo > hi` the bounds are
/// swapped first, which is convenient for interval arithmetic on
/// possibly-reversed ranges.
///
/// # Examples
///
/// ```
/// assert_eq!(slam_math::clamp(5.0, 0.0, 1.0), 1.0);
/// assert_eq!(slam_math::clamp(5.0, 1.0, 0.0), 1.0); // reversed bounds
/// ```
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_handles_reversed_bounds() {
        assert_eq!(clamp(0.5, 1.0, 0.0), 0.5);
        assert_eq!(clamp(-2.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn clamp_is_identity_inside_range() {
        assert_eq!(clamp(0.25, 0.0, 1.0), 0.25);
    }
}
