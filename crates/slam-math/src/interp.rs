//! Interpolation helpers used by the TSDF raycaster and samplers.

/// Linear interpolation between `a` and `b`.
///
/// # Examples
///
/// ```
/// assert_eq!(slam_math::interp::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Bilinear interpolation of the four corner values of a unit square.
///
/// `c00` is the value at `(0,0)`, `c10` at `(1,0)`, `c01` at `(0,1)`,
/// `c11` at `(1,1)`; `(tx, ty)` are the fractional coordinates.
#[inline]
pub fn bilerp(c00: f32, c10: f32, c01: f32, c11: f32, tx: f32, ty: f32) -> f32 {
    lerp(lerp(c00, c10, tx), lerp(c01, c11, tx), ty)
}

/// Trilinear interpolation of the eight corner values of a unit cube.
///
/// `c[i]` holds the value at corner `(i & 1, (i >> 1) & 1, (i >> 2) & 1)`,
/// i.e. x varies fastest.
#[inline]
pub fn trilerp(c: [f32; 8], tx: f32, ty: f32, tz: f32) -> f32 {
    lerp(
        bilerp(c[0], c[1], c[2], c[3], tx, ty),
        bilerp(c[4], c[5], c[6], c[7], tx, ty),
        tz,
    )
}

/// Analytic gradient `(∂/∂tx, ∂/∂ty, ∂/∂tz)` of [`trilerp`] at
/// `(tx, ty, tz)`, in cell units: each component is the bilinear
/// interpolation of the corner differences along that axis. One call
/// costs about as much as a single [`trilerp`] — the cheapest gradient
/// available, at the price of a normal field that is discontinuous
/// across cell faces (prefer [`central_gradient`] where smoothness
/// matters, e.g. for ICP normals).
#[inline]
pub fn trilerp_gradient(c: [f32; 8], tx: f32, ty: f32, tz: f32) -> (f32, f32, f32) {
    let dx = bilerp(c[1] - c[0], c[3] - c[2], c[5] - c[4], c[7] - c[6], ty, tz);
    let dy = bilerp(c[2] - c[0], c[3] - c[1], c[6] - c[4], c[7] - c[5], tx, tz);
    let dz = bilerp(c[4] - c[0], c[5] - c[1], c[6] - c[2], c[7] - c[3], tx, ty);
    (dx, dy, dz)
}

/// Central differences of trilinear samples, one voxel apart, computed
/// from a single 4×4×4 neighbourhood fetch.
///
/// `c` holds the 64 voxel values around the query cell with x varying
/// fastest (`c[(z * 4 + y) * 4 + x]`), covering grid offsets `-1..=2`
/// relative to the cell's base corner; `(tx, ty, tz)` are the
/// fractional coordinates inside the centre cell. Each component is
/// `trilerp(cell shifted +1) - trilerp(cell shifted -1)` along that
/// axis — the same smoothed gradient six independent samples would
/// give, at roughly a third of the memory traffic.
#[inline]
pub fn central_gradient(c: &[f32; 64], tx: f32, ty: f32, tz: f32) -> (f32, f32, f32) {
    // corners of the unit cell whose base voxel sits at offset
    // (ox, oy, oz) of the 4³ block, in trilerp's corner order
    let cell = |ox: usize, oy: usize, oz: usize| -> [f32; 8] {
        let at = |dx: usize, dy: usize, dz: usize| c[((oz + dz) * 4 + oy + dy) * 4 + ox + dx];
        [
            at(0, 0, 0),
            at(1, 0, 0),
            at(0, 1, 0),
            at(1, 1, 0),
            at(0, 0, 1),
            at(1, 0, 1),
            at(0, 1, 1),
            at(1, 1, 1),
        ]
    };
    let dx = trilerp(cell(2, 1, 1), tx, ty, tz) - trilerp(cell(0, 1, 1), tx, ty, tz);
    let dy = trilerp(cell(1, 2, 1), tx, ty, tz) - trilerp(cell(1, 0, 1), tx, ty, tz);
    let dz = trilerp(cell(1, 1, 2), tx, ty, tz) - trilerp(cell(1, 1, 0), tx, ty, tz);
    (dx, dy, dz)
}

/// Smoothstep: cubic Hermite ramp from 0 at `edge0` to 1 at `edge1`.
///
/// Used for soft-shading the synthetic renderer's output.
#[inline]
pub fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    if (edge1 - edge0).abs() < f32::EPSILON {
        return if x < edge0 { 0.0 } else { 1.0 };
    }
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(-1.0, 5.0, 0.0), -1.0);
        assert_eq!(lerp(-1.0, 5.0, 1.0), 5.0);
        assert_eq!(lerp(-1.0, 5.0, 0.5), 2.0);
    }

    #[test]
    fn bilerp_corners_and_centre() {
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 0.0), 1.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 0.0), 2.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 1.0), 3.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 1.0), 4.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.5, 0.5), 2.5);
    }

    #[test]
    fn trilerp_recovers_corners() {
        let c = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for i in 0..8 {
            let tx = (i & 1) as f32;
            let ty = ((i >> 1) & 1) as f32;
            let tz = ((i >> 2) & 1) as f32;
            assert_eq!(trilerp(c, tx, ty, tz), i as f32);
        }
    }

    #[test]
    fn trilerp_is_linear_along_axes() {
        // constant gradient along z
        let c = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(trilerp(c, 0.3, 0.8, 0.25), 0.25);
    }

    #[test]
    fn trilerp_gradient_matches_linear_field() {
        // corner values of the field f = 2x - 3y + 5z sampled on the
        // unit cube; the analytic gradient must recover (2, -3, 5)
        // everywhere inside
        let mut c = [0.0f32; 8];
        for (i, v) in c.iter_mut().enumerate() {
            let x = (i & 1) as f32;
            let y = ((i >> 1) & 1) as f32;
            let z = ((i >> 2) & 1) as f32;
            *v = 2.0 * x - 3.0 * y + 5.0 * z;
        }
        for &(tx, ty, tz) in &[(0.0, 0.0, 0.0), (0.5, 0.5, 0.5), (0.2, 0.9, 0.4)] {
            let (dx, dy, dz) = trilerp_gradient(c, tx, ty, tz);
            assert!((dx - 2.0).abs() < 1e-6, "dx {dx}");
            assert!((dy + 3.0).abs() < 1e-6, "dy {dy}");
            assert!((dz - 5.0).abs() < 1e-6, "dz {dz}");
        }
    }

    #[test]
    fn trilerp_gradient_matches_finite_differences() {
        let c = [0.3, -0.7, 0.9, 0.1, -0.2, 0.8, -0.5, 0.6];
        let (tx, ty, tz) = (0.37, 0.61, 0.23);
        let h = 1e-3f32;
        let (dx, dy, dz) = trilerp_gradient(c, tx, ty, tz);
        let fd_x = (trilerp(c, tx + h, ty, tz) - trilerp(c, tx - h, ty, tz)) / (2.0 * h);
        let fd_y = (trilerp(c, tx, ty + h, tz) - trilerp(c, tx, ty - h, tz)) / (2.0 * h);
        let fd_z = (trilerp(c, tx, ty, tz + h) - trilerp(c, tx, ty, tz - h)) / (2.0 * h);
        assert!((dx - fd_x).abs() < 1e-3, "dx {dx} vs {fd_x}");
        assert!((dy - fd_y).abs() < 1e-3, "dy {dy} vs {fd_y}");
        assert!((dz - fd_z).abs() < 1e-3, "dz {dz} vs {fd_z}");
    }

    #[test]
    fn central_gradient_matches_independent_samples() {
        // a smooth but non-linear field sampled on the 4³ block at
        // offsets -1..=2 around the centre cell's base corner
        let f = |x: f32, y: f32, z: f32| 0.5 * x * x - 0.3 * y * x + 0.7 * z - 0.1 * z * y;
        let mut c = [0.0f32; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    c[(z * 4 + y) * 4 + x] = f(x as f32 - 1.0, y as f32 - 1.0, z as f32 - 1.0);
                }
            }
        }
        let (tx, ty, tz) = (0.31f32, 0.62, 0.84);
        // reference: six independent trilinear samples one voxel apart
        let sample = |px: f32, py: f32, pz: f32| -> f32 {
            let (x0, y0, z0) = (px.floor(), py.floor(), pz.floor());
            let mut cc = [0.0f32; 8];
            for (i, v) in cc.iter_mut().enumerate() {
                *v = f(
                    x0 + (i & 1) as f32,
                    y0 + ((i >> 1) & 1) as f32,
                    z0 + ((i >> 2) & 1) as f32,
                );
            }
            trilerp(cc, px - x0, py - y0, pz - z0)
        };
        let (dx, dy, dz) = central_gradient(&c, tx, ty, tz);
        let rx = sample(tx + 1.0, ty, tz) - sample(tx - 1.0, ty, tz);
        let ry = sample(tx, ty + 1.0, tz) - sample(tx, ty - 1.0, tz);
        let rz = sample(tx, ty, tz + 1.0) - sample(tx, ty, tz - 1.0);
        assert!((dx - rx).abs() < 1e-5, "dx {dx} vs {rx}");
        assert!((dy - ry).abs() < 1e-5, "dy {dy} vs {ry}");
        assert!((dz - rz).abs() < 1e-5, "dz {dz} vs {rz}");
    }

    #[test]
    fn smoothstep_clamps_and_ramps() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        assert_eq!(smoothstep(0.0, 1.0, 0.5), 0.5);
        // degenerate edge interval behaves like a step
        assert_eq!(smoothstep(1.0, 1.0, 0.5), 0.0);
        assert_eq!(smoothstep(1.0, 1.0, 1.5), 1.0);
    }
}
