//! Interpolation helpers used by the TSDF raycaster and samplers.

/// Linear interpolation between `a` and `b`.
///
/// # Examples
///
/// ```
/// assert_eq!(slam_math::interp::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Bilinear interpolation of the four corner values of a unit square.
///
/// `c00` is the value at `(0,0)`, `c10` at `(1,0)`, `c01` at `(0,1)`,
/// `c11` at `(1,1)`; `(tx, ty)` are the fractional coordinates.
#[inline]
pub fn bilerp(c00: f32, c10: f32, c01: f32, c11: f32, tx: f32, ty: f32) -> f32 {
    lerp(lerp(c00, c10, tx), lerp(c01, c11, tx), ty)
}

/// Trilinear interpolation of the eight corner values of a unit cube.
///
/// `c[i]` holds the value at corner `(i & 1, (i >> 1) & 1, (i >> 2) & 1)`,
/// i.e. x varies fastest.
#[inline]
pub fn trilerp(c: [f32; 8], tx: f32, ty: f32, tz: f32) -> f32 {
    lerp(
        bilerp(c[0], c[1], c[2], c[3], tx, ty),
        bilerp(c[4], c[5], c[6], c[7], tx, ty),
        tz,
    )
}

/// Smoothstep: cubic Hermite ramp from 0 at `edge0` to 1 at `edge1`.
///
/// Used for soft-shading the synthetic renderer's output.
#[inline]
pub fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    if (edge1 - edge0).abs() < f32::EPSILON {
        return if x < edge0 { 0.0 } else { 1.0 };
    }
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(-1.0, 5.0, 0.0), -1.0);
        assert_eq!(lerp(-1.0, 5.0, 1.0), 5.0);
        assert_eq!(lerp(-1.0, 5.0, 0.5), 2.0);
    }

    #[test]
    fn bilerp_corners_and_centre() {
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 0.0), 1.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 0.0), 2.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 1.0), 3.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 1.0), 4.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.5, 0.5), 2.5);
    }

    #[test]
    fn trilerp_recovers_corners() {
        let c = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for i in 0..8 {
            let tx = (i & 1) as f32;
            let ty = ((i >> 1) & 1) as f32;
            let tz = ((i >> 2) & 1) as f32;
            assert_eq!(trilerp(c, tx, ty, tz), i as f32);
        }
    }

    #[test]
    fn trilerp_is_linear_along_axes() {
        // constant gradient along z
        let c = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(trilerp(c, 0.3, 0.8, 0.25), 0.25);
    }

    #[test]
    fn smoothstep_clamps_and_ramps() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        assert_eq!(smoothstep(0.0, 1.0, 0.5), 0.5);
        // degenerate edge interval behaves like a step
        assert_eq!(smoothstep(1.0, 1.0, 0.5), 0.0);
        assert_eq!(smoothstep(1.0, 1.0, 1.5), 1.0);
    }
}
