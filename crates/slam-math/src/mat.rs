//! Row-major 3×3 and 4×4 matrices.

use crate::vec::{Vec3, Vec4};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major 3×3 `f32` matrix, primarily used for rotations.
///
/// # Examples
///
/// ```
/// use slam_math::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f32::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[row][col]`.
    pub m: [[f32; 3]; 3],
}

/// A row-major 4×4 `f32` matrix for homogeneous transforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Row-major entries: `m[row][col]`.
    pub m: [[f32; 4]; 4],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn from_rows(m: [[f32; 3]; 3]) -> Mat3 {
        Mat3 { m }
    }

    /// Creates a matrix whose rows are the given vectors.
    #[inline]
    pub fn from_row_vecs(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Creates a matrix whose columns are the given vectors.
    #[inline]
    pub fn from_col_vecs(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// A diagonal matrix with the given diagonal.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Mat3 {
        let mut m = Mat3::ZERO;
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// Rotation about the x axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation of `angle` radians about an arbitrary (not necessarily unit)
    /// `axis`, via Rodrigues' formula. A degenerate axis yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Mat3 {
        let axis = match axis.normalized() {
            Some(a) => a,
            None => return Mat3::IDENTITY,
        };
        let (s, c) = angle.sin_cos();
        let k = Mat3::skew(axis);
        Mat3::IDENTITY + k * s + (k * k) * (1.0 - c)
    }

    /// The skew-symmetric (cross-product) matrix of `v`: `skew(v) * w == v.cross(w)`.
    #[inline]
    pub fn skew(v: Vec3) -> Mat3 {
        Mat3::from_rows([[0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0]])
    }

    /// Outer product `a * bᵀ`.
    #[inline]
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        Mat3::from_rows([
            [a.x * b.x, a.x * b.y, a.x * b.z],
            [a.y * b.x, a.y * b.y, a.y * b.z],
            [a.z * b.x, a.z * b.y, a.z * b.z],
        ])
    }

    /// The transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `i > 2`.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from(self.m[i])
    }

    /// Column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `j > 2`.
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Trace (sum of the diagonal).
    #[inline]
    pub fn trace(&self) -> f32 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Matrix inverse, or `None` when the determinant is (almost) zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < crate::EPS {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let cof = |r0: usize, c0: usize, r1: usize, c1: usize| {
            m[r0][c0] * m[r1][c1] - m[r0][c1] * m[r1][c0]
        };
        Some(Mat3::from_rows([
            [
                cof(1, 1, 2, 2) * inv_det,
                -cof(0, 1, 2, 2) * inv_det,
                cof(0, 1, 1, 2) * inv_det,
            ],
            [
                -cof(1, 0, 2, 2) * inv_det,
                cof(0, 0, 2, 2) * inv_det,
                -cof(0, 0, 1, 2) * inv_det,
            ],
            [
                cof(1, 0, 2, 1) * inv_det,
                -cof(0, 0, 2, 1) * inv_det,
                cof(0, 0, 1, 1) * inv_det,
            ],
        ]))
    }

    /// Re-orthonormalises a nearly-orthonormal rotation matrix using one
    /// round of Gram–Schmidt. Keeps accumulated ICP pose updates on SO(3).
    pub fn orthonormalized(&self) -> Mat3 {
        let c0 = self.col(0).normalized_or_zero();
        let mut c1 = self.col(1) - c0 * self.col(1).dot(c0);
        c1 = c1.normalized_or_zero();
        let c2 = c0.cross(c1);
        Mat3::from_col_vecs(c0, c1, c2)
    }

    /// Frobenius norm of the difference to another matrix.
    pub fn distance(&self, other: &Mat3) -> f32 {
        let mut s = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let d = self.m[r][c] - other.m[r][c];
                s += d * d;
            }
        }
        s.sqrt()
    }
}

impl Default for Mat3 {
    fn default() -> Mat3 {
        Mat3::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = s;
            }
        }
        out
    }
}

impl Mul<f32> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f32) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] += rhs.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] -= rhs.m[r][c];
            }
        }
        out
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..3 {
            writeln!(
                f,
                "[{:8.4} {:8.4} {:8.4}]",
                self.m[r][0], self.m[r][1], self.m[r][2]
            )?;
        }
        Ok(())
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// The zero matrix.
    pub const ZERO: Mat4 = Mat4 { m: [[0.0; 4]; 4] };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn from_rows(m: [[f32; 4]; 4]) -> Mat4 {
        Mat4 { m }
    }

    /// Builds a rigid transform matrix from a rotation and translation.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Mat4 {
        Mat4::from_rows([
            [r.m[0][0], r.m[0][1], r.m[0][2], t.x],
            [r.m[1][0], r.m[1][1], r.m[1][2], t.y],
            [r.m[2][0], r.m[2][1], r.m[2][2], t.z],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// The upper-left 3×3 block.
    pub fn rotation(&self) -> Mat3 {
        Mat3::from_rows([
            [self.m[0][0], self.m[0][1], self.m[0][2]],
            [self.m[1][0], self.m[1][1], self.m[1][2]],
            [self.m[2][0], self.m[2][1], self.m[2][2]],
        ])
    }

    /// The translation column.
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3])
    }

    /// Transforms a point (applies rotation and translation).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let v = *self * p.extend(1.0);
        v.truncate()
    }

    /// Transforms a direction (rotation only).
    pub fn transform_vector(&self, d: Vec3) -> Vec3 {
        let v = *self * d.extend(0.0);
        v.truncate()
    }
}

impl Default for Mat4 {
    fn default() -> Mat4 {
        Mat4::IDENTITY
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    fn mul(self, v: Vec4) -> Vec4 {
        let row = |r: usize| Vec4::new(self.m[r][0], self.m[r][1], self.m[r][2], self.m[r][3]);
        Vec4::new(row(0).dot(v), row(1).dot(v), row(2).dot(v), row(3).dot(v))
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::ZERO;
        for r in 0..4 {
            for c in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = s;
            }
        }
        out
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..4 {
            writeln!(
                f,
                "[{:8.4} {:8.4} {:8.4} {:8.4}]",
                self.m[r][0], self.m[r][1], self.m[r][2], self.m[r][3]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn identity_is_neutral() {
        let m = Mat3::rotation_x(0.3) * Mat3::rotation_y(-0.7);
        assert!((m * Mat3::IDENTITY).distance(&m) < 1e-6);
        assert!((Mat3::IDENTITY * m).distance(&m) < 1e-6);
    }

    #[test]
    fn axis_rotations() {
        assert_close(Mat3::rotation_z(FRAC_PI_2) * Vec3::X, Vec3::Y);
        assert_close(Mat3::rotation_x(FRAC_PI_2) * Vec3::Y, Vec3::Z);
        assert_close(Mat3::rotation_y(FRAC_PI_2) * Vec3::Z, Vec3::X);
    }

    #[test]
    fn axis_angle_matches_elementary_rotations() {
        for angle in [0.1f32, 0.9, -1.4, PI - 0.01] {
            let a = Mat3::from_axis_angle(Vec3::Z, angle);
            let b = Mat3::rotation_z(angle);
            assert!(a.distance(&b) < 1e-5);
        }
    }

    #[test]
    fn degenerate_axis_yields_identity() {
        let m = Mat3::from_axis_angle(Vec3::ZERO, 1.0);
        assert!(m.distance(&Mat3::IDENTITY) < 1e-6);
    }

    #[test]
    fn skew_reproduces_cross_product() {
        let v = Vec3::new(0.3, -1.0, 2.0);
        let w = Vec3::new(-0.5, 0.2, 0.9);
        assert_close(Mat3::skew(v) * w, v.cross(w));
    }

    #[test]
    fn inverse_of_rotation_is_transpose() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 0.8);
        let inv = r.inverse().unwrap();
        assert!(inv.distance(&r.transpose()) < 1e-5);
    }

    #[test]
    fn inverse_roundtrip_general_matrix() {
        let m = Mat3::from_rows([[2.0, 1.0, 0.0], [0.5, 3.0, -1.0], [0.0, 0.25, 1.5]]);
        let inv = m.inverse().unwrap();
        assert!((m * inv).distance(&Mat3::IDENTITY) < 1e-5);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        let r = Mat3::from_axis_angle(Vec3::new(0.2, 0.5, 0.8), 1.1);
        assert!((r.determinant() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn orthonormalize_restores_rotation() {
        let mut r = Mat3::rotation_y(0.4);
        // perturb
        r.m[0][0] += 0.01;
        r.m[1][2] -= 0.02;
        let q = r.orthonormalized();
        assert!((q.determinant() - 1.0).abs() < 1e-4);
        assert!((q * q.transpose()).distance(&Mat3::IDENTITY) < 1e-4);
    }

    #[test]
    fn mat4_rigid_transform() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        let t = Vec3::new(1.0, 2.0, 3.0);
        let m = Mat4::from_rotation_translation(r, t);
        assert_close(m.transform_point(Vec3::X), Vec3::new(1.0, 3.0, 3.0));
        assert_close(m.transform_vector(Vec3::X), Vec3::Y);
        assert_eq!(m.translation(), t);
        assert!(m.rotation().distance(&r) < 1e-6);
    }

    #[test]
    fn mat4_multiplication_composes() {
        let a = Mat4::from_rotation_translation(Mat3::rotation_x(0.2), Vec3::X);
        let b = Mat4::from_rotation_translation(Mat3::rotation_y(-0.3), Vec3::Y);
        let p = Vec3::new(0.1, 0.2, 0.3);
        assert_close(
            (a * b).transform_point(p),
            a.transform_point(b.transform_point(p)),
        );
    }

    #[test]
    fn outer_product() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let m = Mat3::outer(a, b);
        assert_eq!(m.m[1][2], 12.0);
        assert_eq!(m.m[2][0], 12.0);
    }
}
