//! Small dense linear solvers.
//!
//! The ICP tracker reduces each iteration to a 6×6 symmetric positive
//! (semi-)definite normal-equation system `J<sup>T</sup>J x = J<sup>T</sup>r`. We accumulate and
//! solve it in `f64` for numerical robustness and convert back to `f32` at
//! the pose-update boundary.

// the factorisations below mirror the textbook index formulations; iterator
// rewrites would obscure the triangular loop bounds for no gain
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// Error returned when a matrix is not positive definite (or otherwise
/// numerically singular) during factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveSingularError {
    /// Pivot index at which the factorisation broke down.
    pub pivot: usize,
}

impl fmt::Display for SolveSingularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular or not positive definite at pivot {}",
            self.pivot
        )
    }
}

impl std::error::Error for SolveSingularError {}

/// A symmetric `N`×`N` system accumulated as upper-triangular entries plus a
/// right-hand side; the staple of Gauss–Newton solvers.
///
/// # Examples
///
/// ```
/// use slam_math::solve::NormalEquations;
/// let mut ne = NormalEquations::<2>::new();
/// // accumulate rows of J and residuals r: here J = I, r = (3, 4)
/// ne.add_row(&[1.0, 0.0], 3.0, 1.0);
/// ne.add_row(&[0.0, 1.0], 4.0, 1.0);
/// let x = ne.solve().unwrap();
/// assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct NormalEquations<const N: usize> {
    /// `JᵀJ`, full storage for simplicity.
    ata: [[f64; N]; N],
    /// `Jᵀr`.
    atb: [f64; N],
    /// Sum of squared residuals (weighted).
    residual_sq: f64,
    /// Number of accumulated rows.
    count: usize,
}

impl<const N: usize> NormalEquations<N> {
    /// Creates an empty (all-zero) system.
    pub fn new() -> Self {
        NormalEquations {
            ata: [[0.0; N]; N],
            atb: [0.0; N],
            residual_sq: 0.0,
            count: 0,
        }
    }

    /// Accumulates one measurement row: Jacobian row `j`, residual `r`,
    /// weight `w` (use `1.0` for unweighted least squares).
    pub fn add_row(&mut self, j: &[f64; N], r: f64, w: f64) {
        for a in 0..N {
            let wja = w * j[a];
            for b in a..N {
                self.ata[a][b] += wja * j[b];
            }
            self.atb[a] += wja * r;
        }
        self.residual_sq += w * r * r;
        self.count += 1;
    }

    /// Merges another accumulated system into this one (used by the
    /// parallel reduction in ICP).
    pub fn merge(&mut self, other: &NormalEquations<N>) {
        for a in 0..N {
            for b in a..N {
                self.ata[a][b] += other.ata[a][b];
            }
            self.atb[a] += other.atb[a];
        }
        self.residual_sq += other.residual_sq;
        self.count += other.count;
    }

    /// Number of accumulated rows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of weighted squared residuals over all accumulated rows.
    pub fn residual_squared_sum(&self) -> f64 {
        self.residual_sq
    }

    /// Root-mean-square residual, or `0.0` when empty.
    pub fn rms_residual(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.residual_sq / self.count as f64).sqrt()
        }
    }

    /// Solves `JᵀJ x = Jᵀr` via Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`SolveSingularError`] when the system is rank deficient
    /// (e.g. ICP with too few or degenerate correspondences).
    pub fn solve(&self) -> Result<[f64; N], SolveSingularError> {
        // mirror the upper triangle
        let mut a = self.ata;
        for r in 1..N {
            for c in 0..r {
                a[r][c] = a[c][r];
            }
        }
        cholesky_solve(a, self.atb)
    }

    /// Solves the damped system `(JᵀJ + λ·diag(JᵀJ)) x = Jᵀr`
    /// (Levenberg–Marquardt style damping).
    ///
    /// # Errors
    ///
    /// Returns [`SolveSingularError`] when even the damped system is
    /// singular (all-zero Jacobian).
    pub fn solve_damped(&self, lambda: f64) -> Result<[f64; N], SolveSingularError> {
        let mut a = self.ata;
        for r in 1..N {
            for c in 0..r {
                a[r][c] = a[c][r];
            }
        }
        for i in 0..N {
            a[i][i] += lambda * a[i][i].max(1e-12);
        }
        cholesky_solve(a, self.atb)
    }
}

impl<const N: usize> Default for NormalEquations<N> {
    fn default() -> Self {
        NormalEquations::new()
    }
}

/// Solves `A x = b` for a symmetric positive-definite `A` via Cholesky
/// factorisation `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`SolveSingularError`] when a pivot is non-positive, i.e. the
/// matrix is not positive definite.
pub fn cholesky_solve<const N: usize>(
    a: [[f64; N]; N],
    b: [f64; N],
) -> Result<[f64; N], SolveSingularError> {
    let l = cholesky_factor(a)?;
    // forward substitution: L y = b
    let mut y = [0.0; N];
    for i in 0..N {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i][k] * y[k];
        }
        y[i] = s / l[i][i];
    }
    // back substitution: Lᵀ x = y
    let mut x = [0.0; N];
    for i in (0..N).rev() {
        let mut s = y[i];
        for k in (i + 1)..N {
            s -= l[k][i] * x[k];
        }
        x[i] = s / l[i][i];
    }
    Ok(x)
}

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`SolveSingularError`] when a pivot is non-positive.
pub fn cholesky_factor<const N: usize>(
    a: [[f64; N]; N],
) -> Result<[[f64; N]; N], SolveSingularError> {
    let mut l = [[0.0; N]; N];
    for i in 0..N {
        for j in 0..=i {
            let mut s = a[i][j];
            for k in 0..j {
                s -= l[i][k] * l[j][k];
            }
            if i == j {
                if s <= 1e-15 {
                    return Err(SolveSingularError { pivot: i });
                }
                l[i][j] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    Ok(l)
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix via the
/// cyclic Jacobi rotation method.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[i]` is the
/// unit eigenvector for `eigenvalues[i]`, sorted in descending eigenvalue
/// order. Used by the Horn trajectory-alignment step of the ATE metric.
///
/// The input is assumed symmetric; only the upper triangle is read
/// conceptually (the implementation symmetrises defensively).
pub fn jacobi_eigen<const N: usize>(a: [[f64; N]; N]) -> ([f64; N], [[f64; N]; N]) {
    let mut m = a;
    // defensive symmetrisation
    for r in 0..N {
        for c in (r + 1)..N {
            let avg = 0.5 * (m[r][c] + m[c][r]);
            m[r][c] = avg;
            m[c][r] = avg;
        }
    }
    let mut v = [[0.0; N]; N];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..64 {
        // off-diagonal magnitude
        let mut off = 0.0;
        for r in 0..N {
            for c in (r + 1)..N {
                off += m[r][c] * m[r][c];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..N {
            for q in (p + 1)..N {
                if m[p][q].abs() < 1e-18 {
                    continue;
                }
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..N {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..N {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for row in v.iter_mut() {
                    let (vkp, vkq) = (row[p], row[q]);
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // extract and sort descending
    let mut order: [usize; N] = [0; N];
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    order.sort_by(|&i, &j| m[j][j].total_cmp(&m[i][i]));
    let mut values = [0.0; N];
    let mut vectors = [[0.0; N]; N];
    for (rank, &i) in order.iter().enumerate() {
        values[rank] = m[i][i];
        for k in 0..N {
            vectors[rank][k] = v[k][i];
        }
    }
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec<const N: usize>(a: &[[f64; N]; N], x: &[f64; N]) -> [f64; N] {
        let mut out = [0.0; N];
        for r in 0..N {
            for c in 0..N {
                out[r] += a[r][c] * x[c];
            }
        }
        out
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = [[4.0, 2.0, 0.6], [2.0, 5.0, 1.0], [0.6, 1.0, 3.0]];
        let x_true = [1.0, -2.0, 0.5];
        let b = mat_vec(&a, &x_true);
        let x = cholesky_solve(a, b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [[1.0, 2.0], [2.0, 1.0]]; // eigenvalues 3, -1
        assert!(cholesky_solve(a, [1.0, 1.0]).is_err());
    }

    #[test]
    fn cholesky_rejects_singular() {
        let a = [[1.0, 1.0], [1.0, 1.0]];
        let err = cholesky_solve(a, [1.0, 1.0]).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn normal_equations_least_squares() {
        // fit y = a + b t to noiseless data from a=2, b=3
        let mut ne = NormalEquations::<2>::new();
        for i in 0..10 {
            let t = i as f64 * 0.1;
            ne.add_row(&[1.0, t], 2.0 + 3.0 * t, 1.0);
        }
        let x = ne.solve().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert_eq!(ne.count(), 10);
    }

    #[test]
    fn weights_change_solution() {
        // two inconsistent measurements of a scalar; weighting picks the mean
        let mut ne = NormalEquations::<1>::new();
        ne.add_row(&[1.0], 0.0, 1.0);
        ne.add_row(&[1.0], 10.0, 3.0);
        let x = ne.solve().unwrap();
        assert!((x[0] - 7.5).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let rows: Vec<([f64; 2], f64)> = (0..20)
            .map(|i| {
                let t = i as f64;
                ([1.0, t], 0.5 * t - 1.0)
            })
            .collect();
        let mut all = NormalEquations::<2>::new();
        for (j, r) in &rows {
            all.add_row(j, *r, 1.0);
        }
        let mut a = NormalEquations::<2>::new();
        let mut b = NormalEquations::<2>::new();
        for (i, (j, r)) in rows.iter().enumerate() {
            if i % 2 == 0 {
                a.add_row(j, *r, 1.0);
            } else {
                b.add_row(j, *r, 1.0);
            }
        }
        a.merge(&b);
        let xa = a.solve().unwrap();
        let xb = all.solve().unwrap();
        assert!((xa[0] - xb[0]).abs() < 1e-12);
        assert!((xa[1] - xb[1]).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
        assert!((a.residual_squared_sum() - all.residual_squared_sum()).abs() < 1e-9);
    }

    #[test]
    fn damped_solve_handles_rank_deficiency() {
        // only one observable direction
        let mut ne = NormalEquations::<2>::new();
        ne.add_row(&[1.0, 0.0], 2.0, 1.0);
        assert!(ne.solve().is_err());
        // Heavy damping cannot rescue a structurally zero diagonal, but the
        // observable component must survive with mild damping on it alone.
        let err = ne.solve_damped(1e-3).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn jacobi_diagonal_is_trivial() {
        let (vals, vecs) = jacobi_eigen([[3.0, 0.0], [0.0, 1.0]]);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!(vecs[0][0].abs() > 0.99);
    }

    #[test]
    fn jacobi_known_2x2() {
        // eigenvalues of [[2,1],[1,2]] are 3 and 1
        let (vals, vecs) = jacobi_eigen([[2.0, 1.0], [1.0, 2.0]]);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // eigenvector for 3 is (1,1)/sqrt(2)
        assert!((vecs[0][0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = [
            [4.0, 1.0, -0.5, 0.2],
            [1.0, 3.0, 0.7, -0.1],
            [-0.5, 0.7, 2.0, 0.3],
            [0.2, -0.1, 0.3, 1.0],
        ];
        let (vals, vecs) = jacobi_eigen(a);
        // A v = lambda v for every pair
        for i in 0..4 {
            let av = mat_vec(&a, &vecs[i]);
            for k in 0..4 {
                assert!(
                    (av[k] - vals[i] * vecs[i][k]).abs() < 1e-8,
                    "eigenpair {i} fails at component {k}"
                );
            }
        }
        // eigenvalues descending
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a = [[5.0, 2.0, 1.0], [2.0, 4.0, 0.5], [1.0, 0.5, 3.0]];
        let (_, vecs) = jacobi_eigen(a);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|k| vecs[i][k] * vecs[j][k]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rms_residual_reports_misfit() {
        let mut ne = NormalEquations::<1>::new();
        ne.add_row(&[1.0], 3.0, 1.0);
        ne.add_row(&[1.0], -3.0, 1.0);
        assert!((ne.rms_residual() - 3.0).abs() < 1e-12);
        let empty = NormalEquations::<1>::new();
        assert_eq!(empty.rms_residual(), 0.0);
    }
}
