//! Unit quaternions for representing and interpolating rotations.

use crate::mat::Mat3;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`. Rotation quaternions are kept unit
/// length by the constructors; [`Quat::normalized`] is available after long
/// chains of multiplications.
///
/// # Examples
///
/// ```
/// use slam_math::{Quat, Vec3};
/// let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::X);
/// assert!((v - Vec3::Y).norm() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// `i` component.
    pub x: f32,
    /// `j` component.
    pub y: f32,
    /// `k` component.
    pub z: f32,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalised).
    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Quat {
        Quat { w, x, y, z }
    }

    /// A rotation of `angle` radians about `axis`. A degenerate axis yields
    /// the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        match axis.normalized() {
            Some(a) => {
                let (s, c) = (angle * 0.5).sin_cos();
                Quat {
                    w: c,
                    x: a.x * s,
                    y: a.y * s,
                    z: a.z * s,
                }
            }
            None => Quat::IDENTITY,
        }
    }

    /// Converts a rotation matrix to a quaternion (Shepperd's method).
    pub fn from_mat3(m: &Mat3) -> Quat {
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat {
                w: 0.25 * s,
                x: (m.m[2][1] - m.m[1][2]) / s,
                y: (m.m[0][2] - m.m[2][0]) / s,
                z: (m.m[1][0] - m.m[0][1]) / s,
            }
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m.m[2][1] - m.m[1][2]) / s,
                x: 0.25 * s,
                y: (m.m[0][1] + m.m[1][0]) / s,
                z: (m.m[0][2] + m.m[2][0]) / s,
            }
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m.m[0][2] - m.m[2][0]) / s,
                x: (m.m[0][1] + m.m[1][0]) / s,
                y: 0.25 * s,
                z: (m.m[1][2] + m.m[2][1]) / s,
            }
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat {
                w: (m.m[1][0] - m.m[0][1]) / s,
                x: (m.m[0][2] + m.m[2][0]) / s,
                y: (m.m[1][2] + m.m[2][1]) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }

    /// Converts to a rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        let Quat { w, x, y, z } = self.normalized();
        Mat3::from_rows([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the unit quaternion in the same direction; identity for a
    /// (near-)zero quaternion.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < crate::EPS {
            Quat::IDENTITY
        } else {
            Quat {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    /// The conjugate; for unit quaternions this is the inverse rotation.
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q * (0, v) * q^-1, expanded for efficiency.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * 2.0 * u.dot(v) + v * (s * s - u.dot(u)) + u.cross(v) * 2.0 * s
    }

    /// The rotation angle in radians, in `[0, π]`.
    pub fn angle(self) -> f32 {
        let q = self.normalized();
        2.0 * q.w.abs().min(1.0).acos()
    }

    /// Spherical linear interpolation between two rotations.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; the shorter arc is
    /// taken.
    pub fn slerp(self, other: Quat, t: f32) -> Quat {
        let a = self.normalized();
        let mut b = other.normalized();
        let mut dot = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
        if dot < 0.0 {
            b = Quat::new(-b.w, -b.x, -b.y, -b.z);
            dot = -dot;
        }
        if dot > 0.9995 {
            // nearly parallel: lerp + renormalise
            return Quat::new(
                a.w + (b.w - a.w) * t,
                a.x + (b.x - a.x) * t,
                a.y + (b.y - a.y) * t,
                a.z + (b.z - a.z) * t,
            )
            .normalized();
        }
        let theta = dot.min(1.0).acos();
        let (s0, s1) = (
            ((1.0 - t) * theta).sin() / theta.sin(),
            (t * theta).sin() / theta.sin(),
        );
        Quat::new(
            a.w * s0 + b.w * s1,
            a.x * s0 + b.x * s1,
            a.y * s0 + b.y * s1,
            a.z * s0 + b.z * s1,
        )
        .normalized()
    }
}

impl Default for Quat {
    fn default() -> Quat {
        Quat::IDENTITY
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat {
            w: self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            x: self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            y: self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            z: self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        }
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.4} + {:.4}i + {:.4}j + {:.4}k)",
            self.w, self.x, self.y, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn rotate_matches_matrix() {
        let axis = Vec3::new(0.3, -0.4, 0.8);
        let angle = 1.3;
        let q = Quat::from_axis_angle(axis, angle);
        let m = Mat3::from_axis_angle(axis, angle);
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_close(q.rotate(v), m * v);
    }

    #[test]
    fn mat3_roundtrip() {
        for (axis, angle) in [
            (Vec3::X, 0.2),
            (Vec3::Y, -1.1),
            (Vec3::new(1.0, 1.0, 1.0), PI - 0.1),
            (Vec3::new(-0.2, 0.9, 0.1), 2.5),
        ] {
            let q = Quat::from_axis_angle(axis, angle);
            let q2 = Quat::from_mat3(&q.to_mat3());
            // q and -q are the same rotation
            let v = Vec3::new(0.7, 0.1, -0.4);
            assert_close(q.rotate(v), q2.rotate(v));
        }
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let qa = Quat::from_axis_angle(Vec3::X, 0.5);
        let qb = Quat::from_axis_angle(Vec3::Y, -0.8);
        let v = Vec3::new(0.2, 0.3, 0.4);
        assert_close((qa * qb).rotate(v), qa.rotate(qb.rotate(v)));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.9);
        let v = Vec3::new(-0.3, 0.8, 0.2);
        assert_close(q.conjugate().rotate(q.rotate(v)), v);
    }

    #[test]
    fn angle_extraction() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!((q.angle() - FRAC_PI_2).abs() < 1e-5);
        assert!(Quat::IDENTITY.angle() < 1e-5);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let v = Vec3::X;
        assert_close(a.slerp(b, 0.0).rotate(v), v);
        assert_close(a.slerp(b, 1.0).rotate(v), b.rotate(v));
        let mid = a.slerp(b, 0.5);
        assert!((mid.angle() - FRAC_PI_2 / 2.0).abs() < 1e-4);
    }

    #[test]
    fn slerp_takes_shorter_arc() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        let b = Quat::new(-1.0, 0.0, 0.0, 0.0) * Quat::from_axis_angle(Vec3::Z, 0.2);
        let mid = a.slerp(b, 0.5);
        assert!(mid.angle() < 0.3);
    }

    #[test]
    fn degenerate_axis_is_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 2.0), Quat::IDENTITY);
    }

    #[test]
    fn normalized_zero_is_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::IDENTITY);
    }
}
