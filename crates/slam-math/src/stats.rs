//! Summary statistics used by the metrics and DSE crates.
//!
//! Two flavours: [`OnlineStats`] (constant memory, streaming) and
//! [`Summary`] (computed from a retained sample, supports percentiles).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use slam_math::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or `0.0` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.5} std={:.5} min={:.5} max={:.5}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// A five-plus-number summary computed from a retained sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Root mean square.
    pub rms: f64,
}

impl Summary {
    /// Computes a summary of `values`. Non-finite entries are dropped;
    /// an empty (or all-non-finite) input yields the all-zero summary.
    pub fn of(values: &[f64]) -> Summary {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let count = v.len();
        let mean = v.iter().sum::<f64>() / count as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let rms = (v.iter().map(|x| x * x).sum::<f64>() / count as f64).sqrt();
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            median: percentile_sorted(&v, 50.0),
            p95: percentile_sorted(&v, 95.0),
            max: v[count - 1],
            rms,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.5} std={:.5} min={:.5} med={:.5} p95={:.5} max={:.5}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of an already-sorted
/// slice. Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Debug-asserts that `p` is within `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// Linear-interpolated percentile of an unsorted slice (copies and sorts).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&v, p)
}

/// Root mean square of a slice; `0.0` when empty.
pub fn rms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|x| x * x).sum::<f64>() / values.len() as f64).sqrt()
}

/// Arithmetic mean of a slice; `0.0` when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let batch = Summary::of(&data);
        assert!((s.mean() - batch.mean).abs() < 1e-12);
        assert!((s.std_dev() - batch.std_dev).abs() < 1e-12);
        assert_eq!(s.min(), batch.min);
        assert_eq!(s.max(), batch.max);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn online_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i < 37 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        // interpolation between ranks
        let v2 = [0.0, 10.0];
        assert_eq!(percentile(&v2, 50.0), 5.0);
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.rms > s.mean); // rms >= mean for non-negative data
    }

    #[test]
    fn rms_and_mean_helpers() {
        assert_eq!(rms(&[3.0, 4.0]), (12.5f64).sqrt());
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn display_non_empty() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        assert!(format!("{s}").contains("n=1"));
        assert!(format!("{}", Summary::of(&[1.0])).contains("n=1"));
    }
}
