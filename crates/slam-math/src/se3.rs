//! Rigid-body transforms: the special Euclidean group SE(3).

use crate::mat::{Mat3, Mat4};
use crate::quat::Quat;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// A rigid-body transform (rotation + translation).
///
/// The convention throughout the workspace is *camera-to-world*: a frame's
/// pose maps points in the camera frame into the world frame.
///
/// # Examples
///
/// ```
/// use slam_math::{Se3, Vec3};
///
/// let a = Se3::from_translation(Vec3::X);
/// let b = Se3::from_translation(Vec3::Y);
/// let c = a * b;
/// assert!((c.translation() - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-6);
/// assert!((c * c.inverse()).is_identity(1e-6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Se3 {
    rotation: Mat3,
    translation: Vec3,
}

/// A minimal 6-vector twist `(v, ω)` — translational then rotational part —
/// used by the ICP solver and the `exp`/`log` maps.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Twist {
    /// Translational velocity component.
    pub v: Vec3,
    /// Rotational velocity component (axis-angle vector).
    pub w: Vec3,
}

impl Twist {
    /// Creates a twist from its two 3-vectors.
    pub const fn new(v: Vec3, w: Vec3) -> Twist {
        Twist { v, w }
    }

    /// Creates a twist from a 6-element array `[v, ω]`.
    pub fn from_array(a: [f32; 6]) -> Twist {
        Twist {
            v: Vec3::new(a[0], a[1], a[2]),
            w: Vec3::new(a[3], a[4], a[5]),
        }
    }

    /// The twist as a 6-element array `[v, ω]`.
    pub fn to_array(self) -> [f32; 6] {
        [self.v.x, self.v.y, self.v.z, self.w.x, self.w.y, self.w.z]
    }

    /// Euclidean norm of the 6-vector.
    pub fn norm(self) -> f32 {
        (self.v.norm_squared() + self.w.norm_squared()).sqrt()
    }
}

impl Se3 {
    /// The identity transform.
    pub const IDENTITY: Se3 = Se3 {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from a rotation matrix and translation vector.
    ///
    /// The rotation is *not* checked for orthonormality; use
    /// [`Se3::orthonormalized`] after long accumulation chains.
    pub fn new(rotation: Mat3, translation: Vec3) -> Se3 {
        Se3 {
            rotation,
            translation,
        }
    }

    /// A pure translation.
    pub fn from_translation(t: Vec3) -> Se3 {
        Se3 {
            rotation: Mat3::IDENTITY,
            translation: t,
        }
    }

    /// A pure rotation.
    pub fn from_rotation(r: Mat3) -> Se3 {
        Se3 {
            rotation: r,
            translation: Vec3::ZERO,
        }
    }

    /// A rotation of `angle` radians about `axis` followed by translation `t`.
    pub fn from_axis_angle(axis: Vec3, angle: f32, t: Vec3) -> Se3 {
        Se3 {
            rotation: Mat3::from_axis_angle(axis, angle),
            translation: t,
        }
    }

    /// Builds a pose from a unit quaternion and translation.
    pub fn from_quat_translation(q: Quat, t: Vec3) -> Se3 {
        Se3 {
            rotation: q.to_mat3(),
            translation: t,
        }
    }

    /// A "look-at" camera pose: camera at `eye`, optical axis (+z) pointing
    /// at `target`, `up` fixing the roll. Returns a camera-to-world pose.
    ///
    /// Falls back to the identity rotation if `eye` and `target` coincide.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Se3 {
        let forward = match (target - eye).normalized() {
            Some(f) => f,
            None => return Se3::from_translation(eye),
        };
        let right = match forward.cross(up).normalized() {
            Some(r) => r,
            // forward parallel to up: pick any perpendicular
            None => forward.cross(Vec3::X).normalized().unwrap_or(Vec3::Y),
        };
        let down = forward.cross(right); // +y in camera convention points "down"
                                         // columns are the camera basis vectors expressed in world coordinates
        Se3 {
            rotation: Mat3::from_col_vecs(right, down, forward),
            translation: eye,
        }
    }

    /// The rotation part.
    #[inline]
    pub fn rotation(&self) -> Mat3 {
        self.rotation
    }

    /// The translation part.
    #[inline]
    pub fn translation(&self) -> Vec3 {
        self.translation
    }

    /// The rotation as a unit quaternion.
    pub fn rotation_quat(&self) -> Quat {
        Quat::from_mat3(&self.rotation)
    }

    /// Transforms a point (rotation then translation).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Transforms a direction (rotation only).
    #[inline]
    pub fn transform_vector(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Se3 {
        let rt = self.rotation.transpose();
        Se3 {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }

    /// Converts to a homogeneous 4×4 matrix.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.rotation, self.translation)
    }

    /// Extracts the rigid transform from the upper 3×4 block of `m`.
    pub fn from_mat4(m: &Mat4) -> Se3 {
        Se3 {
            rotation: m.rotation(),
            translation: m.translation(),
        }
    }

    /// The exponential map from a twist to a rigid transform (Rodrigues +
    /// the SE(3) `V` matrix for the translation part).
    pub fn exp(xi: Twist) -> Se3 {
        let theta = xi.w.norm();
        if theta < crate::EPS {
            // first-order approximation
            return Se3 {
                rotation: Mat3::IDENTITY + Mat3::skew(xi.w),
                translation: xi.v,
            }
            .orthonormalized();
        }
        let k = Mat3::skew(xi.w * (1.0 / theta));
        let (s, c) = theta.sin_cos();
        let r = Mat3::IDENTITY + k * s + (k * k) * (1.0 - c);
        let v_mat = Mat3::IDENTITY + k * ((1.0 - c) / theta) + (k * k) * ((theta - s) / theta);
        Se3 {
            rotation: r,
            translation: v_mat * xi.v,
        }
    }

    /// The logarithm map from a rigid transform back to a twist.
    ///
    /// Inverse of [`Se3::exp`] for rotation angles in `(-π, π)`.
    pub fn log(&self) -> Twist {
        let cos_theta = crate::clamp((self.rotation.trace() - 1.0) * 0.5, -1.0, 1.0);
        let theta = cos_theta.acos();
        if theta < crate::EPS {
            let w = Vec3::new(
                (self.rotation.m[2][1] - self.rotation.m[1][2]) * 0.5,
                (self.rotation.m[0][2] - self.rotation.m[2][0]) * 0.5,
                (self.rotation.m[1][0] - self.rotation.m[0][1]) * 0.5,
            );
            return Twist {
                v: self.translation,
                w,
            };
        }
        let factor = theta / (2.0 * theta.sin());
        let w = Vec3::new(
            (self.rotation.m[2][1] - self.rotation.m[1][2]) * factor,
            (self.rotation.m[0][2] - self.rotation.m[2][0]) * factor,
            (self.rotation.m[1][0] - self.rotation.m[0][1]) * factor,
        );
        let k = Mat3::skew(w * (1.0 / theta));
        let (s, c) = theta.sin_cos();
        let v_mat = Mat3::IDENTITY + k * ((1.0 - c) / theta) + (k * k) * ((theta - s) / theta);
        let v = v_mat
            .inverse()
            .map(|inv| inv * self.translation)
            .unwrap_or(self.translation);
        Twist { v, w }
    }

    /// Re-orthonormalises the rotation part; see [`Mat3::orthonormalized`].
    pub fn orthonormalized(&self) -> Se3 {
        Se3 {
            rotation: self.rotation.orthonormalized(),
            translation: self.translation,
        }
    }

    /// True when the transform is within `tol` of the identity (rotation in
    /// Frobenius norm, translation in Euclidean norm).
    pub fn is_identity(&self, tol: f32) -> bool {
        self.rotation.distance(&Mat3::IDENTITY) < tol && self.translation.norm() < tol
    }

    /// Translational distance between two poses.
    pub fn translation_distance(&self, other: &Se3) -> f32 {
        (self.translation - other.translation).norm()
    }

    /// Rotational distance between two poses, in radians.
    pub fn rotation_angle_to(&self, other: &Se3) -> f32 {
        let rel = self.rotation.transpose() * other.rotation;
        let cos_theta = crate::clamp((rel.trace() - 1.0) * 0.5, -1.0, 1.0);
        cos_theta.acos()
    }

    /// Interpolates between two poses: slerp on the rotation, lerp on the
    /// translation. `t = 0` yields `self`, `t = 1` yields `other`.
    pub fn interpolate(&self, other: &Se3, t: f32) -> Se3 {
        let q = self.rotation_quat().slerp(other.rotation_quat(), t);
        Se3 {
            rotation: q.to_mat3(),
            translation: self.translation.lerp(other.translation, t),
        }
    }
}

impl Default for Se3 {
    fn default() -> Se3 {
        Se3::IDENTITY
    }
}

impl Mul for Se3 {
    type Output = Se3;
    /// Composition: `(a * b)` applies `b` first, then `a`.
    fn mul(self, rhs: Se3) -> Se3 {
        Se3 {
            rotation: self.rotation * rhs.rotation,
            translation: self.rotation * rhs.translation + self.translation,
        }
    }
}

impl fmt::Display for Se3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Se3 {{ t: {}, q: {} }}",
            self.translation,
            self.rotation_quat()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-4, "{a} != {b}");
    }

    #[test]
    fn compose_then_invert_is_identity() {
        let a = Se3::from_axis_angle(Vec3::new(1.0, 0.5, -0.3), 0.7, Vec3::new(1.0, 2.0, 3.0));
        assert!((a * a.inverse()).is_identity(1e-5));
        assert!((a.inverse() * a).is_identity(1e-5));
    }

    #[test]
    fn composition_order() {
        let a = Se3::from_translation(Vec3::X);
        let b = Se3::from_axis_angle(Vec3::Z, FRAC_PI_2, Vec3::ZERO);
        // a * b: rotate first, then translate
        let p = (a * b).transform_point(Vec3::X);
        assert_close(p, Vec3::new(1.0, 1.0, 0.0));
        // b * a: translate first, then rotate
        let p = (b * a).transform_point(Vec3::X);
        assert_close(p, Vec3::new(0.0, 2.0, 0.0));
    }

    #[test]
    fn exp_log_roundtrip() {
        let xi = Twist::new(Vec3::new(0.1, -0.2, 0.3), Vec3::new(0.4, 0.2, -0.5));
        let t = Se3::exp(xi);
        let back = t.log();
        assert!((back.v - xi.v).norm() < 1e-4, "v mismatch");
        assert!((back.w - xi.w).norm() < 1e-4, "w mismatch");
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert!(Se3::exp(Twist::default()).is_identity(1e-6));
    }

    #[test]
    fn exp_small_angle_stable() {
        let xi = Twist::new(Vec3::new(1e-4, 0.0, 0.0), Vec3::new(0.0, 1e-5, 0.0));
        let t = Se3::exp(xi);
        assert!((t.translation() - xi.v).norm() < 1e-5);
        let back = t.log();
        assert!((back.w - xi.w).norm() < 1e-5);
    }

    #[test]
    fn look_at_points_camera_z_at_target() {
        let eye = Vec3::new(0.0, 1.0, -3.0);
        let target = Vec3::new(0.0, 1.0, 2.0);
        let pose = Se3::look_at(eye, target, Vec3::Y);
        // +z in camera coordinates must map to the direction towards target
        let dir = pose.transform_vector(Vec3::Z);
        assert_close(dir, (target - eye).normalized().unwrap());
        assert_close(pose.translation(), eye);
        // rotation is orthonormal
        let r = pose.rotation();
        assert!((r.determinant() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn look_at_degenerate_falls_back() {
        let pose = Se3::look_at(Vec3::X, Vec3::X, Vec3::Y);
        assert_close(pose.translation(), Vec3::X);
    }

    #[test]
    fn twist_array_roundtrip() {
        let xi = Twist::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(xi.to_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(xi.norm() > 9.5);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = Se3::from_translation(Vec3::X);
        let b = Se3::from_axis_angle(Vec3::Z, 1.0, Vec3::Y);
        assert!(a.interpolate(&b, 0.0).translation_distance(&a) < 1e-6);
        assert!(a.interpolate(&b, 1.0).translation_distance(&b) < 1e-6);
        let mid = a.interpolate(&b, 0.5);
        assert!((mid.rotation_angle_to(&a) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn rotation_angle_between_poses() {
        let a = Se3::IDENTITY;
        let b = Se3::from_axis_angle(Vec3::Y, 0.75, Vec3::ZERO);
        assert!((a.rotation_angle_to(&b) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn mat4_roundtrip() {
        let a = Se3::from_axis_angle(Vec3::new(0.1, 0.9, 0.4), 1.2, Vec3::new(-1.0, 0.5, 2.0));
        let b = Se3::from_mat4(&a.to_mat4());
        assert!(a.translation_distance(&b) < 1e-6);
        assert!(a.rotation_angle_to(&b) < 1e-5);
    }
}
