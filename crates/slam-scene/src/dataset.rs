//! Synthetic RGB-D datasets: rendered frame sequences with ground truth.

use crate::noise::DepthNoiseModel;
use crate::presets;
use crate::render::{RenderOptions, Renderer};
use crate::scene::Scene;
use crate::trajectory::Trajectory;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use slam_math::camera::PinholeCamera;
use slam_math::Se3;

/// Everything needed to generate a dataset deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Dataset name, used in reports.
    pub name: String,
    /// The scene to render.
    pub scene: Scene,
    /// The ground-truth camera path.
    pub trajectory: Trajectory,
    /// Camera intrinsics of the virtual sensor.
    pub camera: PinholeCamera,
    /// Number of frames to render.
    pub frame_count: usize,
    /// Sensor frame rate, used for timestamps (Hz).
    pub fps: f64,
    /// Depth degradation model.
    pub noise: DepthNoiseModel,
    /// RNG seed for the noise (same seed ⇒ identical dataset).
    pub seed: u64,
    /// Trajectory parameter advanced per frame. The per-frame camera
    /// motion is therefore independent of `frame_count`: 100 frames at
    /// the default `0.0101` cover the whole path, 10 frames cover the
    /// first tenth at the same speed.
    pub time_step: f32,
}

impl DatasetConfig {
    /// The default benchmark sequence: the living-room scene on the orbit
    /// trajectory at 640×480/30 Hz with Kinect noise — the workspace's
    /// `living_room/kt2` equivalent.
    pub fn living_room() -> DatasetConfig {
        DatasetConfig {
            name: "living_room".into(),
            scene: presets::living_room(),
            trajectory: presets::living_room_trajectory(),
            camera: PinholeCamera::kinect(),
            frame_count: 100,
            fps: 30.0,
            noise: DepthNoiseModel::kinect(),
            seed: 0x51a8_be9c,
            time_step: 0.0101,
        }
    }

    /// The office scene on the wobble trajectory.
    pub fn office() -> DatasetConfig {
        DatasetConfig {
            name: "office".into(),
            scene: presets::office(),
            trajectory: presets::wobble_trajectory(),
            camera: PinholeCamera::kinect(),
            frame_count: 100,
            fps: 30.0,
            noise: DepthNoiseModel::kinect(),
            seed: 0x0ff1ce,
            time_step: 0.0101,
        }
    }

    /// A fast, tiny configuration for unit tests: the sphere world at
    /// 160×120, 10 frames, no noise.
    pub fn tiny_test() -> DatasetConfig {
        DatasetConfig {
            name: "tiny_test".into(),
            scene: presets::sphere_world(),
            trajectory: presets::living_room_trajectory(),
            camera: PinholeCamera::tiny(),
            frame_count: 10,
            fps: 30.0,
            noise: DepthNoiseModel::ideal(),
            seed: 7,
            time_step: 0.0101,
        }
    }
}

/// One sensor frame: sensed depth + RGB + exact ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index within the sequence.
    pub index: usize,
    /// Timestamp in seconds from sequence start.
    pub timestamp: f64,
    /// Row-major sensed depth in millimetres; `0` marks a hole.
    pub depth_mm: Vec<u16>,
    /// Row-major RGB pixels.
    pub rgb: Vec<[u8; 3]>,
    /// Ground-truth camera-to-world pose.
    pub ground_truth: Se3,
}

impl Frame {
    /// Fraction of pixels with valid (non-zero) depth.
    pub fn valid_depth_fraction(&self) -> f32 {
        if self.depth_mm.is_empty() {
            return 0.0;
        }
        let valid = self.depth_mm.iter().filter(|&&d| d > 0).count();
        valid as f32 / self.depth_mm.len() as f32
    }

    /// The depth image converted to metres (`0.0` = hole).
    pub fn depth_m(&self) -> Vec<f32> {
        self.depth_mm
            .iter()
            .map(|&mm| f32::from(mm) / 1000.0)
            .collect()
    }
}

/// A fully generated synthetic RGB-D sequence.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    frames: Vec<Frame>,
}

impl SyntheticDataset {
    /// Renders all frames of `config`. Deterministic in the config's seed.
    pub fn generate(config: &DatasetConfig) -> SyntheticDataset {
        let renderer = Renderer::with_options(
            config.scene.clone(),
            RenderOptions {
                max_range: config.noise.max_range + 1.0,
                ..RenderOptions::default()
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let n = config.frame_count;
        let frames = (0..n)
            .map(|i| {
                let s = (i as f32 * config.time_step).min(1.0);
                let pose = config.trajectory.pose(s);
                let ideal = renderer.render(&config.camera, &pose);
                let depth_mm = config.noise.apply_image(&ideal.depth, &mut rng);
                Frame {
                    index: i,
                    timestamp: i as f64 / config.fps,
                    depth_mm,
                    rgb: ideal.rgb,
                    ground_truth: pose,
                }
            })
            .collect();
        SyntheticDataset {
            config: config.clone(),
            frames,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The camera intrinsics frames were rendered with.
    pub fn camera(&self) -> &PinholeCamera {
        &self.config.camera
    }

    /// All frames in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the dataset holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The ground-truth trajectory as a pose list.
    pub fn ground_truth(&self) -> Vec<Se3> {
        self.frames.iter().map(|f| f.ground_truth).collect()
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a SyntheticDataset {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny_test())
    }

    #[test]
    fn generates_requested_frames() {
        let d = tiny();
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.frames()[3].index, 3);
    }

    #[test]
    fn timestamps_follow_fps() {
        let d = tiny();
        let dt = d.frames()[1].timestamp - d.frames()[0].timestamp;
        assert!((dt - 1.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn frames_have_mostly_valid_depth() {
        let d = tiny();
        for f in &d {
            assert!(
                f.valid_depth_fraction() > 0.5,
                "frame {} too sparse",
                f.index
            );
        }
    }

    #[test]
    fn ground_truth_matches_trajectory() {
        let cfg = DatasetConfig::tiny_test();
        let d = SyntheticDataset::generate(&cfg);
        let p0 = cfg.trajectory.pose(0.0);
        assert!(d.frames()[0].ground_truth.translation_distance(&p0) < 1e-6);
        assert_eq!(d.ground_truth().len(), d.len());
    }

    #[test]
    fn depth_m_converts_millimetres() {
        let d = tiny();
        let f = &d.frames()[0];
        let m = f.depth_m();
        for (a, b) in f.depth_mm.iter().zip(&m) {
            assert!((f32::from(*a) / 1000.0 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn same_seed_same_dataset() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.frames()[5].depth_mm, b.frames()[5].depth_mm);
    }

    #[test]
    fn different_seed_different_noise() {
        let mut cfg = DatasetConfig::tiny_test();
        cfg.noise = DepthNoiseModel::kinect();
        let a = SyntheticDataset::generate(&cfg);
        cfg.seed += 1;
        let b = SyntheticDataset::generate(&cfg);
        assert_ne!(a.frames()[0].depth_mm, b.frames()[0].depth_mm);
    }

    #[test]
    fn single_frame_dataset() {
        let mut cfg = DatasetConfig::tiny_test();
        cfg.frame_count = 1;
        let d = SyntheticDataset::generate(&cfg);
        assert_eq!(d.len(), 1);
    }
}
