//! Scenes: geometry plus appearance.
//!
//! A [`Scene`] is a list of named [`Sdf`] objects, each with an albedo.
//! Geometry queries return the distance of the *closest* object so the
//! renderer can sphere-trace the whole scene, and the index of that object
//! so it can shade with the right colour.

use crate::sdf::Sdf;
use serde::{Deserialize, Serialize};
use slam_math::Vec3;

/// A linear RGB albedo in `[0, 1]³`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Albedo {
    /// Red component.
    pub r: f32,
    /// Green component.
    pub g: f32,
    /// Blue component.
    pub b: f32,
}

impl Albedo {
    /// Creates an albedo from components, clamped to `[0, 1]`.
    pub fn new(r: f32, g: f32, b: f32) -> Albedo {
        Albedo {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
        }
    }

    /// A neutral grey.
    pub fn grey(v: f32) -> Albedo {
        Albedo::new(v, v, v)
    }

    /// Converts to 8-bit sRGB-ish values after scaling by `shade`.
    pub fn to_rgb8(self, shade: f32) -> [u8; 3] {
        let s = shade.clamp(0.0, 1.0);
        [
            (self.r * s * 255.0) as u8,
            (self.g * s * 255.0) as u8,
            (self.b * s * 255.0) as u8,
        ]
    }
}

impl Default for Albedo {
    fn default() -> Albedo {
        Albedo::grey(0.7)
    }
}

/// One object in a scene: a name (for debugging and reports), geometry and
/// appearance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Human-readable object name (e.g. `"sofa"`).
    pub name: String,
    /// Signed distance field of the object.
    pub sdf: Sdf,
    /// Surface colour.
    pub albedo: Albedo,
}

/// A renderable scene.
///
/// # Examples
///
/// ```
/// use slam_scene::{Scene, Sdf};
/// use slam_scene::scene::Albedo;
/// use slam_math::Vec3;
///
/// let mut scene = Scene::new("two spheres");
/// scene.add("left", Sdf::sphere(Vec3::new(-1.0, 0.0, 0.0), 0.5), Albedo::grey(0.9));
/// scene.add("right", Sdf::sphere(Vec3::new(1.0, 0.0, 0.0), 0.5), Albedo::grey(0.4));
/// let (d, idx) = scene.closest(Vec3::new(-1.0, 0.0, 1.0));
/// assert_eq!(scene.objects()[idx].name, "left");
/// assert!((d - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    name: String,
    objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates an empty scene with the given name.
    pub fn new(name: impl Into<String>) -> Scene {
        Scene {
            name: name.into(),
            objects: Vec::new(),
        }
    }

    /// The scene's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an object and returns `&mut self` for chaining.
    pub fn add(&mut self, name: impl Into<String>, sdf: Sdf, albedo: Albedo) -> &mut Scene {
        self.objects.push(SceneObject {
            name: name.into(),
            sdf,
            albedo,
        });
        self
    }

    /// The scene's objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// True when the scene has no geometry.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Signed distance of the closest object at `p`, together with that
    /// object's index.
    ///
    /// # Panics
    ///
    /// Panics when the scene is empty.
    pub fn closest(&self, p: Vec3) -> (f32, usize) {
        assert!(!self.objects.is_empty(), "closest() on an empty scene");
        let mut best = (f32::INFINITY, 0);
        for (i, obj) in self.objects.iter().enumerate() {
            let d = obj.sdf.distance(p);
            if d < best.0 {
                best = (d, i);
            }
        }
        best
    }

    /// Signed distance of the whole scene (union of all objects). Returns
    /// `+∞` for an empty scene so it never produces a hit.
    pub fn distance(&self, p: Vec3) -> f32 {
        self.objects
            .iter()
            .map(|o| o.sdf.distance(p))
            .fold(f32::INFINITY, f32::min)
    }

    /// Outward surface normal of the whole scene at `p` (central
    /// differences on the union distance).
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        let dx =
            self.distance(p + Vec3::new(H, 0.0, 0.0)) - self.distance(p - Vec3::new(H, 0.0, 0.0));
        let dy =
            self.distance(p + Vec3::new(0.0, H, 0.0)) - self.distance(p - Vec3::new(0.0, H, 0.0));
        let dz =
            self.distance(p + Vec3::new(0.0, 0.0, H)) - self.distance(p - Vec3::new(0.0, 0.0, H));
        Vec3::new(dx, dy, dz).normalized_or_zero()
    }

    /// Total SDF node count over all objects (per-sample cost proxy).
    pub fn complexity(&self) -> usize {
        self.objects.iter().map(|o| o.sdf.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scene() -> Scene {
        let mut s = Scene::new("test");
        s.add("ball", Sdf::sphere(Vec3::ZERO, 1.0), Albedo::grey(0.5));
        s.add(
            "floor",
            Sdf::half_space(Vec3::Y, Vec3::new(0.0, -2.0, 0.0)),
            Albedo::new(0.8, 0.2, 0.2),
        );
        s
    }

    #[test]
    fn distance_is_union_minimum() {
        let s = sample_scene();
        let p = Vec3::new(0.0, -1.8, 0.0);
        // closer to the floor (0.2) than the ball (0.8)
        assert!((s.distance(p) - 0.2).abs() < 1e-6);
        let (d, idx) = s.closest(p);
        assert_eq!(idx, 1);
        assert!((d - 0.2).abs() < 1e-6);
    }

    #[test]
    fn empty_scene_distance_is_infinite() {
        let s = Scene::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.distance(Vec3::ZERO), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "empty scene")]
    fn closest_on_empty_scene_panics() {
        Scene::new("empty").closest(Vec3::ZERO);
    }

    #[test]
    fn normal_of_sphere_points_out() {
        let s = sample_scene();
        let n = s.normal(Vec3::new(0.0, 1.0, 0.0));
        assert!((n - Vec3::Y).norm() < 1e-2);
    }

    #[test]
    fn albedo_clamps_and_scales() {
        let a = Albedo::new(2.0, -1.0, 0.5);
        assert_eq!(a.r, 1.0);
        assert_eq!(a.g, 0.0);
        let rgb = a.to_rgb8(1.0);
        assert_eq!(rgb[0], 255);
        assert_eq!(rgb[1], 0);
        let dark = a.to_rgb8(0.0);
        assert_eq!(dark, [0, 0, 0]);
    }

    #[test]
    fn complexity_sums_nodes() {
        let s = sample_scene();
        assert_eq!(s.complexity(), 2);
    }

    #[test]
    fn builder_chains() {
        let mut s = Scene::new("chain");
        s.add("a", Sdf::sphere(Vec3::ZERO, 1.0), Albedo::default())
            .add("b", Sdf::sphere(Vec3::X, 1.0), Albedo::default());
        assert_eq!(s.objects().len(), 2);
        assert_eq!(s.name(), "chain");
    }
}
