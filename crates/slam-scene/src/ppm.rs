//! Minimal PPM/PGM image serialisation for inspecting rendered frames —
//! the debugging channel the SLAMBench GUI's RGB/depth panes provide.

/// Serialises an RGB image as binary PPM (`P6`).
///
/// # Panics
///
/// Panics when `rgb.len() != width * height`.
pub fn rgb_to_ppm(rgb: &[[u8; 3]], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(rgb.len(), width * height, "pixel buffer size mismatch");
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    out.reserve(rgb.len() * 3);
    for px in rgb {
        out.extend_from_slice(px);
    }
    out
}

/// Serialises a depth image (metres) as an 8-bit binary PGM (`P5`),
/// normalised so `max_depth` maps to white; holes render black.
///
/// # Panics
///
/// Panics when `depth.len() != width * height` or `max_depth <= 0`.
pub fn depth_to_pgm(depth: &[f32], width: usize, height: usize, max_depth: f32) -> Vec<u8> {
    assert_eq!(depth.len(), width * height, "pixel buffer size mismatch");
    assert!(max_depth > 0.0, "max_depth must be positive");
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.reserve(depth.len());
    for &d in depth {
        let v = if d <= 0.0 {
            0u8
        } else {
            ((d / max_depth).clamp(0.0, 1.0) * 255.0) as u8
        };
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_header_and_size() {
        let rgb = vec![[1u8, 2, 3]; 6];
        let ppm = rgb_to_ppm(&rgb, 3, 2);
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 18);
        assert_eq!(&ppm[ppm.len() - 3..], &[1, 2, 3]);
    }

    #[test]
    fn pgm_normalises_and_marks_holes() {
        let depth = vec![0.0f32, 2.0, 4.0, 8.0];
        let pgm = depth_to_pgm(&depth, 2, 2, 4.0);
        let data = &pgm[pgm.len() - 4..];
        assert_eq!(data[0], 0, "hole is black");
        assert_eq!(data[1], 127);
        assert_eq!(data[2], 255);
        assert_eq!(data[3], 255, "beyond max clamps to white");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_panics() {
        let _ = rgb_to_ppm(&[[0; 3]; 3], 2, 2);
    }
}
