//! Signed-distance-field primitives and CSG operators.
//!
//! A scene's geometry is an [`Sdf`] expression tree. Every node evaluates
//! to a signed distance: negative inside the surface, positive outside.
//! The tree form (rather than trait objects) keeps scenes `Clone + Send +
//! Sync + Serialize` for free, which the dataset generator and the fleet
//! runner rely on.

use serde::{Deserialize, Serialize};
use slam_math::Vec3;

/// A signed distance field expression.
///
/// # Examples
///
/// ```
/// use slam_scene::Sdf;
/// use slam_math::Vec3;
///
/// let ball = Sdf::sphere(Vec3::ZERO, 1.0);
/// assert!(ball.distance(Vec3::new(2.0, 0.0, 0.0)) > 0.0); // outside
/// assert!(ball.distance(Vec3::ZERO) < 0.0);               // inside
/// let surface = ball.distance(Vec3::new(1.0, 0.0, 0.0));
/// assert!(surface.abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sdf {
    /// A sphere given by centre and radius.
    Sphere {
        /// Centre of the sphere.
        center: Vec3,
        /// Radius in metres.
        radius: f32,
    },
    /// An axis-aligned box given by centre and half extents.
    Cuboid {
        /// Centre of the box.
        center: Vec3,
        /// Half extents along each axis.
        half_extents: Vec3,
    },
    /// An axis-aligned box with rounded edges.
    RoundedCuboid {
        /// Centre of the box.
        center: Vec3,
        /// Half extents along each axis (before rounding).
        half_extents: Vec3,
        /// Rounding radius.
        radius: f32,
    },
    /// A half space: all points `p` with `normal · p <= offset`.
    HalfSpace {
        /// Outward unit normal of the bounding plane.
        normal: Vec3,
        /// Signed offset of the plane along the normal.
        offset: f32,
    },
    /// A vertical (y-axis) capped cylinder.
    CylinderY {
        /// Centre of the cylinder.
        center: Vec3,
        /// Radius in the xz plane.
        radius: f32,
        /// Half height along y.
        half_height: f32,
    },
    /// Union of two fields (minimum distance).
    Union(Box<Sdf>, Box<Sdf>),
    /// Intersection of two fields (maximum distance).
    Intersection(Box<Sdf>, Box<Sdf>),
    /// The first field with the second carved out.
    Difference(Box<Sdf>, Box<Sdf>),
    /// The complement: inside becomes outside. Turning a box inside out is
    /// how the rooms in [`crate::presets`] are built.
    Complement(Box<Sdf>),
}

impl Sdf {
    /// A sphere at `center` with the given `radius`.
    pub fn sphere(center: Vec3, radius: f32) -> Sdf {
        Sdf::Sphere { center, radius }
    }

    /// An axis-aligned box at `center` with the given `half_extents`.
    pub fn cuboid(center: Vec3, half_extents: Vec3) -> Sdf {
        Sdf::Cuboid {
            center,
            half_extents,
        }
    }

    /// A rounded axis-aligned box.
    pub fn rounded_cuboid(center: Vec3, half_extents: Vec3, radius: f32) -> Sdf {
        Sdf::RoundedCuboid {
            center,
            half_extents,
            radius,
        }
    }

    /// The half space below the plane with (not necessarily unit) `normal`
    /// passing through `point`. A degenerate normal defaults to +y.
    pub fn half_space(normal: Vec3, point: Vec3) -> Sdf {
        let n = normal.normalized().unwrap_or(Vec3::Y);
        Sdf::HalfSpace {
            normal: n,
            offset: n.dot(point),
        }
    }

    /// A vertical capped cylinder.
    pub fn cylinder_y(center: Vec3, radius: f32, half_height: f32) -> Sdf {
        Sdf::CylinderY {
            center,
            radius,
            half_height,
        }
    }

    /// Union with another field.
    pub fn union(self, other: Sdf) -> Sdf {
        Sdf::Union(Box::new(self), Box::new(other))
    }

    /// Intersection with another field.
    pub fn intersection(self, other: Sdf) -> Sdf {
        Sdf::Intersection(Box::new(self), Box::new(other))
    }

    /// This field with `other` carved out.
    pub fn difference(self, other: Sdf) -> Sdf {
        Sdf::Difference(Box::new(self), Box::new(other))
    }

    /// The complement of this field (inside out).
    pub fn complement(self) -> Sdf {
        Sdf::Complement(Box::new(self))
    }

    /// Evaluates the signed distance at point `p`.
    ///
    /// Exact for primitives; CSG results are a lower bound on the true
    /// distance, which is exactly the property sphere tracing requires.
    pub fn distance(&self, p: Vec3) -> f32 {
        match self {
            Sdf::Sphere { center, radius } => (p - *center).norm() - radius,
            Sdf::Cuboid {
                center,
                half_extents,
            } => {
                let q = (p - *center).abs() - *half_extents;
                let outside = q.max(Vec3::ZERO).norm();
                let inside = q.max_component().min(0.0);
                outside + inside
            }
            Sdf::RoundedCuboid {
                center,
                half_extents,
                radius,
            } => {
                let q = (p - *center).abs() - *half_extents;
                let outside = q.max(Vec3::ZERO).norm();
                let inside = q.max_component().min(0.0);
                outside + inside - radius
            }
            Sdf::HalfSpace { normal, offset } => normal.dot(p) - offset,
            Sdf::CylinderY {
                center,
                radius,
                half_height,
            } => {
                let d = p - *center;
                let radial = (d.x * d.x + d.z * d.z).sqrt() - radius;
                let axial = d.y.abs() - half_height;
                let outside = (radial.max(0.0).powi(2) + axial.max(0.0).powi(2)).sqrt();
                let inside = radial.max(axial).min(0.0);
                outside + inside
            }
            Sdf::Union(a, b) => a.distance(p).min(b.distance(p)),
            Sdf::Intersection(a, b) => a.distance(p).max(b.distance(p)),
            Sdf::Difference(a, b) => a.distance(p).max(-b.distance(p)),
            Sdf::Complement(a) => -a.distance(p),
        }
    }

    /// Estimates the outward surface normal at `p` by central differences.
    ///
    /// Meaningful near the surface; far from it the gradient of the
    /// distance field is returned, which is still the steepest-descent
    /// direction the renderer needs.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        let dx =
            self.distance(p + Vec3::new(H, 0.0, 0.0)) - self.distance(p - Vec3::new(H, 0.0, 0.0));
        let dy =
            self.distance(p + Vec3::new(0.0, H, 0.0)) - self.distance(p - Vec3::new(0.0, H, 0.0));
        let dz =
            self.distance(p + Vec3::new(0.0, 0.0, H)) - self.distance(p - Vec3::new(0.0, 0.0, H));
        Vec3::new(dx, dy, dz).normalized_or_zero()
    }

    /// Number of nodes in the expression tree (a proxy for per-sample
    /// evaluation cost, reported by the dataset generator).
    pub fn node_count(&self) -> usize {
        match self {
            Sdf::Union(a, b) | Sdf::Intersection(a, b) | Sdf::Difference(a, b) => {
                1 + a.node_count() + b.node_count()
            }
            Sdf::Complement(a) => 1 + a.node_count(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_distance_is_exact() {
        let s = Sdf::sphere(Vec3::new(1.0, 2.0, 3.0), 0.5);
        assert!((s.distance(Vec3::new(1.0, 2.0, 4.0)) - 0.5).abs() < 1e-6);
        assert!((s.distance(Vec3::new(1.0, 2.0, 3.0)) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn cuboid_distance_inside_outside() {
        let b = Sdf::cuboid(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert!((b.distance(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
        // inside: distance to closest face
        assert!((b.distance(Vec3::ZERO) + 1.0).abs() < 1e-6);
        // corner region: Euclidean distance to the corner
        let d = b.distance(Vec3::new(2.0, 3.0, 4.0));
        assert!((d - (3.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn rounded_cuboid_shrinks_distance_by_radius() {
        let b = Sdf::cuboid(Vec3::ZERO, Vec3::ONE);
        let r = Sdf::rounded_cuboid(Vec3::ZERO, Vec3::ONE, 0.1);
        let p = Vec3::new(3.0, 0.0, 0.0);
        assert!((b.distance(p) - r.distance(p) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn half_space_signs() {
        let floor = Sdf::half_space(Vec3::Y, Vec3::ZERO); // below y=0 is inside
        assert!(floor.distance(Vec3::new(0.0, -1.0, 0.0)) < 0.0);
        assert!(floor.distance(Vec3::new(0.0, 1.0, 0.0)) > 0.0);
        assert!(floor.distance(Vec3::ZERO).abs() < 1e-6);
    }

    #[test]
    fn cylinder_distance() {
        let c = Sdf::cylinder_y(Vec3::ZERO, 1.0, 2.0);
        assert!((c.distance(Vec3::new(3.0, 0.0, 0.0)) - 2.0).abs() < 1e-6);
        assert!((c.distance(Vec3::new(0.0, 3.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!(c.distance(Vec3::ZERO) < 0.0);
    }

    #[test]
    fn union_takes_minimum() {
        let a = Sdf::sphere(Vec3::new(-2.0, 0.0, 0.0), 1.0);
        let b = Sdf::sphere(Vec3::new(2.0, 0.0, 0.0), 1.0);
        let u = a.clone().union(b.clone());
        let p = Vec3::new(-2.0, 0.0, 0.0);
        assert_eq!(u.distance(p), a.distance(p).min(b.distance(p)));
        assert!(u.distance(p) < 0.0);
    }

    #[test]
    fn complement_flips_sign() {
        let room = Sdf::cuboid(Vec3::ZERO, Vec3::splat(2.0)).complement();
        // centre of the room is *inside* the complement's empty space...
        assert!(room.distance(Vec3::ZERO) > 0.0);
        // ...and beyond the walls is "solid"
        assert!(room.distance(Vec3::splat(3.0)) < 0.0);
    }

    #[test]
    fn difference_carves() {
        let slab = Sdf::cuboid(Vec3::ZERO, Vec3::new(2.0, 1.0, 2.0));
        let hole = Sdf::sphere(Vec3::ZERO, 0.5);
        let carved = slab.difference(hole);
        assert!(carved.distance(Vec3::ZERO) > 0.0); // hollow centre
        assert!(carved.distance(Vec3::new(1.5, 0.0, 0.0)) < 0.0); // body remains
    }

    #[test]
    fn normal_points_outward() {
        let s = Sdf::sphere(Vec3::ZERO, 1.0);
        let n = s.normal(Vec3::new(1.0, 0.0, 0.0));
        assert!((n - Vec3::X).norm() < 1e-2);
        let b = Sdf::cuboid(Vec3::ZERO, Vec3::ONE);
        let n = b.normal(Vec3::new(0.0, 1.0, 0.0));
        assert!((n - Vec3::Y).norm() < 1e-2);
    }

    #[test]
    fn node_count_counts_tree() {
        let s = Sdf::sphere(Vec3::ZERO, 1.0)
            .union(Sdf::cuboid(Vec3::ZERO, Vec3::ONE))
            .difference(Sdf::cylinder_y(Vec3::ZERO, 0.2, 0.5));
        assert_eq!(s.node_count(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Sdf::sphere(Vec3::ZERO, 1.0).union(Sdf::cuboid(Vec3::X, Vec3::ONE));
        let json = serde_json::to_string(&s).unwrap();
        let back: Sdf = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
