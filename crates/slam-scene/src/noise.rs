//! Kinect-style depth sensor noise.
//!
//! Ideal rendered depth is degraded with the standard structured-light
//! noise model (Khoshelham & Elberink, 2012): axial noise growing
//! quadratically with distance, plus dropouts at grazing angles / random
//! pixels, plus millimetre quantisation. The KinectFusion bilateral filter
//! and the `mu` TSDF truncation exist to cope with exactly this noise, so
//! feeding it keeps the performance–accuracy trade-off realistic.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic depth-noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthNoiseModel {
    /// Constant part of the axial noise standard deviation (metres).
    pub sigma_base: f32,
    /// Quadratic coefficient of the axial noise (metres⁻¹): the standard
    /// deviation at depth `z` is `sigma_base + sigma_quad * (z - z0)²`.
    pub sigma_quad: f32,
    /// Reference depth `z0` of the quadratic model (metres).
    pub z0: f32,
    /// Probability that any valid pixel drops out entirely.
    pub dropout: f32,
    /// Minimum sensed range (metres); closer pixels read as holes, like a
    /// structured-light sensor's blind zone.
    pub min_range: f32,
    /// Maximum sensed range (metres); farther pixels read as holes.
    pub max_range: f32,
}

impl DepthNoiseModel {
    /// The Kinect v1 model from Khoshelham & Elberink (2012).
    pub fn kinect() -> DepthNoiseModel {
        DepthNoiseModel {
            sigma_base: 0.0012,
            sigma_quad: 0.0019,
            z0: 0.4,
            dropout: 0.01,
            min_range: 0.4,
            max_range: 4.5,
        }
    }

    /// A noise-free model (still applies range limits and quantisation).
    pub fn ideal() -> DepthNoiseModel {
        DepthNoiseModel {
            sigma_base: 0.0,
            sigma_quad: 0.0,
            z0: 0.4,
            dropout: 0.0,
            min_range: 0.1,
            max_range: 10.0,
        }
    }

    /// Axial noise standard deviation at depth `z` (metres).
    pub fn sigma_at(&self, z: f32) -> f32 {
        let dz = z - self.z0;
        self.sigma_base + self.sigma_quad * dz * dz
    }

    /// Applies the model to one ideal depth value (metres), returning the
    /// sensed value in millimetres (`0` = hole).
    pub fn apply(&self, z: f32, rng: &mut impl Rng) -> u16 {
        if z <= 0.0 || z < self.min_range || z > self.max_range {
            return 0;
        }
        if self.dropout > 0.0 && rng.gen::<f32>() < self.dropout {
            return 0;
        }
        let noisy = if self.sigma_base > 0.0 || self.sigma_quad > 0.0 {
            z + gaussian(rng) * self.sigma_at(z)
        } else {
            z
        };
        if noisy <= 0.0 {
            return 0;
        }
        let mm = (noisy * 1000.0).round();
        if mm > f32::from(u16::MAX) {
            0
        } else {
            mm as u16
        }
    }

    /// Applies the model to a whole depth image (metres in, millimetres
    /// out, row-major, `0` = hole).
    pub fn apply_image(&self, depth: &[f32], rng: &mut impl Rng) -> Vec<u16> {
        depth.iter().map(|&z| self.apply(z, rng)).collect()
    }
}

impl Default for DepthNoiseModel {
    fn default() -> DepthNoiseModel {
        DepthNoiseModel::kinect()
    }
}

/// Laces a metre-unit depth map with non-finite pixels — the hostile
/// sensor frame of the adversarial suite. Roughly `fraction` of the
/// pixels are overwritten, cycling through `NaN`, `+∞` and `-∞` so every
/// non-finite class is represented. The millimetre wire format cannot
/// carry these values (`u16` has no NaN), so laced frames are fed to the
/// float-depth pipeline entry point directly; a correct pipeline treats
/// every laced pixel as a hole and lets none of them escape into the
/// TSDF, the weights, the poses or the ATE.
pub fn lace_non_finite(depth_m: &mut [f32], fraction: f32, rng: &mut impl Rng) {
    let poisons = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
    let mut next = 0usize;
    for d in depth_m.iter_mut() {
        if rng.gen::<f32>() < fraction {
            *d = poisons[next % poisons.len()];
            next += 1;
        }
    }
}

/// A standard-normal sample via Box–Muller (keeps us off `rand_distr`).
fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen();
        if u1 > 1e-12 {
            let u2: f32 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ideal_model_quantises_only() {
        let m = DepthNoiseModel::ideal();
        let mut r = rng();
        assert_eq!(m.apply(1.2345, &mut r), 1235); // rounded to mm
        assert_eq!(m.apply(2.0, &mut r), 2000);
    }

    #[test]
    fn out_of_range_is_hole() {
        let m = DepthNoiseModel::kinect();
        let mut r = rng();
        assert_eq!(m.apply(0.1, &mut r), 0); // below min range
        assert_eq!(m.apply(9.0, &mut r), 0); // beyond max range
        assert_eq!(m.apply(0.0, &mut r), 0);
        assert_eq!(m.apply(-1.0, &mut r), 0);
    }

    #[test]
    fn sigma_grows_quadratically() {
        let m = DepthNoiseModel::kinect();
        assert!(m.sigma_at(4.0) > m.sigma_at(2.0));
        assert!(m.sigma_at(2.0) > m.sigma_at(0.5));
        // roughly the published magnitudes: a few mm at 2 m
        let s2 = m.sigma_at(2.0);
        assert!(s2 > 0.002 && s2 < 0.01, "sigma(2m) = {s2}");
    }

    #[test]
    fn noise_statistics_match_model() {
        let m = DepthNoiseModel::kinect();
        let mut r = rng();
        let z = 2.0f32;
        let samples: Vec<f32> = (0..20_000)
            .filter_map(|_| {
                let mm = m.apply(z, &mut r);
                (mm > 0).then_some(mm as f32 / 1000.0)
            })
            .collect();
        let n = samples.len() as f32;
        let mean = samples.iter().sum::<f32>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - z).abs() < 0.001, "mean {mean}");
        let sigma = m.sigma_at(z);
        assert!(
            (var.sqrt() - sigma).abs() < 0.2 * sigma + 3e-4,
            "std {}",
            var.sqrt()
        );
    }

    #[test]
    fn dropout_rate_is_respected() {
        let m = DepthNoiseModel {
            dropout: 0.25,
            ..DepthNoiseModel::kinect()
        };
        let mut r = rng();
        let holes = (0..10_000).filter(|_| m.apply(2.0, &mut r) == 0).count();
        let rate = holes as f32 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "dropout rate {rate}");
    }

    #[test]
    fn apply_image_maps_pixelwise() {
        let m = DepthNoiseModel::ideal();
        let mut r = rng();
        let img = m.apply_image(&[1.0, 0.0, 2.0, 20.0], &mut r);
        assert_eq!(img, vec![1000, 0, 2000, 0]);
    }

    #[test]
    fn lacing_injects_every_non_finite_class() {
        let mut depth = vec![2.0f32; 400];
        lace_non_finite(&mut depth, 0.1, &mut rng());
        let nans = depth.iter().filter(|d| d.is_nan()).count();
        let infs = depth.iter().filter(|d| d.is_infinite()).count();
        let finite = depth.iter().filter(|d| d.is_finite()).count();
        assert!(nans > 0, "no NaN laced");
        assert!(infs > 0, "no Inf laced");
        assert!(finite > 300, "lacing overwrote too much: {finite} finite");
        // deterministic under a fixed seed
        let mut again = vec![2.0f32; 400];
        lace_non_finite(&mut again, 0.1, &mut rng());
        assert_eq!(
            depth.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let m = DepthNoiseModel::kinect();
        let a = m.apply_image(&vec![2.0; 100], &mut rng());
        let b = m.apply_image(&vec![2.0; 100], &mut rng());
        assert_eq!(a, b);
    }
}
