//! Sphere-tracing renderer: scene × camera pose → ideal depth + RGB.
//!
//! This plays the role of the offline ray tracer that produced the
//! ICL-NUIM sequences. Output depth is the *z-depth* (distance along the
//! optical axis), which is what RGB-D sensors report and what the
//! KinectFusion preprocessing expects.

use crate::scene::Scene;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};

/// Renderer settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Maximum ray length in metres; rays that exceed it produce a depth
    /// hole (value `0`), like a sensor's maximum range.
    pub max_range: f32,
    /// Sphere-tracing hit threshold as a fraction of the current ray
    /// length (plus a small absolute floor).
    pub hit_epsilon: f32,
    /// Maximum sphere-tracing steps per ray.
    pub max_steps: usize,
    /// Light direction for Lambertian shading of the RGB image
    /// (world frame; need not be normalised).
    pub light_dir: Vec3,
    /// Ambient light term in `[0, 1]`.
    pub ambient: f32,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            max_range: 8.0,
            hit_epsilon: 1e-4,
            max_steps: 192,
            light_dir: Vec3::new(0.4, -1.0, 0.3),
            ambient: 0.25,
        }
    }
}

/// An ideal (noise-free) rendered RGB-D frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedFrame {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Row-major z-depth in metres; `0.0` marks a hole (no hit in range).
    pub depth: Vec<f32>,
    /// Row-major RGB pixels.
    pub rgb: Vec<[u8; 3]>,
}

impl RenderedFrame {
    /// Depth at pixel `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics when the pixel is out of bounds.
    pub fn depth_at(&self, u: usize, v: usize) -> f32 {
        assert!(u < self.width && v < self.height, "pixel out of bounds");
        self.depth[v * self.width + u]
    }

    /// Fraction of pixels with valid (non-hole) depth.
    pub fn valid_fraction(&self) -> f32 {
        if self.depth.is_empty() {
            return 0.0;
        }
        let valid = self.depth.iter().filter(|&&d| d > 0.0).count();
        valid as f32 / self.depth.len() as f32
    }
}

/// A sphere-tracing renderer over a [`Scene`].
#[derive(Debug, Clone)]
pub struct Renderer {
    scene: Scene,
    options: RenderOptions,
}

impl Renderer {
    /// Creates a renderer with default [`RenderOptions`].
    pub fn new(scene: Scene) -> Renderer {
        Renderer {
            scene,
            options: RenderOptions::default(),
        }
    }

    /// Creates a renderer with explicit options.
    pub fn with_options(scene: Scene, options: RenderOptions) -> Renderer {
        Renderer { scene, options }
    }

    /// The scene being rendered.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The active options.
    pub fn options(&self) -> &RenderOptions {
        &self.options
    }

    /// Casts a single ray from `origin` along (unit) `dir`; returns the
    /// Euclidean hit distance, or `None` when nothing is hit within range.
    pub fn cast_ray(&self, origin: Vec3, dir: Vec3) -> Option<f32> {
        if self.scene.is_empty() {
            return None;
        }
        let mut t = 0.0f32;
        for _ in 0..self.options.max_steps {
            let p = origin + dir * t;
            let d = self.scene.distance(p);
            if d < self.options.hit_epsilon * t.max(1.0) {
                return Some(t);
            }
            // sphere tracing step; small floor avoids stalling on grazing rays
            t += d.max(1e-4);
            if t > self.options.max_range {
                return None;
            }
        }
        // Ran out of steps very close to a surface: accept the hit if we
        // are within a loose band, otherwise report a hole.
        let p = origin + dir * t;
        if self.scene.distance(p) < 5e-3 {
            Some(t)
        } else {
            None
        }
    }

    /// Renders a full RGB-D frame from the camera-to-world `pose`.
    pub fn render(&self, camera: &PinholeCamera, pose: &Se3) -> RenderedFrame {
        let (w, h) = (camera.width, camera.height);
        let mut depth = vec![0.0f32; w * h];
        let mut rgb = vec![[0u8; 3]; w * h];
        let origin = pose.translation();
        let light = self.options.light_dir.normalized_or_zero();
        for v in 0..h {
            for u in 0..w {
                let dir_cam = camera.ray_direction(u as f32, v as f32);
                let dir = pose.transform_vector(dir_cam);
                if let Some(t) = self.cast_ray(origin, dir) {
                    // z-depth: component of the hit along the optical axis
                    let z = t * dir_cam.z;
                    if z > 0.0 && z <= self.options.max_range {
                        let idx = v * w + u;
                        depth[idx] = z;
                        let p = origin + dir * t;
                        let (_, obj_idx) = self.scene.closest(p);
                        let n = self.scene.normal(p);
                        let diffuse = (-light).dot(n).max(0.0);
                        let shade = self.options.ambient + (1.0 - self.options.ambient) * diffuse;
                        rgb[idx] = self.scene.objects()[obj_idx].albedo.to_rgb8(shade);
                    }
                }
            }
        }
        RenderedFrame {
            width: w,
            height: h,
            depth,
            rgb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Albedo;
    use crate::sdf::Sdf;

    fn wall_scene() -> Scene {
        // a wall at z = 2 in front of a camera at the origin looking +z
        let mut s = Scene::new("wall");
        s.add(
            "wall",
            Sdf::half_space(-Vec3::Z, Vec3::new(0.0, 0.0, 2.0)),
            Albedo::grey(0.8),
        );
        s
    }

    #[test]
    fn ray_hits_wall_at_exact_distance() {
        let r = Renderer::new(wall_scene());
        let t = r.cast_ray(Vec3::ZERO, Vec3::Z).expect("hit");
        assert!((t - 2.0).abs() < 1e-2, "got {t}");
    }

    #[test]
    fn ray_misses_when_pointing_away() {
        let r = Renderer::new(wall_scene());
        assert!(r.cast_ray(Vec3::ZERO, -Vec3::Z).is_none());
    }

    #[test]
    fn empty_scene_never_hits() {
        let r = Renderer::new(Scene::new("empty"));
        assert!(r.cast_ray(Vec3::ZERO, Vec3::Z).is_none());
    }

    #[test]
    fn rendered_wall_has_flat_z_depth() {
        let r = Renderer::new(wall_scene());
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &Se3::IDENTITY);
        // z-depth of a fronto-parallel plane is constant across the image
        let centre = frame.depth_at(cam.width / 2, cam.height / 2);
        assert!((centre - 2.0).abs() < 1e-2);
        let corner = frame.depth_at(0, 0);
        assert!(
            (corner - 2.0).abs() < 2e-2,
            "z-depth should be flat, got {corner}"
        );
        assert!(frame.valid_fraction() > 0.99);
    }

    #[test]
    fn sphere_depth_profile() {
        let mut s = Scene::new("ball");
        s.add(
            "ball",
            Sdf::sphere(Vec3::new(0.0, 0.0, 3.0), 1.0),
            Albedo::grey(0.9),
        );
        let r = Renderer::new(s);
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &Se3::IDENTITY);
        // centre pixel hits the nearest point of the sphere
        let centre = frame.depth_at(cam.width / 2, cam.height / 2);
        assert!((centre - 2.0).abs() < 1e-2, "got {centre}");
        // border pixels miss
        assert_eq!(frame.depth_at(0, 0), 0.0);
        assert!(frame.valid_fraction() > 0.05);
        assert!(frame.valid_fraction() < 0.9);
    }

    #[test]
    fn beyond_max_range_is_hole() {
        let opts = RenderOptions {
            max_range: 1.0,
            ..RenderOptions::default()
        };
        let r = Renderer::with_options(wall_scene(), opts);
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &Se3::IDENTITY);
        assert_eq!(frame.valid_fraction(), 0.0);
    }

    #[test]
    fn shading_darker_away_from_light() {
        let mut s = Scene::new("ball");
        s.add(
            "ball",
            Sdf::sphere(Vec3::new(0.0, 0.0, 3.0), 1.0),
            Albedo::grey(1.0),
        );
        let r = Renderer::new(s);
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &Se3::IDENTITY);
        // light travels towards -y, so surfaces whose normals point +y are
        // lit. The camera convention is y-down: with the identity pose,
        // larger image v means larger world y, so the *bottom* of the image
        // sees the lit side of the sphere.
        let cx = cam.width / 2;
        let top = frame.rgb[(cam.height / 2 - 20) * cam.width + cx][0] as i32;
        let bottom = frame.rgb[(cam.height / 2 + 20) * cam.width + cx][0] as i32;
        assert!(
            bottom > top,
            "lit side {bottom} should outshine dark side {top}"
        );
    }

    #[test]
    fn camera_translation_shifts_depth() {
        let r = Renderer::new(wall_scene());
        let cam = PinholeCamera::tiny();
        let closer = Se3::from_translation(Vec3::new(0.0, 0.0, 1.0));
        let frame = r.render(&cam, &closer);
        let centre = frame.depth_at(cam.width / 2, cam.height / 2);
        assert!((centre - 1.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn depth_at_out_of_bounds_panics() {
        let frame = RenderedFrame {
            width: 2,
            height: 2,
            depth: vec![0.0; 4],
            rgb: vec![[0; 3]; 4],
        };
        frame.depth_at(2, 0);
    }
}
