//! Synthetic RGB-D scene rendering, camera trajectories and dataset
//! generation — the workspace's substitute for the ICL-NUIM dataset.
//!
//! The original SLAMBench evaluates KinectFusion on the ICL-NUIM
//! `living_room` sequences: ray-traced RGB-D frames of a synthetic room
//! with perfect ground-truth camera poses. We reproduce that recipe
//! entirely in Rust:
//!
//! 1. a scene is a signed-distance field ([`sdf::Sdf`]) composed of
//!    primitives and CSG operators ([`scene::Scene`] adds albedos),
//! 2. a camera path is a [`trajectory::Trajectory`] with exact poses,
//! 3. the sphere-tracing [`render::Renderer`] turns scene × pose into a
//!    depth + RGB frame,
//! 4. a Kinect-style [`noise::DepthNoiseModel`] degrades the ideal depth,
//! 5. [`dataset::SyntheticDataset`] packages everything as a frame stream
//!    with ground truth, mirroring a recorded RGB-D sequence.
//!
//! # Examples
//!
//! ```
//! use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
//!
//! let mut config = DatasetConfig::living_room();
//! config.frame_count = 4;
//! config.camera = slam_math::camera::PinholeCamera::tiny();
//! let dataset = SyntheticDataset::generate(&config);
//! assert_eq!(dataset.len(), 4);
//! let frame = &dataset.frames()[0];
//! assert!(frame.valid_depth_fraction() > 0.5);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod noise;
pub mod ppm;
pub mod presets;
pub mod render;
pub mod scene;
pub mod sdf;
pub mod trajectory;

pub use dataset::{DatasetConfig, Frame, SyntheticDataset};
pub use scene::Scene;
pub use sdf::Sdf;
pub use trajectory::Trajectory;
