//! Ground-truth camera trajectories.
//!
//! A trajectory maps normalised time `s ∈ [0, 1]` to a camera-to-world
//! pose. Because the pose is analytic, the dataset's ground truth is exact
//! — the same property that makes ICL-NUIM suitable for ATE evaluation.

use serde::{Deserialize, Serialize};
use slam_math::{Se3, Vec3};

/// A parametric camera path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trajectory {
    /// A horizontal circular orbit around `center`, always looking at
    /// `target`. `sweep` is the total angle covered in radians (2π for a
    /// full loop); small sweeps give the gentle pans typical of handheld
    /// scans.
    Orbit {
        /// Centre of the circular path.
        center: Vec3,
        /// Orbit radius in metres.
        radius: f32,
        /// Camera height (y) relative to `center`.
        height: f32,
        /// Point the camera looks at.
        target: Vec3,
        /// Total angular sweep in radians.
        sweep: f32,
        /// Starting angle in radians.
        start_angle: f32,
    },
    /// A Lissajous-style wobble around a base position, looking at a fixed
    /// target — approximates a person scanning a room corner.
    Wobble {
        /// Mean camera position.
        base: Vec3,
        /// Oscillation amplitudes along each axis.
        amplitude: Vec3,
        /// Oscillation frequencies (cycles over the whole trajectory).
        frequency: Vec3,
        /// Point the camera looks at.
        target: Vec3,
    },
    /// Piecewise pose interpolation through explicit keyframes
    /// (slerp + lerp between consecutive poses, uniform spacing).
    Keyframes(
        /// The poses to interpolate through. Must contain at least one.
        Vec<Se3>,
    ),
}

impl Trajectory {
    /// The pose at normalised time `s`; values outside `[0, 1]` are
    /// clamped.
    pub fn pose(&self, s: f32) -> Se3 {
        let s = s.clamp(0.0, 1.0);
        match self {
            Trajectory::Orbit {
                center,
                radius,
                height,
                target,
                sweep,
                start_angle,
            } => {
                let angle = start_angle + sweep * s;
                let eye = Vec3::new(
                    center.x + radius * angle.cos(),
                    center.y + height,
                    center.z + radius * angle.sin(),
                );
                Se3::look_at(eye, *target, Vec3::Y)
            }
            Trajectory::Wobble {
                base,
                amplitude,
                frequency,
                target,
            } => {
                use std::f32::consts::TAU;
                let eye = Vec3::new(
                    base.x + amplitude.x * (TAU * frequency.x * s).sin(),
                    base.y + amplitude.y * (TAU * frequency.y * s).sin(),
                    base.z + amplitude.z * (TAU * frequency.z * s).cos(),
                );
                Se3::look_at(eye, *target, Vec3::Y)
            }
            Trajectory::Keyframes(poses) => {
                assert!(
                    !poses.is_empty(),
                    "keyframe trajectory needs at least one pose"
                );
                if poses.len() == 1 {
                    return poses[0];
                }
                let t = s * (poses.len() - 1) as f32;
                let i = (t.floor() as usize).min(poses.len() - 2);
                poses[i].interpolate(&poses[i + 1], t - i as f32)
            }
        }
    }

    /// Samples `n` equally spaced poses over `[0, 1]` (inclusive of both
    /// endpoints when `n > 1`).
    pub fn sample(&self, n: usize) -> Vec<Se3> {
        match n {
            0 => Vec::new(),
            1 => vec![self.pose(0.0)],
            _ => (0..n)
                .map(|i| self.pose(i as f32 / (n - 1) as f32))
                .collect(),
        }
    }

    /// Total path length, estimated with `steps` linear segments.
    pub fn path_length(&self, steps: usize) -> f32 {
        let poses = self.sample(steps.max(2));
        poses
            .windows(2)
            .map(|w| w[0].translation_distance(&w[1]))
            .sum()
    }

    /// Maximum translational speed (m per unit `s`), estimated with
    /// `steps` segments. Useful to verify inter-frame motion stays within
    /// what ICP can track.
    pub fn max_step(&self, steps: usize) -> f32 {
        let poses = self.sample(steps.max(2));
        poses
            .windows(2)
            .map(|w| w[0].translation_distance(&w[1]))
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orbit() -> Trajectory {
        Trajectory::Orbit {
            center: Vec3::ZERO,
            radius: 2.0,
            height: 1.0,
            target: Vec3::ZERO,
            sweep: std::f32::consts::TAU,
            start_angle: 0.0,
        }
    }

    #[test]
    fn orbit_stays_on_circle() {
        let t = orbit();
        for i in 0..10 {
            let pose = t.pose(i as f32 / 9.0);
            let p = pose.translation();
            let radial = (p.x * p.x + p.z * p.z).sqrt();
            assert!((radial - 2.0).abs() < 1e-4);
            assert!((p.y - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn orbit_looks_at_target() {
        let t = orbit();
        let pose = t.pose(0.37);
        let fwd = pose.transform_vector(Vec3::Z);
        let expected = (Vec3::ZERO - pose.translation()).normalized().unwrap();
        assert!((fwd - expected).norm() < 1e-4);
    }

    #[test]
    fn full_orbit_returns_to_start() {
        let t = orbit();
        assert!(t.pose(0.0).translation_distance(&t.pose(1.0)) < 1e-4);
    }

    #[test]
    fn time_is_clamped() {
        let t = orbit();
        assert!(t.pose(-3.0).translation_distance(&t.pose(0.0)) < 1e-6);
        assert!(t.pose(7.0).translation_distance(&t.pose(1.0)) < 1e-6);
    }

    #[test]
    fn wobble_stays_within_amplitude() {
        let t = Trajectory::Wobble {
            base: Vec3::new(0.0, 1.0, -2.0),
            amplitude: Vec3::new(0.3, 0.1, 0.2),
            frequency: Vec3::new(1.0, 2.0, 1.0),
            target: Vec3::ZERO,
        };
        for i in 0..50 {
            let p = t.pose(i as f32 / 49.0).translation();
            assert!((p.x).abs() <= 0.3 + 1e-5);
            assert!((p.y - 1.0).abs() <= 0.1 + 1e-5);
            assert!((p.z + 2.0).abs() <= 0.2 + 1e-5);
        }
    }

    #[test]
    fn keyframes_interpolate_linearly() {
        let t = Trajectory::Keyframes(vec![
            Se3::from_translation(Vec3::ZERO),
            Se3::from_translation(Vec3::X),
            Se3::from_translation(Vec3::new(1.0, 1.0, 0.0)),
        ]);
        assert!((t.pose(0.5).translation() - Vec3::X).norm() < 1e-5);
        assert!((t.pose(0.25).translation() - Vec3::new(0.5, 0.0, 0.0)).norm() < 1e-5);
    }

    #[test]
    fn single_keyframe_is_constant() {
        let pose = Se3::from_translation(Vec3::Y);
        let t = Trajectory::Keyframes(vec![pose]);
        assert!(t.pose(0.7).translation_distance(&pose) < 1e-6);
    }

    #[test]
    fn sample_endpoints() {
        let t = orbit();
        let poses = t.sample(11);
        assert_eq!(poses.len(), 11);
        assert!(poses[0].translation_distance(&t.pose(0.0)) < 1e-6);
        assert!(poses[10].translation_distance(&t.pose(1.0)) < 1e-6);
        assert!(t.sample(0).is_empty());
        assert_eq!(t.sample(1).len(), 1);
    }

    #[test]
    fn path_length_of_full_orbit_is_circumference() {
        let t = orbit();
        let len = t.path_length(1000);
        let circ = std::f32::consts::TAU * 2.0;
        assert!((len - circ).abs() < 0.01 * circ);
    }

    #[test]
    fn max_step_scales_with_sampling() {
        let t = orbit();
        // 100 segments of a 4π-metre path
        let step = t.max_step(101);
        assert!(step < 0.2);
        assert!(step > 0.05);
    }
}
