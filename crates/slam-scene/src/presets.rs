//! Ready-made scenes and trajectories mirroring the ICL-NUIM sequences.
//!
//! World convention: the scenes live inside the positive octant so they fit
//! a KinectFusion TSDF volume spanning `[0, volume_size]³` with the default
//! `volume_size = 4 m`. The floor is at `y = 0`.

use crate::scene::{Albedo, Scene};
use crate::sdf::Sdf;
use crate::trajectory::Trajectory;
use slam_math::Vec3;

/// Centre of the preset rooms (and the natural look-at target).
pub const ROOM_CENTER: Vec3 = Vec3 {
    x: 2.0,
    y: 1.1,
    z: 2.0,
};

/// A furnished living room, the workspace's stand-in for ICL-NUIM
/// `living_room`: a 4 × 2.5 × 4 m room containing a sofa, a table, a lamp
/// and a ball.
///
/// # Examples
///
/// ```
/// let room = slam_scene::presets::living_room();
/// assert!(room.objects().len() >= 5);
/// // the room centre is free space
/// assert!(room.distance(slam_scene::presets::ROOM_CENTER) > 0.5);
/// ```
pub fn living_room() -> Scene {
    let mut s = Scene::new("living_room");
    // the room itself: an inverted box; inside is free space
    s.add(
        "room",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(2.0, 1.25, 2.0)).complement(),
        Albedo::new(0.75, 0.72, 0.65),
    );
    // sofa against the -z wall: seat + back rest
    s.add(
        "sofa_seat",
        Sdf::rounded_cuboid(Vec3::new(2.0, 0.25, 0.45), Vec3::new(0.8, 0.22, 0.35), 0.03),
        Albedo::new(0.55, 0.25, 0.2),
    );
    s.add(
        "sofa_back",
        Sdf::rounded_cuboid(Vec3::new(2.0, 0.62, 0.18), Vec3::new(0.8, 0.32, 0.08), 0.03),
        Albedo::new(0.5, 0.22, 0.18),
    );
    // coffee table: top plus a chunky leg
    s.add(
        "table_top",
        Sdf::cuboid(Vec3::new(2.1, 0.48, 1.5), Vec3::new(0.45, 0.03, 0.3)),
        Albedo::new(0.45, 0.3, 0.15),
    );
    s.add(
        "table_leg",
        Sdf::cuboid(Vec3::new(2.1, 0.24, 1.5), Vec3::new(0.3, 0.24, 0.18)),
        Albedo::new(0.4, 0.26, 0.13),
    );
    // a ball on the floor
    s.add(
        "ball",
        Sdf::sphere(Vec3::new(3.1, 0.18, 2.6), 0.18),
        Albedo::new(0.2, 0.4, 0.7),
    );
    // floor lamp in a corner: pole + shade
    s.add(
        "lamp_pole",
        Sdf::cylinder_y(Vec3::new(0.6, 0.8, 3.3), 0.04, 0.8),
        Albedo::grey(0.3),
    );
    s.add(
        "lamp_shade",
        Sdf::cylinder_y(Vec3::new(0.6, 1.7, 3.3), 0.2, 0.15),
        Albedo::new(0.85, 0.8, 0.6),
    );
    // a cabinet against the +x wall
    s.add(
        "cabinet",
        Sdf::cuboid(Vec3::new(3.75, 0.5, 1.2), Vec3::new(0.25, 0.5, 0.5)),
        Albedo::new(0.35, 0.33, 0.3),
    );
    s
}

/// A sparser office room: desk, monitor slab, shelf and a bin. Useful as a
/// second sequence with different surface statistics.
pub fn office() -> Scene {
    let mut s = Scene::new("office");
    s.add(
        "room",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(2.0, 1.25, 2.0)).complement(),
        Albedo::new(0.7, 0.7, 0.72),
    );
    s.add(
        "desk",
        Sdf::cuboid(Vec3::new(2.0, 0.68, 0.6), Vec3::new(0.9, 0.03, 0.4)),
        Albedo::new(0.5, 0.35, 0.2),
    );
    s.add(
        "desk_body",
        Sdf::cuboid(Vec3::new(2.6, 0.34, 0.6), Vec3::new(0.25, 0.34, 0.35)),
        Albedo::new(0.45, 0.32, 0.18),
    );
    s.add(
        "monitor",
        Sdf::cuboid(Vec3::new(2.0, 1.0, 0.45), Vec3::new(0.3, 0.2, 0.03)),
        Albedo::grey(0.12),
    );
    s.add(
        "shelf",
        Sdf::cuboid(Vec3::new(3.8, 1.1, 2.5), Vec3::new(0.18, 0.9, 0.6)),
        Albedo::new(0.55, 0.45, 0.3),
    );
    s.add(
        "bin",
        Sdf::cylinder_y(Vec3::new(1.1, 0.18, 0.8), 0.15, 0.18),
        Albedo::grey(0.4),
    );
    s.add(
        "chair_seat",
        Sdf::rounded_cuboid(Vec3::new(2.0, 0.45, 1.3), Vec3::new(0.25, 0.05, 0.25), 0.02),
        Albedo::new(0.2, 0.2, 0.35),
    );
    s
}

/// A corridor: a long, feature-poor hallway with a few wall-mounted
/// boxes. Deliberately hard for ICP (the aperture problem: walls
/// constrain only the lateral degrees of freedom), used by robustness
/// tests and ablations.
pub fn corridor() -> Scene {
    let mut s = Scene::new("corridor");
    // a 1.6 m wide, 2.5 m tall, 8 m long hallway centred on x = 2
    s.add(
        "hall",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(0.8, 1.25, 4.0)).complement(),
        Albedo::grey(0.72),
    );
    s.add(
        "sign_left",
        Sdf::cuboid(Vec3::new(1.25, 1.4, 1.0), Vec3::new(0.04, 0.25, 0.18)),
        Albedo::new(0.6, 0.2, 0.2),
    );
    s.add(
        "sign_right",
        Sdf::cuboid(Vec3::new(2.75, 1.2, 2.8), Vec3::new(0.04, 0.18, 0.3)),
        Albedo::new(0.2, 0.3, 0.6),
    );
    s.add(
        "bin",
        Sdf::cylinder_y(Vec3::new(1.45, 0.22, 3.4), 0.15, 0.22),
        Albedo::grey(0.35),
    );
    s
}

/// The corridor's walking trajectory: straight down the hall looking
/// forward — the aperture-problem stress case (forward translation is
/// weakly observable against the side walls).
pub fn corridor_trajectory() -> Trajectory {
    use slam_math::Se3;
    let eyes = [
        Vec3::new(2.0, 1.3, 0.6),
        Vec3::new(2.02, 1.3, 1.4),
        Vec3::new(1.98, 1.28, 2.2),
        Vec3::new(2.0, 1.3, 3.0),
    ];
    Trajectory::Keyframes(
        eyes.iter()
            .map(|&eye| Se3::look_at(eye, eye + Vec3::new(0.0, -0.15, 1.0), Vec3::Y))
            .collect(),
    )
}

/// The corridor stripped of every landmark: bare walls, floor and
/// ceiling only. With the signs and the bin gone *nothing* constrains
/// the forward degree of freedom — the pure aperture problem. Paired
/// with heavy depth dropout (see the adversarial suite in `slambench`)
/// this is the scenario where frame-to-model and frame-to-frame
/// trackers fail in visibly different ways: a TSDF tracker coasts on
/// its accumulated model while an odometry tracker has only the
/// previous (mostly empty) frame to hold on to.
pub fn blank_corridor() -> Scene {
    let mut s = Scene::new("blank_corridor");
    // the same 1.6 m wide, 2.5 m tall, 8 m long hallway as `corridor`,
    // with no wall furniture at all
    s.add(
        "hall",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(0.8, 1.25, 4.0)).complement(),
        Albedo::grey(0.72),
    );
    s
}

/// A warehouse bay: a 4 × 2.5 × 4 m hall with a regular 3 × 3 grid of
/// identical floor-to-ceiling pillars, one metre apart. Every view down
/// an aisle looks like every other — aliased geometry. A tracker that
/// drifts by about one pillar pitch can re-converge onto the *wrong*
/// pillar and report confident, consistent, wrong poses; algorithms
/// with different drift characteristics diverge measurably here.
pub fn warehouse() -> Scene {
    let mut s = Scene::new("warehouse");
    s.add(
        "hall",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(2.0, 1.25, 2.0)).complement(),
        Albedo::grey(0.68),
    );
    for ix in 0..3 {
        let x = 1.0 + ix as f32;
        for iz in 0..3 {
            let z = 1.0 + iz as f32;
            s.add(
                format!("pillar_{ix}{iz}"),
                Sdf::cylinder_y(Vec3::new(x, 1.25, z), 0.12, 1.25),
                Albedo::grey(0.5),
            );
        }
    }
    s
}

/// The warehouse walk: straight down an aisle between two pillar rows,
/// looking forward — each frame sees the same repeating pillar pattern
/// the previous one did, one pitch further on.
pub fn warehouse_trajectory() -> Trajectory {
    use slam_math::Se3;
    let eyes = [
        Vec3::new(1.5, 1.3, 0.5),
        Vec3::new(1.52, 1.3, 1.3),
        Vec3::new(1.48, 1.28, 2.1),
        Vec3::new(1.5, 1.3, 2.9),
    ];
    Trajectory::Keyframes(
        eyes.iter()
            .map(|&eye| Se3::look_at(eye, eye + Vec3::new(0.0, -0.12, 1.0), Vec3::Y))
            .collect(),
    )
}

/// A deliberately cheap scene — a room with a ball, a box and a pillar —
/// for unit tests and quickstart examples where render time matters more
/// than realism. The three primitives sit inside the default trajectory's
/// field of view so all six pose degrees of freedom stay observable.
pub fn sphere_world() -> Scene {
    let mut s = Scene::new("sphere_world");
    s.add(
        "room",
        Sdf::cuboid(Vec3::new(2.0, 1.25, 2.0), Vec3::new(2.0, 1.25, 2.0)).complement(),
        Albedo::grey(0.7),
    );
    s.add(
        "ball",
        Sdf::sphere(Vec3::new(2.0, 0.4, 2.0), 0.4),
        Albedo::new(0.3, 0.5, 0.8),
    );
    s.add(
        "crate",
        Sdf::cuboid(Vec3::new(1.4, 0.3, 1.0), Vec3::new(0.3, 0.3, 0.25)),
        Albedo::new(0.7, 0.5, 0.3),
    );
    s.add(
        "pillar",
        Sdf::cylinder_y(Vec3::new(2.7, 0.6, 1.1), 0.18, 0.6),
        Albedo::new(0.4, 0.6, 0.4),
    );
    s
}

/// The default scanning trajectory for the preset rooms: a partial orbit
/// at ~1.1 m radius around [`ROOM_CENTER`], sweeping 120°, always looking
/// at the room centre — similar in spirit to the handheld ICL-NUIM
/// `kt2` sweep.
pub fn living_room_trajectory() -> Trajectory {
    Trajectory::Orbit {
        center: ROOM_CENTER,
        radius: 1.1,
        height: 0.3,
        target: Vec3::new(2.0, 0.6, 1.4),
        sweep: 2.0 * std::f32::consts::FRAC_PI_3,
        start_angle: std::f32::consts::FRAC_PI_2 * 0.6,
    }
}

/// A gentler wobble trajectory (small translations, fixed gaze) for
/// tracking-robustness experiments.
pub fn wobble_trajectory() -> Trajectory {
    Trajectory::Wobble {
        base: Vec3::new(2.0, 1.3, 3.2),
        amplitude: Vec3::new(0.25, 0.1, 0.15),
        frequency: Vec3::new(1.0, 2.0, 1.0),
        target: Vec3::new(2.0, 0.6, 1.5),
    }
}

/// The four living-room camera paths, mirroring ICL-NUIM's `kt0`–`kt3`
/// sequences (different motion styles over the same scene):
///
/// * `kt0` — near-static wobble in front of the sofa,
/// * `kt1` — slow low orbit around the coffee table,
/// * `kt2` — the standard 120° sweep ([`living_room_trajectory`]),
/// * `kt3` — a longer keyframed walk across the room.
///
/// # Panics
///
/// Panics when `k > 3`.
pub fn living_room_kt(k: usize) -> Trajectory {
    use slam_math::Se3;
    match k {
        0 => Trajectory::Wobble {
            base: Vec3::new(2.0, 1.2, 2.9),
            amplitude: Vec3::new(0.15, 0.06, 0.08),
            frequency: Vec3::new(1.0, 2.0, 1.0),
            target: Vec3::new(2.0, 0.5, 0.8),
        },
        1 => Trajectory::Orbit {
            center: Vec3::new(2.1, 0.0, 1.7),
            radius: 1.0,
            height: 1.0,
            target: Vec3::new(2.1, 0.4, 1.5),
            sweep: std::f32::consts::FRAC_PI_2,
            start_angle: 0.9,
        },
        2 => living_room_trajectory(),
        3 => {
            let gaze = Vec3::new(2.0, 0.7, 1.4);
            let eyes = [
                Vec3::new(3.0, 1.3, 3.1),
                Vec3::new(2.4, 1.2, 3.2),
                Vec3::new(1.5, 1.1, 3.0),
                Vec3::new(1.0, 1.2, 2.4),
                Vec3::new(1.1, 1.3, 1.9),
            ];
            Trajectory::Keyframes(
                eyes.iter()
                    .map(|&eye| Se3::look_at(eye, gaze, Vec3::Y))
                    .collect(),
            )
        }
        // xtask-allow: panic-path — reason: documented preset contract (`# Panics`): only kt0..kt3 exist
        _ => panic!("living room has trajectories kt0..kt3, got kt{k}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Renderer;
    use slam_math::camera::PinholeCamera;

    #[test]
    fn presets_have_free_space_at_center() {
        for scene in [living_room(), office(), sphere_world()] {
            assert!(
                scene.distance(ROOM_CENTER) > 0.2,
                "{} centre is not free",
                scene.name()
            );
        }
    }

    #[test]
    fn trajectory_stays_inside_room() {
        for traj in [living_room_trajectory(), wobble_trajectory()] {
            let scene = living_room();
            for pose in traj.sample(50) {
                let p = pose.translation();
                assert!(
                    scene.distance(p) > 0.15,
                    "camera at {p} is too close to geometry"
                );
            }
        }
    }

    #[test]
    fn living_room_renders_mostly_valid_depth() {
        let r = Renderer::new(living_room());
        let cam = PinholeCamera::tiny();
        let pose = living_room_trajectory().pose(0.0);
        let frame = r.render(&cam, &pose);
        assert!(
            frame.valid_fraction() > 0.9,
            "valid fraction {}",
            frame.valid_fraction()
        );
    }

    #[test]
    fn living_room_depth_within_sensor_range() {
        let r = Renderer::new(living_room());
        let cam = PinholeCamera::tiny();
        let pose = living_room_trajectory().pose(0.5);
        let frame = r.render(&cam, &pose);
        let valid: Vec<f32> = frame.depth.iter().copied().filter(|&d| d > 0.0).collect();
        let min = valid.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = valid.iter().cloned().fold(0.0f32, f32::max);
        assert!(min > 0.3, "min depth {min} below Kinect blind zone");
        assert!(max < 4.8, "max depth {max} beyond sensor range");
    }

    #[test]
    fn inter_frame_motion_is_trackable() {
        // 100-frame sequence: per-frame translation must stay small enough
        // for projective-association ICP (a few cm)
        let step = living_room_trajectory().max_step(100);
        assert!(step < 0.05, "max inter-frame step {step} m");
    }

    #[test]
    fn scenes_have_distinct_names() {
        assert_ne!(living_room().name(), office().name());
    }

    #[test]
    fn all_kt_trajectories_stay_in_free_space() {
        let scene = living_room();
        for k in 0..4 {
            let traj = living_room_kt(k);
            for pose in traj.sample(60) {
                let p = pose.translation();
                assert!(
                    scene.distance(p) > 0.1,
                    "kt{k} camera at {p} too close to geometry"
                );
            }
        }
    }

    #[test]
    fn kt_trajectories_are_distinct() {
        let mid: Vec<_> = (0..4)
            .map(|k| living_room_kt(k).pose(0.5).translation())
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    (mid[i] - mid[j]).norm() > 0.05,
                    "kt{i} and kt{j} coincide at mid-path"
                );
            }
        }
    }

    #[test]
    fn kt_trajectories_trackable() {
        for k in 0..4 {
            let step = living_room_kt(k).max_step(100);
            assert!(step < 0.06, "kt{k} step {step} m per frame");
        }
    }

    #[test]
    #[should_panic(expected = "kt0..kt3")]
    fn kt4_panics() {
        let _ = living_room_kt(4);
    }

    #[test]
    fn corridor_camera_path_is_clear() {
        let scene = corridor();
        for pose in corridor_trajectory().sample(50) {
            let p = pose.translation();
            assert!(scene.distance(p) > 0.15, "camera at {p} inside geometry");
        }
    }

    #[test]
    fn blank_corridor_path_is_clear_and_featureless() {
        let scene = blank_corridor();
        for pose in corridor_trajectory().sample(50) {
            let p = pose.translation();
            assert!(scene.distance(p) > 0.15, "camera at {p} inside geometry");
        }
        // one object only: the bare hall — no landmarks to track against
        assert_eq!(scene.objects().len(), 1);
    }

    #[test]
    fn blank_corridor_renders_like_the_corridor_shell() {
        let r = Renderer::new(blank_corridor());
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &corridor_trajectory().pose(0.0));
        assert!(
            frame.valid_fraction() > 0.6,
            "got {}",
            frame.valid_fraction()
        );
        let centre = frame.depth_at(cam.width / 2, cam.height / 2);
        assert!(centre > 3.0, "hall should be deep, centre depth {centre}");
    }

    #[test]
    fn warehouse_aisle_is_clear() {
        let scene = warehouse();
        for pose in warehouse_trajectory().sample(50) {
            let p = pose.translation();
            assert!(scene.distance(p) > 0.15, "camera at {p} inside geometry");
        }
    }

    #[test]
    fn warehouse_walk_is_trackable() {
        let step = warehouse_trajectory().max_step(100);
        assert!(step < 0.05, "max inter-frame step {step} m");
    }

    #[test]
    fn warehouse_renders_repeating_pillars() {
        let r = Renderer::new(warehouse());
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &warehouse_trajectory().pose(0.0));
        assert!(
            frame.valid_fraction() > 0.6,
            "got {}",
            frame.valid_fraction()
        );
        // the pillar grid is in view: some depth well short of the far wall
        let near = frame
            .depth
            .iter()
            .copied()
            .filter(|&d| d > 0.0 && d < 1.5)
            .count();
        assert!(near > 0, "no pillar geometry within 1.5 m of the camera");
    }

    #[test]
    fn corridor_renders_far_geometry() {
        let r = Renderer::new(corridor());
        let cam = PinholeCamera::tiny();
        let frame = r.render(&cam, &corridor_trajectory().pose(0.0));
        assert!(
            frame.valid_fraction() > 0.6,
            "got {}",
            frame.valid_fraction()
        );
        // the end wall is several metres away
        let centre = frame.depth_at(cam.width / 2, cam.height / 2);
        assert!(
            centre > 3.0,
            "corridor should be deep, centre depth {centre}"
        );
    }
}
