//! Property-based tests for the scene substrate.

use proptest::prelude::*;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_scene::sdf::Sdf;
use slam_scene::trajectory::Trajectory;

fn vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    /// A signed distance field's value is a lower bound on the true
    /// distance to the surface: walking `d` along any direction never
    /// crosses it (1-Lipschitz property, the contract sphere tracing
    /// relies on).
    #[test]
    fn sdf_is_lipschitz(
        p in vec3(5.0),
        q in vec3(5.0),
        r in 0.2f32..2.0,
        c in vec3(2.0),
        h in (0.2f32..1.5, 0.2f32..1.5, 0.2f32..1.5),
    ) {
        let shapes = [
            Sdf::sphere(c, r),
            Sdf::cuboid(c, Vec3::new(h.0, h.1, h.2)),
            Sdf::cylinder_y(c, r, h.1),
            Sdf::sphere(c, r).union(Sdf::cuboid(Vec3::ZERO, Vec3::new(h.0, h.1, h.2))),
            Sdf::cuboid(c, Vec3::new(h.0, h.1, h.2)).complement(),
        ];
        for s in &shapes {
            let dp = s.distance(p);
            let dq = s.distance(q);
            let dist = (p - q).norm();
            prop_assert!(
                (dp - dq).abs() <= dist + 1e-3,
                "Lipschitz violated: |{dp} - {dq}| > {dist}"
            );
        }
    }

    /// Union distance is the minimum of its parts; intersection the
    /// maximum.
    #[test]
    fn csg_min_max(p in vec3(4.0), c1 in vec3(2.0), c2 in vec3(2.0), r1 in 0.2f32..1.5, r2 in 0.2f32..1.5) {
        let a = Sdf::sphere(c1, r1);
        let b = Sdf::sphere(c2, r2);
        let u = a.clone().union(b.clone());
        let i = a.clone().intersection(b.clone());
        prop_assert_eq!(u.distance(p), a.distance(p).min(b.distance(p)));
        prop_assert_eq!(i.distance(p), a.distance(p).max(b.distance(p)));
        prop_assert!(u.distance(p) <= i.distance(p));
    }

    /// Complement exactly negates.
    #[test]
    fn complement_negates(p in vec3(4.0), c in vec3(2.0), r in 0.3f32..2.0) {
        let s = Sdf::sphere(c, r);
        let n = s.clone().complement();
        prop_assert_eq!(s.distance(p), -n.distance(p));
    }

    /// Surface normals are unit length (where defined) and point away
    /// from the inside: stepping along the normal increases distance.
    #[test]
    fn normals_increase_distance(dir in vec3(1.0), r in 0.5f32..2.0) {
        prop_assume!(dir.norm() > 0.1);
        let s = Sdf::sphere(Vec3::ZERO, r);
        let surface = dir.normalized().unwrap() * r;
        let n = s.normal(surface);
        prop_assert!((n.norm() - 1.0).abs() < 1e-2);
        let stepped = s.distance(surface + n * 0.05);
        let back = s.distance(surface - n * 0.05);
        prop_assert!(stepped > back);
    }

    /// Camera project/unproject round-trips for arbitrary valid depths.
    #[test]
    fn camera_roundtrip(u in 0.0f32..639.0, v in 0.0f32..479.0, depth in 0.2f32..8.0) {
        let cam = PinholeCamera::kinect();
        let p = cam.unproject(slam_math::Vec2::new(u, v), depth);
        prop_assert!((p.z - depth).abs() < 1e-4);
        let px = cam.project(p).expect("positive depth projects");
        prop_assert!((px.x - u).abs() < 1e-2);
        prop_assert!((px.y - v).abs() < 1e-2);
    }

    /// Trajectory poses are always rigid transforms with orthonormal
    /// rotation, for any parameter.
    #[test]
    fn trajectory_poses_are_rigid(s in -1.0f32..2.0, radius in 0.5f32..2.0, sweep in 0.1f32..6.0) {
        let t = Trajectory::Orbit {
            center: Vec3::new(2.0, 1.0, 2.0),
            radius,
            height: 0.3,
            target: Vec3::new(2.0, 0.5, 1.5),
            sweep,
            start_angle: 0.3,
        };
        let pose = t.pose(s);
        let r = pose.rotation();
        prop_assert!((r.determinant() - 1.0).abs() < 1e-3);
        // clamped outside [0, 1]
        if s < 0.0 {
            prop_assert!(pose.translation_distance(&t.pose(0.0)) < 1e-5);
        }
        if s > 1.0 {
            prop_assert!(pose.translation_distance(&t.pose(1.0)) < 1e-5);
        }
    }

    /// Keyframe interpolation stays within the convex hull of the
    /// keyframe positions (for translations).
    #[test]
    fn keyframe_interpolation_bounded(s in 0.0f32..1.0, pts in proptest::collection::vec((-3.0f32..3.0, -3.0f32..3.0, -3.0f32..3.0), 2..6)) {
        let poses: Vec<Se3> = pts
            .iter()
            .map(|&(x, y, z)| Se3::from_translation(Vec3::new(x, y, z)))
            .collect();
        let t = Trajectory::Keyframes(poses.clone());
        let p = t.pose(s).translation();
        let lo = poses.iter().fold(Vec3::splat(f32::INFINITY), |a, q| a.min(q.translation()));
        let hi = poses.iter().fold(Vec3::splat(f32::NEG_INFINITY), |a, q| a.max(q.translation()));
        prop_assert!(p.x >= lo.x - 1e-4 && p.x <= hi.x + 1e-4);
        prop_assert!(p.y >= lo.y - 1e-4 && p.y <= hi.y + 1e-4);
        prop_assert!(p.z >= lo.z - 1e-4 && p.z <= hi.z + 1e-4);
    }
}
