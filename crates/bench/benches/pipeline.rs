//! Criterion benchmark of the full per-frame pipeline under the default
//! and tuned configurations (host wall-clock).

use bench::xu3_tuned_config;
use criterion::{criterion_group, criterion_main, Criterion};
use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};

fn depth_frame(cam: &PinholeCamera) -> Vec<u16> {
    let mut d = vec![1500u16; cam.pixel_count()];
    for y in 20..60 {
        for x in 20..60 {
            d[y * cam.width + x] = 1200;
        }
    }
    for y in 70..100 {
        for x in 100..140 {
            d[y * cam.width + x] = 1350;
        }
    }
    d
}

fn bench_step_frame(c: &mut Criterion) {
    let cam = PinholeCamera::tiny();
    let depth = depth_frame(&cam);
    let init = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let mut configs: Vec<(&str, KFusionConfig)> = vec![
        ("tuned", xu3_tuned_config()),
        ("fast_test", KFusionConfig::fast_test()),
    ];
    // keep the host bench bounded
    let default_small = KFusionConfig {
        volume_resolution: 128,
        ..KFusionConfig::default()
    };
    configs.push(("default_vr128", default_small));
    for (name, config) in configs {
        group.bench_function(name, |b| {
            let mut alg = AlgoId::KinectFusion.create(&config, cam, init);
            alg.step_frame(&depth); // bootstrap
            b.iter(|| alg.step_frame(&depth));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_frame);
criterion_main!(benches);
