//! Criterion benchmarks of the DSE machinery: forest fitting/prediction
//! and Pareto-front extraction (the non-pipeline cost of a HyperMapper
//! iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slam_dse::forest::{RandomForest, RandomForestOptions};
use slam_dse::pareto::pareto_front;
use slam_dse::Evaluation;

fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(5);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|v| v[0] * 3.0 + v[3] * v[3] - v[7]).collect();
    (x, y)
}

fn bench_forest(c: &mut Criterion) {
    let (x, y) = training_data(150);
    let mut group = c.benchmark_group("forest");
    group.sample_size(10);
    group.bench_function("fit_150x10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut rng)
        })
    });
    let mut rng = StdRng::seed_from_u64(1);
    let forest = RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut rng);
    group.bench_function("predict_2000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in x.iter().cycle().take(2000) {
                acc += forest.predict(row);
            }
            acc
        })
    });
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let evals: Vec<Evaluation> = (0..500)
        .map(|_| {
            Evaluation::new(
                vec![],
                vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ],
            )
        })
        .collect();
    c.bench_function("pareto_front_500x3", |b| b.iter(|| pareto_front(&evals)));
}

criterion_group!(benches, bench_forest, bench_pareto);
criterion_main!(benches);
