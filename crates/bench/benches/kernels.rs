//! Criterion micro-benchmarks of the individual KinectFusion kernels
//! (host wall-clock; the per-kernel *modelled* device table is
//! `cargo run -p bench --bin kernel_table`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slam_kfusion::image::Image2D;
use slam_kfusion::preprocess::{
    bilateral_filter, depth2vertex, half_sample, mm2meters, vertex2normal,
};
use slam_kfusion::raycast::{raycast, RaycastParams};
use slam_kfusion::tsdf::TsdfVolume;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};

fn camera() -> PinholeCamera {
    PinholeCamera::tiny()
}

fn structured_depth(cam: &PinholeCamera) -> Image2D<f32> {
    let mut depth = Image2D::new(cam.width, cam.height, 1.5f32);
    for y in 20..60 {
        for x in 20..60 {
            depth.set(x, y, 1.2);
        }
    }
    depth
}

fn bench_preprocess(c: &mut Criterion) {
    let cam = camera();
    let depth = structured_depth(&cam);
    let mm: Vec<u16> = depth
        .as_slice()
        .iter()
        .map(|d| (d * 1000.0) as u16)
        .collect();

    let mut group = c.benchmark_group("preprocess");
    group.sample_size(20);
    group.bench_function("mm2meters", |b| {
        b.iter(|| mm2meters(&mm, cam.width, cam.height, 1))
    });
    group.bench_function("bilateral_filter", |b| {
        b.iter(|| bilateral_filter(&depth, 2, 1.5, 0.1))
    });
    group.bench_function("half_sample", |b| b.iter(|| half_sample(&depth, 0.1)));
    let (vertices, _) = depth2vertex(&depth, &cam);
    group.bench_function("depth2vertex", |b| b.iter(|| depth2vertex(&depth, &cam)));
    group.bench_function("vertex2normal", |b| b.iter(|| vertex2normal(&vertices)));
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    use slam_kfusion::mesh::marching_cubes;
    let cam = camera();
    let depth = structured_depth(&cam);
    let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut vol = TsdfVolume::new(96, 4.0);
    for _ in 0..3 {
        vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
    }
    let mut group = c.benchmark_group("mesh");
    group.sample_size(10);
    group.bench_function("marching_cubes_96", |b| b.iter(|| marching_cubes(&vol)));
    group.finish();
}

fn bench_volume(c: &mut Criterion) {
    let cam = camera();
    let depth = structured_depth(&cam);
    let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));

    let mut group = c.benchmark_group("volume");
    group.sample_size(10);
    for res in [64usize, 128] {
        group.bench_with_input(BenchmarkId::new("integrate", res), &res, |b, &res| {
            // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
            let mut vol = TsdfVolume::new(res, 4.0);
            b.iter(|| vol.integrate(&depth, &cam, &pose, 0.1, 100.0));
        });
        group.bench_with_input(BenchmarkId::new("raycast", res), &res, |b, &res| {
            // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
            let mut vol = TsdfVolume::new(res, 4.0);
            for _ in 0..3 {
                vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
            }
            let params = RaycastParams {
                near: 0.3,
                far: 5.0,
                step_fraction: 0.5,
                mu: 0.1,
            };
            b.iter(|| raycast(&vol, &cam, &pose, &params));
        });
    }
    group.finish();
}

/// 1 thread vs N threads on the shared worker pool, per parallel kernel.
/// The outputs are bit-identical; only the wall clock should move
/// (`cargo run -p bench --bin bench_kernels` emits the same comparison as
/// JSON for regression tracking).
fn bench_thread_scaling(c: &mut Criterion) {
    use slam_kfusion::exec;
    use slam_kfusion::icp::{track, TrackLevel};
    use slam_kfusion::mesh::marching_cubes_with_threads;
    use slam_kfusion::preprocess::bilateral_filter_with_threads;
    use slam_kfusion::raycast::raycast_with_threads;
    use slam_kfusion::KFusionConfig;

    let cam = PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5);
    let depth = structured_depth(&cam);
    let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut vol = TsdfVolume::new(128, 4.0);
    for _ in 0..3 {
        vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
    }
    let params = RaycastParams {
        near: 0.3,
        far: 5.0,
        step_fraction: 0.5,
        mu: 0.1,
    };
    let (model, _) = raycast(&vol, &cam, &pose, &params);
    let (vertices, _) = depth2vertex(&depth, &cam);
    let (normals, _) = vertex2normal(&vertices);
    let levels = [TrackLevel {
        vertices,
        normals,
        camera: cam,
    }];
    let start = Se3::from_translation(Vec3::new(2.0, 2.0, 0.22));

    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    let many = exec::available_threads().min(4).max(2);
    for threads in [1usize, many] {
        group.bench_with_input(
            BenchmarkId::new("bilateral_filter", threads),
            &threads,
            |b, &t| b.iter(|| bilateral_filter_with_threads(&depth, 2, 1.5, 0.1, t)),
        );
        group.bench_with_input(
            BenchmarkId::new("integrate_128", threads),
            &threads,
            |b, &t| {
                // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
                let mut v = TsdfVolume::new(128, 4.0);
                b.iter(|| v.integrate_with_threads(&depth, &cam, &pose, 0.1, 100.0, t));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("raycast_128", threads),
            &threads,
            |b, &t| b.iter(|| raycast_with_threads(&vol, &cam, &pose, &params, t)),
        );
        group.bench_with_input(BenchmarkId::new("icp_track", threads), &threads, |b, &t| {
            let config = KFusionConfig {
                pyramid_iterations: [10, 0, 0],
                threads: t,
                ..KFusionConfig::fast_test()
            };
            b.iter(|| track(&levels, &model, &cam, &start, &config))
        });
        group.bench_with_input(
            BenchmarkId::new("marching_cubes_128", threads),
            &threads,
            |b, &t| b.iter(|| marching_cubes_with_threads(&vol, t)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_volume,
    bench_mesh,
    bench_thread_scaling
);
criterion_main!(benches);
