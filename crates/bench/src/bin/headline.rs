//! **E4 / headline claim:** the tuned configuration on the ODROID XU3 —
//! "4.8× execution time improvement and 2.8× power reduction compared to
//! the state-of-the-art [default configuration], dense 3D mapping and
//! tracking in the real-time range within a 1 W power budget".
//!
//! Runs the default and tuned configurations at full 640×480 sensor
//! resolution on the XU3 model, then sweeps DVFS operating points on the
//! tuned configuration to find the fastest one inside the 1 W budget (the
//! paper's co-design step explores frequencies alongside the algorithm).
//!
//! Run with `cargo run --release -p bench --bin headline`.

use bench::{headline_camera, living_room_dataset, xu3_tuned_config};
use slam_kfusion::KFusionConfig;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slam_power::DeviceModel;
use slambench::engine::EvalEngine;
use slambench::run::PipelineRun;

struct Row {
    label: String,
    fps: f64,
    frame_s: f64,
    watts: f64,
    max_ate: f64,
}

fn cost(run: &PipelineRun, device: &DeviceModel, label: &str) -> Row {
    let report = run.cost_on(device);
    Row {
        label: label.to_string(),
        fps: report.run_cost.mean_fps(),
        frame_s: report.timing.mean_frame_time(),
        watts: report.run_cost.average_watts(),
        max_ate: run.ate.max,
    }
}

fn main() {
    let frames = 25;
    println!("== E4 / headline: tuned vs default KinectFusion on the ODROID XU3 ==");
    println!("dataset: living_room, {frames} frames at 640x480\n");

    let dataset = living_room_dataset(headline_camera(), frames);
    let xu3 = odroid_xu3();

    let engine = EvalEngine::with_disk_cache("results/cache");
    eprintln!("running default + tuned configurations (one engine batch)...");
    let runs = engine.evaluate_batch(&dataset, &[KFusionConfig::default(), xu3_tuned_config()]);
    let (default_run, tuned_run) = (&runs[0], &runs[1]);

    let default_row = cost(default_run, &xu3, "default @ max freq");
    let tuned_row = cost(tuned_run, &xu3, "tuned   @ max freq");

    // DVFS sweep on the tuned configuration: fastest point within 1 W
    let mut budget_row: Option<Row> = None;
    let mut sweep_rows = Vec::new();
    for step in (6..=20).rev() {
        let scale = step as f64 / 20.0;
        let dev = xu3.at_dvfs(scale);
        let row = cost(
            &tuned_run,
            &dev,
            &format!("tuned   @ {:.0}% freq", scale * 100.0),
        );
        if row.watts <= 1.0 && budget_row.is_none() {
            budget_row = Some(cost(
                &tuned_run,
                &dev,
                &format!("tuned   @ {:.0}% freq (1 W budget)", scale * 100.0),
            ));
        }
        sweep_rows.push(row);
    }

    let mut table = Table::new(vec![
        "configuration".into(),
        "FPS".into(),
        "s/frame".into(),
        "power (W)".into(),
        "max ATE (m)".into(),
    ]);
    let mut push = |r: &Row| {
        table.row(vec![
            r.label.clone(),
            format!("{:.2}", r.fps),
            format!("{:.4}", r.frame_s),
            format!("{:.2}", r.watts),
            format!("{:.4}", r.max_ate),
        ]);
    };
    push(&default_row);
    push(&tuned_row);
    for r in &sweep_rows {
        push(r);
    }
    println!("{}", table.render());

    let reference = budget_row.as_ref().unwrap_or(&tuned_row);
    // the paper quotes the tuned configuration's execution-time win (at
    // the full operating point) and the power reduction achieved by the
    // co-designed (algorithm + DVFS) deployment
    let speedup = default_row.frame_s / tuned_row.frame_s;
    let budget_speedup = default_row.frame_s / reference.frame_s;
    let power_ratio = default_row.watts / reference.watts;

    let mut summary = Table::new(vec!["metric".into(), "paper".into(), "measured".into()]);
    summary.row(vec![
        "execution-time improvement (tuned config)".into(),
        "4.8x".into(),
        format!("{speedup:.2}x"),
    ]);
    summary.row(vec![
        "execution-time improvement within 1 W".into(),
        "(real-time range)".into(),
        format!("{budget_speedup:.2}x"),
    ]);
    summary.row(vec![
        "power reduction (1 W operating point)".into(),
        "2.8x".into(),
        format!("{power_ratio:.2}x"),
    ]);
    summary.row(vec![
        "tuned power budget".into(),
        "< 1 W".into(),
        format!("{:.2} W", reference.watts),
    ]);
    summary.row(vec![
        "tuned accuracy".into(),
        "max ATE < 0.05 m".into(),
        format!("{:.4} m", reference.max_ate),
    ]);
    summary.row(vec![
        "tuned speed".into(),
        "real-time range".into(),
        format!("{:.1} FPS", reference.fps),
    ]);
    println!("{}", summary.render());

    println!(
        "operating point used for the comparison: {}",
        reference.label
    );
}
