//! **Ablation A4:** frame-to-model vs frame-to-frame tracking.
//!
//! KinectFusion's defining design decision is tracking against the
//! raycast prediction of the fused TSDF model instead of the previous
//! frame. This ablation quantifies that decision on the benchmark
//! sequence: frame-to-frame ICP drifts, frame-to-model does not — which
//! is why the paper's whole accuracy axis is even attainable.
//!
//! Run with `cargo run --release -p bench --bin ablation_tracking`.

use bench::{exploration_camera, living_room_dataset};
use slam_kfusion::config::TrackingReference;
use slam_kfusion::KFusionConfig;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::engine::EvalEngine;

fn main() {
    let frames = 90; // long enough for frame-to-frame drift to accumulate
    println!("== Ablation A4: tracking reference (frame-to-model vs frame-to-frame) ==\n");
    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    let mut table = Table::new(vec![
        "tracking".into(),
        "max ATE (m)".into(),
        "final-frame error (m)".into(),
        "lost frames".into(),
        "modelled s/frame".into(),
        "late/early error ratio".into(),
    ]);
    let variants = [
        ("frame-to-model (KinectFusion)", TrackingReference::Model),
        (
            "frame-to-frame (baseline)",
            TrackingReference::PreviousFrame,
        ),
    ];
    let configs: Vec<KFusionConfig> = variants
        .iter()
        .map(|&(_, reference)| KFusionConfig {
            volume_resolution: 128,
            tracking_reference: reference,
            ..KFusionConfig::default()
        })
        .collect();
    eprintln!("running both tracking references as one engine batch...");
    let runs = EvalEngine::with_disk_cache("results/cache").evaluate_batch(&dataset, &configs);
    for ((name, _), run) in variants.into_iter().zip(&runs) {
        let report = run.cost_on(&device);
        let final_err = run.ate.errors.last().copied().unwrap_or(0.0);
        // drift signature: error of the last third vs the first third
        let n = run.ate.errors.len();
        let first_third = run.ate.errors[..n / 3].iter().sum::<f64>() / (n / 3) as f64;
        let last_third = run.ate.errors[2 * n / 3..].iter().sum::<f64>() / (n - 2 * n / 3) as f64;
        table.row(vec![
            name.into(),
            format!("{:.4}", run.ate.max),
            format!("{:.4}", final_err),
            format!("{}", run.lost_frames),
            format!("{:.4}", report.timing.mean_frame_time()),
            format!("{:.2}", last_third / first_third.max(1e-6)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading the result: frame-to-frame drifts (late/early ratio > 1) at a rate set\n\
         by per-frame noise, while frame-to-model carries a *bounded* bias set by the\n\
         TSDF voxel size. On this short, mildly-noisy synthetic sequence the drift has\n\
         not yet overtaken the discretisation bias, so frame-to-frame can look better;\n\
         over the hundreds-of-frames sequences of the real benchmark the unbounded\n\
         drift loses — which is why KinectFusion fuses a model. (Raise `frames` and the\n\
         noise to watch the crossover.)"
    );
}
