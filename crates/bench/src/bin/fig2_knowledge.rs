//! **E2 / Figure 2 (right):** knowledge extraction.
//!
//! Labels explored configurations with the paper's three predicates —
//! accurate (max ATE < 5 cm), fast (> 30 FPS), power-efficient (< 3 W) —
//! and fits a shallow decision tree over the *raw algorithmic parameters*,
//! printing rules of the paper's form ("Volume resolution < 96 → …").
//!
//! Run with `cargo run --release -p bench --bin fig2_knowledge`.
//!
//! The sweep checkpoints to `results/checkpoints/` as it goes; rerun
//! with `--resume` after an interruption to continue from the last
//! checkpoint (bit-identical outcome, same seed). `--checkpoint-every N`
//! tunes the cadence (default 8).

use bench::{exploration_camera, living_room_dataset, thresholds};
use slam_dse::knowledge::{KnowledgeTree, LabelledConfigs};
use slam_power::devices::odroid_xu3;
use slambench::checkpoint::CheckpointOptions;
use slambench::config_space::slambench_space;
use slambench::engine::EvalEngine;
use slambench::explore::random_sweep_checkpointed;

fn main() {
    let frames = 25;
    let samples = 120;
    println!("== E2 / Figure 2 (right): decision-tree knowledge extraction ==");
    println!("dataset: living_room, {frames} frames at 320x240; {samples} random configurations\n");

    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();
    eprintln!("evaluating {samples} configurations (parallel)...");
    let engine = EvalEngine::with_disk_cache("results/cache");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ckpt = CheckpointOptions::new("fig2_knowledge_random");
    ckpt.resume = args.iter().any(|a| a == "--resume");
    if let Some(every) = args
        .iter()
        .position(|a| a == "--checkpoint-every")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        ckpt.every = every.max(1);
    }
    let sweep = random_sweep_checkpointed(&engine, &dataset, &device, samples, 4242, &ckpt)
        .complete()
        .expect("no stop_after configured");
    for q in &sweep.quarantined {
        eprintln!("quarantined: {q}");
    }
    let measured = sweep.measured;

    // label: classes mirror the paper's OR-of-criteria boxes
    let mut x = Vec::new();
    let mut labels = Vec::new();
    let mut counts = [0usize; 2];
    for m in &measured {
        let accurate = m.max_ate_m <= thresholds::MAX_ATE_M;
        let fast = m.fps >= thresholds::FPS;
        let efficient = m.watts <= thresholds::WATTS;
        let good = accurate && fast && efficient;
        x.push(m.x.clone());
        labels.push(if good { 1.0 } else { 0.0 });
        counts[usize::from(good)] += 1;
    }
    println!(
        "labelling: {} good (accurate & fast & power-efficient), {} rejected",
        counts[1], counts[0]
    );

    let data = LabelledConfigs {
        x,
        labels,
        class_names: vec![
            "rejected".into(),
            "BEST (accurate + fast + power-efficient)".into(),
        ],
    };
    let space = slambench_space();
    let tree = KnowledgeTree::fit(&space, &data, 3);

    println!("\nextracted decision tree (depth <= 3):\n");
    print!("{}", tree.render());
    println!("training accuracy: {:.1}%", tree.accuracy(&data) * 100.0);

    if let Some(root) = tree.root_parameter() {
        println!("\nroot split parameter: {root}");
    }
    println!("\nall split parameters (paper's figure splits on volume");
    println!("resolution, compute size ratio and mu):");
    for (name, thr) in tree.split_parameters() {
        println!("  {name} < {thr:.4}");
    }

    // ---- per-objective parameter importance --------------------------------
    use rand::SeedableRng;
    use slam_dse::forest::{RandomForest, RandomForestOptions};
    use slam_dse::importance::permutation_importance;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let features: Vec<Vec<f64>> = measured.iter().map(|m| space.normalize(&m.x)).collect();
    println!("\nrandom-forest permutation importance per objective:");
    for (objective, values) in [
        (
            "runtime",
            measured.iter().map(|m| m.runtime_s).collect::<Vec<_>>(),
        ),
        ("max ATE", measured.iter().map(|m| m.max_ate_m).collect()),
        ("power", measured.iter().map(|m| m.watts).collect()),
    ] {
        let forest = RandomForest::fit(
            &features,
            &values,
            &RandomForestOptions::default(),
            &mut rng,
        );
        let importances = permutation_importance(&forest, &features, &values, 3, &mut rng);
        let top: Vec<String> = importances
            .iter()
            .take(3)
            .map(|fi| {
                format!(
                    "{} ({:.2})",
                    space.names()[fi.feature],
                    fi.relative_increase
                )
            })
            .collect();
        println!("  {objective:>8}: {}", top.join(", "));
    }
}
