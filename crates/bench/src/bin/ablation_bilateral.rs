//! **Ablation A1:** the bilateral filter's effect on accuracy and cost.
//!
//! The filter exists to tame sensor noise before ICP and TSDF fusion;
//! this ablation runs the same noisy sequence with the filter on and off
//! and reports the ATE and runtime consequences.
//!
//! Run with `cargo run --release -p bench --bin ablation_bilateral`.

use bench::{exploration_camera, living_room_dataset};
use slam_kfusion::KFusionConfig;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::engine::EvalEngine;

fn main() {
    let frames = 20;
    println!("== Ablation A1: bilateral filter on/off (noisy living_room) ==\n");
    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    let config = KFusionConfig {
        volume_resolution: 128,
        ..KFusionConfig::default()
    };

    let mut table = Table::new(vec![
        "bilateral".into(),
        "max ATE (m)".into(),
        "mean ATE (m)".into(),
        "lost frames".into(),
        "modelled s/frame".into(),
        "power (W)".into(),
    ]);
    let engine = EvalEngine::with_disk_cache("results/cache");
    let variants = [true, false].map(|on| {
        let mut c = config.clone();
        c.bilateral_filter = on;
        c
    });
    eprintln!("running bilateral on/off as one engine batch...");
    let runs = engine.evaluate_batch(&dataset, &variants);
    let mut results = Vec::new();
    for (on, run) in [true, false].into_iter().zip(&runs) {
        let report = run.cost_on(&device);
        table.row(vec![
            if on { "on" } else { "off" }.into(),
            format!("{:.4}", run.ate.max),
            format!("{:.4}", run.ate.mean),
            format!("{}", run.lost_frames),
            format!("{:.4}", report.timing.mean_frame_time()),
            format!("{:.2}", report.run_cost.average_watts()),
        ]);
        results.push((on, run.ate.max, report.timing.mean_frame_time()));
    }
    println!("{}", table.render());

    let (on, off) = (&results[0], &results[1]);
    println!(
        "filter costs {:.1}% runtime and changes max ATE by {:+.4} m",
        (on.2 - off.2) / off.2 * 100.0,
        on.1 - off.1,
    );
}
