//! **Ablation A3:** surrogate quality vs exploration outcome.
//!
//! Repeats the Figure 2 exploration with different random-forest sizes
//! (and pure random search as the degenerate case) at the same
//! evaluation budget, reporting the best feasible runtime each finds —
//! the design choice behind HyperMapper's "random forest predictor".
//!
//! Run with `cargo run --release -p bench --bin ablation_forest`.

use bench::{exploration_camera, living_room_dataset, thresholds};
use slam_dse::active::ActiveLearnerOptions;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::engine::EvalEngine;
use slambench::explore::{
    explore_with_engine, random_sweep_with_engine, ExploreOptions, MeasuredConfig,
};

fn best_feasible(ms: &[MeasuredConfig]) -> Option<&MeasuredConfig> {
    ms.iter()
        .filter(|m| m.max_ate_m <= thresholds::MAX_ATE_M)
        .min_by(|a, b| a.runtime_s.partial_cmp(&b.runtime_s).expect("finite"))
}

fn main() {
    let frames = 20;
    let budget = 70;
    println!("== Ablation A3: surrogate forest size at a {budget}-evaluation budget ==\n");
    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    let mut table = Table::new(vec![
        "strategy".into(),
        "best feasible runtime (s)".into(),
        "best feasible FPS".into(),
        "feasible found".into(),
    ]);

    // one shared engine: every strategy re-requesting a configuration
    // already evaluated by another strategy is a cache hit
    let engine = EvalEngine::with_disk_cache("results/cache");
    eprintln!("random search baseline...");
    let random = random_sweep_with_engine(&engine, &dataset, &device, budget, 77);
    let feasible_count = random
        .iter()
        .filter(|m| m.max_ate_m <= thresholds::MAX_ATE_M)
        .count();
    match best_feasible(&random) {
        Some(b) => table.row(vec![
            "random search".into(),
            format!("{:.4}", b.runtime_s),
            format!("{:.1}", b.fps),
            format!("{feasible_count}"),
        ]),
        None => table.row(vec![
            "random search".into(),
            "-".into(),
            "-".into(),
            "0".into(),
        ]),
    };

    for trees in [4usize, 16, 48] {
        eprintln!("active learning with {trees}-tree forests...");
        let mut options = ExploreOptions {
            budget,
            learner: ActiveLearnerOptions {
                initial_samples: 25,
                iterations: 12,
                batch_size: 4,
                seed: 77,
                ..ActiveLearnerOptions::default()
            },
            accuracy_limit: thresholds::MAX_ATE_M,
            ..ExploreOptions::default()
        };
        options.learner.forest.trees = trees;
        let outcome = explore_with_engine(&engine, &dataset, &device, &options);
        let feasible_count = outcome
            .measured
            .iter()
            .filter(|m| m.max_ate_m <= thresholds::MAX_ATE_M)
            .count();
        match best_feasible(&outcome.measured) {
            Some(b) => table.row(vec![
                format!("active, {trees} trees"),
                format!("{:.4}", b.runtime_s),
                format!("{:.1}", b.fps),
                format!("{feasible_count}"),
            ]),
            None => table.row(vec![
                format!("active, {trees} trees"),
                "-".into(),
                "-".into(),
                "0".into(),
            ]),
        };
    }
    println!("{}", table.render());
    println!("expected shape: active learning finds faster feasible configs than random\nat equal budget; very small forests are noisier guides.");
}
