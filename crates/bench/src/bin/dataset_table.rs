//! **E7 / sequence table:** default vs tuned configuration across the
//! whole sequence suite (living-room kt0–kt3, office, corridor) — the
//! multi-sequence accuracy/speed table of the SLAMBench methodology
//! (ICRA'15) the poster builds on.
//!
//! Run with `cargo run --release -p bench --bin dataset_table`.

use bench::{tiny_camera, xu3_tuned_config};
use slam_kfusion::KFusionConfig;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::engine::EvalEngine;
use slambench::suite::{run_suite_with_engine, standard_suite};

fn main() {
    let frames = 25;
    println!("== E7: sequence suite, default vs XU3-tuned (ODROID XU3 model) ==");
    println!("sequences at 160x120, {frames} frames each\n");

    let sequences = standard_suite(tiny_camera(), frames);
    // keep the host run tractable on the suite; ratios are unaffected
    let default_config = KFusionConfig {
        volume_resolution: 128,
        ..KFusionConfig::default()
    };
    let configs = vec![
        ("default(vr128)".to_string(), default_config),
        ("xu3-tuned".to_string(), xu3_tuned_config()),
    ];
    eprintln!(
        "running {} sequences x {} configs...",
        sequences.len(),
        configs.len()
    );
    let engine = EvalEngine::with_disk_cache("results/cache");
    let report = run_suite_with_engine(&engine, &sequences, &configs, &odroid_xu3());
    for failure in &report.failures {
        eprintln!(
            "cell ({}, {}) failed: {}",
            failure.sequence, failure.config, failure.cause
        );
    }
    let cells = report.cells;

    let mut table = Table::new(vec![
        "sequence".into(),
        "config".into(),
        "max ATE (m)".into(),
        "mean ATE (m)".into(),
        "lost".into(),
        "FPS".into(),
        "power (W)".into(),
    ]);
    for c in &cells {
        table.row(vec![
            c.sequence.clone(),
            c.config.clone(),
            format!("{:.4}", c.max_ate_m),
            format!("{:.4}", c.mean_ate_m),
            format!("{}", c.lost_frames),
            format!("{:.1}", c.fps),
            format!("{:.2}", c.watts),
        ]);
    }
    println!("{}", table.render());

    let accurate = cells.iter().filter(|c| c.max_ate_m < 0.05).count();
    println!(
        "{accurate}/{} cells meet the 5 cm bar; the corridor sequence is expected to be\n\
         the hardest (aperture problem), the living-room variants the easiest.",
        cells.len()
    );
}
