//! **E5b / co-design:** joint algorithm × DVFS exploration on the ODROID
//! XU3 under the paper's constraints — "real-time range within a 1 W
//! power budget", found by *incremental co-design exploration* (the
//! methodology box of Figure 2).
//!
//! Demonstrates the incremental property: many more co-design points are
//! evaluated than pipelines executed, because re-costing an algorithmic
//! configuration at a new frequency reuses its memoised workload trace.
//!
//! Run with `cargo run --release -p bench --bin codesign`.

use bench::{exploration_camera, living_room_dataset, thresholds};
use slam_dse::active::ActiveLearnerOptions;
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::codesign::{codesign_explore_with_engine, CoDesignOptions};
use slambench::engine::EvalEngine;

fn main() {
    let frames = 25;
    println!("== E5b: incremental co-design (algorithm x DVFS) on the ODROID XU3 ==");
    println!("dataset: living_room, {frames} frames at 320x240");
    println!(
        "constraints: max ATE < {} m, power < 1 W\n",
        thresholds::MAX_ATE_M
    );

    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();
    let options = CoDesignOptions {
        pipeline_budget: 50,
        evaluation_budget: 220,
        learner: ActiveLearnerOptions {
            initial_samples: 60,
            iterations: 20,
            batch_size: 8,
            candidates_per_iteration: 1200,
            exploration_fraction: 0.2,
            seed: 2016, // the PACT year, for flavour
            ..ActiveLearnerOptions::default()
        },
        accuracy_limit: thresholds::MAX_ATE_M,
        power_budget: 1.0,
    };
    eprintln!(
        "exploring (up to {} pipeline runs, {} evaluations)...",
        options.pipeline_budget, options.evaluation_budget
    );
    let engine = EvalEngine::with_disk_cache("results/cache");
    let outcome = codesign_explore_with_engine(&engine, &dataset, &device, &options);

    println!(
        "evaluated {} co-design points with only {} pipeline executions\n\
         (incremental re-costing made the other {} evaluations ~free)\n",
        outcome.points.len(),
        outcome.pipeline_runs,
        outcome.points.len().saturating_sub(outcome.pipeline_runs),
    );

    let mut table = Table::new(vec![
        "point".into(),
        "FPS".into(),
        "power (W)".into(),
        "max ATE (m)".into(),
        "dvfs".into(),
        "configuration".into(),
    ]);
    // a few notable points: best under both constraints, best accurate
    // regardless of power, and the overall fastest
    let feasible = outcome.best_within_budgets();
    let fastest_accurate = outcome
        .points
        .iter()
        .filter(|p| p.measured.max_ate_m <= outcome.accuracy_limit)
        .min_by(|a, b| {
            a.measured
                .runtime_s
                .partial_cmp(&b.measured.runtime_s)
                .unwrap()
        });
    let mut push = |name: &str, p: &slambench::codesign::CoDesignPoint| {
        table.row(vec![
            name.into(),
            format!("{:.1}", p.measured.fps),
            format!("{:.2}", p.measured.watts),
            format!("{:.4}", p.measured.max_ate_m),
            format!("{:.2}", p.dvfs),
            format!("{}", p.measured.config),
        ]);
    };
    if let Some(p) = fastest_accurate {
        push("fastest accurate (any power)", p);
    }
    if let Some(p) = feasible {
        push("best within 1 W + 5 cm", p);
    }
    println!("{}", table.render());

    match feasible {
        Some(p) => {
            println!(
                "co-design verdict: {:.1} FPS at {:.2} W with max ATE {:.3} m —\n\
                 paper: 'dense 3D mapping and tracking in the real-time range\n\
                 within a 1 W power budget' {}",
                p.measured.fps,
                p.measured.watts,
                p.measured.max_ate_m,
                if p.measured.fps >= 10.0 {
                    "(reproduced)"
                } else {
                    "(slower than real-time here)"
                },
            );
        }
        None => println!("no point satisfied both constraints at this budget"),
    }
}
