//! Head-to-head algorithm baseline: every [`AlgoId`] over the
//! adversarial scene suite, reporting host frame time and trajectory
//! accuracy per algorithm per scene, and writing the grid to
//! `BENCH_algos.json` so the cross-algorithm trajectory is
//! machine-readable.
//!
//! Run with `cargo run --release -p bench --bin bench_algos`.

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_scene::dataset::SyntheticDataset;
use slambench::engine::EvalEngine;
use slambench::suite::adversarial_suite;

fn main() {
    let frames = 30;
    let sequences = adversarial_suite(PinholeCamera::tiny(), frames);
    let config = KFusionConfig::fast_test();

    eprintln!(
        "running {} algorithms over {} adversarial scenes ({frames} frames each)...",
        AlgoId::ALL.len(),
        sequences.len()
    );
    println!(
        "{:<16} {:<24} {:>10} {:>10} {:>6}",
        "algorithm", "scene", "frame(ms)", "maxATE(m)", "lost"
    );

    let mut rows = Vec::new();
    for algo in AlgoId::ALL {
        // one engine per algorithm: the engine is the algorithm handle,
        // and cache entries are keyed by algorithm so grids never alias
        let engine = EvalEngine::new().with_algorithm(algo);
        for seq in &sequences {
            let dataset = SyntheticDataset::generate(&seq.config);
            let run = engine.evaluate(&dataset, &config);
            let mean_frame_s = run.frames.iter().map(|f| f.wall_time).sum::<f64>()
                / run.frames.len().max(1) as f64;
            println!(
                "{:<16} {:<24} {:>10.2} {:>10.4} {:>6}",
                algo.id(),
                seq.name,
                mean_frame_s * 1e3,
                run.ate.max,
                run.lost_frames
            );
            rows.push(serde_json::json!({
                "algorithm": algo.id(),
                "scene": seq.name,
                "mean_frame_ms": mean_frame_s * 1e3,
                "max_ate_m": run.ate.max,
                "mean_ate_m": run.ate.mean,
                "rmse_ate_m": run.ate.rmse,
                "lost_frames": run.lost_frames,
            }));
        }
    }

    let report = serde_json::json!({
        "frames": frames,
        "config": config.to_string(),
        "scenes": sequences.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
        "algorithms": AlgoId::ALL.iter().map(|a| a.id()).collect::<Vec<_>>(),
        "rows": rows,
    });
    let path = "BENCH_algos.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");
    println!("\nwritten to {path}");
}
