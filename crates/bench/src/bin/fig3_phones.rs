//! **E3 / Figure 3:** speed-up of the XU3-tuned configuration across the
//! 83-phone fleet.
//!
//! The pipeline runs once per configuration (the workload trace is
//! device-independent); each phone model then replays both traces and
//! reports `t_default / t_tuned` — exactly the metric of the paper's
//! Figure 3, whose speed-ups range from below 1× up to ~14×.
//!
//! Run with `cargo run --release -p bench --bin fig3_phones`.

use bench::{headline_camera, living_room_dataset, xu3_tuned_config};
use slam_kfusion::KFusionConfig;
use slam_math::stats::Summary;
use slam_metrics::report::{bar_chart, Table};
use slam_power::fleet::phone_fleet;
use slambench::engine::EvalEngine;
use slambench::fleet::fleet_speedups_with_engine;

fn main() {
    let frames = 20;
    println!("== E3 / Figure 3: XU3-tuned configuration across 83 phones ==");
    println!("dataset: living_room, {frames} frames at 640x480; fleet seed 2018");
    println!("(per-phone: memory-capped default volume + thermal throttling; see DESIGN.md)\n");

    let dataset = living_room_dataset(headline_camera(), frames);
    println!("tuned configuration: {}", xu3_tuned_config());
    let engine = EvalEngine::with_disk_cache("results/cache");
    {
        // accuracy context from the device-independent runs; the engine
        // cache makes this free when fleet_speedups re-requests it below
        let tuned_run = engine.evaluate(&dataset, &xu3_tuned_config());
        println!("tuned max ATE: {:.4} m\n", tuned_run.ate.max);
    }

    let fleet = phone_fleet(2018);
    eprintln!("running pipeline per distinct memory-capped volume and costing 83 phones...");
    let outcome = fleet_speedups_with_engine(
        &engine,
        &dataset,
        &KFusionConfig::default(),
        &xu3_tuned_config(),
        &fleet,
    );
    for skip in &outcome.skipped {
        eprintln!(
            "skipped phone {} ({}): {}",
            skip.index, skip.name, skip.reason
        );
    }
    let mut entries = outcome.entries;
    entries.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedups"));

    // ---- the sorted speed-up series (the paper's dot plot) -----------------
    let items: Vec<(String, f64)> = entries
        .iter()
        .map(|e| {
            (
                format!(
                    "{} {:<18} vr{:<3}{}",
                    e.name,
                    e.soc,
                    e.default_volume,
                    if e.gpu { " [GPU]" } else { "      " }
                ),
                e.speedup,
            )
        })
        .collect();
    println!("per-device speed-up (sorted):");
    print!("{}", bar_chart(&items, 48));

    // ---- histogram, as in the figure ---------------------------------------
    let speedups: Vec<f64> = entries.iter().map(|e| e.speedup).collect();
    let max_speedup = speedups.iter().cloned().fold(0.0f64, f64::max);
    let bins = 14usize.min(max_speedup.ceil() as usize + 1).max(4);
    let bin_w = (max_speedup * 1.001) / bins as f64;
    let mut hist = vec![0usize; bins];
    for &s in &speedups {
        hist[((s / bin_w) as usize).min(bins - 1)] += 1;
    }
    println!("\nhistogram (speed-up bins of {bin_w:.2}):");
    let hist_items: Vec<(String, f64)> = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                format!(
                    "[{:>5.2}, {:>5.2})",
                    i as f64 * bin_w,
                    (i + 1) as f64 * bin_w
                ),
                c as f64,
            )
        })
        .collect();
    print!("{}", bar_chart(&hist_items, 40));

    // ---- summary statistics -------------------------------------------------
    let summary = Summary::of(&speedups);
    let mut table = Table::new(vec!["statistic".into(), "value".into()]);
    table.row(vec!["devices".into(), format!("{}", entries.len())]);
    table.row(vec!["min speed-up".into(), format!("{:.2}x", summary.min)]);
    table.row(vec![
        "median speed-up".into(),
        format!("{:.2}x", summary.median),
    ]);
    table.row(vec![
        "mean speed-up".into(),
        format!("{:.2}x", summary.mean),
    ]);
    table.row(vec!["p95 speed-up".into(), format!("{:.2}x", summary.p95)]);
    table.row(vec!["max speed-up".into(), format!("{:.2}x", summary.max)]);
    let gpu_count = entries.iter().filter(|e| e.gpu).count();
    table.row(vec![
        "devices with usable GPU".into(),
        format!("{gpu_count}"),
    ]);
    println!("\n{}", table.render());

    println!(
        "shape check vs paper: speed-ups spread over ~[0, 14]x with most of the\n\
         mass at a few x — measured [{:.2}, {:.2}]x, median {:.2}x",
        summary.min, summary.max, summary.median
    );
}
