//! **Ablation A2:** the TSDF truncation distance `mu` — the raycast-cost
//! vs accuracy lever.
//!
//! Small `mu` sharpens the reconstructed surface but shrinks the
//! raycaster's safe step (cost grows ~1/mu) and leaves less truncation
//! band for noisy depth; large `mu` is cheap but smears geometry. This
//! sweep quantifies both directions, motivating why the DSE's knowledge
//! tree splits on `mu`.
//!
//! Run with `cargo run --release -p bench --bin ablation_raycast`.

use bench::{exploration_camera, living_room_dataset};
use slam_kfusion::{KFusionConfig, Kernel};
use slam_metrics::report::Table;
use slam_power::devices::odroid_xu3;
use slambench::engine::EvalEngine;

fn main() {
    let frames = 20;
    println!("== Ablation A2: TSDF truncation distance mu ==\n");
    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    let mut table = Table::new(vec![
        "mu (m)".into(),
        "max ATE (m)".into(),
        "raycast ms/frame".into(),
        "integrate ms/frame".into(),
        "total s/frame".into(),
    ]);
    let mus = [0.02f32, 0.05, 0.1, 0.15, 0.2];
    let configs: Vec<KFusionConfig> = mus
        .iter()
        .map(|&mu| KFusionConfig {
            volume_resolution: 128,
            mu,
            ..KFusionConfig::default()
        })
        .collect();
    eprintln!("running the mu sweep as one engine batch...");
    let runs = EvalEngine::with_disk_cache("results/cache").evaluate_batch(&dataset, &configs);
    for (&mu, run) in mus.iter().zip(&runs) {
        let report = run.cost_on(&device);
        let kernel_ms = |k: Kernel| {
            report
                .kernel_seconds
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, s)| s / frames as f64 * 1e3)
                .unwrap_or(0.0)
        };
        table.row(vec![
            format!("{mu:.2}"),
            format!("{:.4}", run.ate.max),
            format!("{:.2}", kernel_ms(Kernel::Raycast)),
            format!("{:.2}", kernel_ms(Kernel::Integrate)),
            format!("{:.4}", report.timing.mean_frame_time()),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: raycast cost falls as mu grows; accuracy is best at moderate mu.");
}
