//! **E6 / per-kernel breakdown:** the SLAMBench-style kernel timing table
//! (ICRA'15 methodology the poster summarises) — modelled milliseconds per
//! kernel per frame on each catalogue device, plus host wall time.
//!
//! Run with `cargo run --release -p bench --bin kernel_table`.

use bench::living_room_dataset;
use slam_kfusion::{KFusionConfig, Kernel};
use slam_math::camera::PinholeCamera;
use slam_metrics::report::Table;
use slam_power::devices::all_devices;
use slam_trace::{SpanLevel, Tracer};
use slambench::engine::EvalEngine;

fn main() {
    let frames = 20;
    // 320x240 keeps the host run quick while exercising every kernel
    let camera = PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5);
    println!("== E6: per-kernel time breakdown (default configuration) ==");
    println!("dataset: living_room, {frames} frames at 320x240\n");

    let dataset = living_room_dataset(camera, frames);
    // keep the host run snappy; ratios hold
    let config = KFusionConfig {
        volume_resolution: 128,
        ..KFusionConfig::default()
    };
    eprintln!("running pipeline...");
    // no disk cache here: the measured profile below needs a real
    // execution under the tracer, not a cache hit
    let tracer = Tracer::new();
    let engine = EvalEngine::new().with_tracer(tracer.clone());
    let run = engine.evaluate(&dataset, &config);
    let profile = tracer.drain().profile();

    let devices = all_devices();
    let mut headers = vec!["kernel".into()];
    headers.extend(devices.iter().map(|d| format!("{} (ms)", d.name)));
    headers.push("share".into());
    let mut table = Table::new(headers);

    let reports: Vec<_> = devices.iter().map(|d| run.cost_on(d)).collect();
    let totals: Vec<f64> = reports.iter().map(|r| r.run_cost.seconds).collect();
    for kernel in Kernel::ALL {
        let mut cells = vec![kernel.name().to_string()];
        for report in &reports {
            let s = report
                .kernel_seconds
                .iter()
                .find(|(k, _)| *k == kernel)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            cells.push(format!("{:.2}", s / frames as f64 * 1e3));
        }
        // share of total on the first device (the XU3)
        let share = reports[0]
            .kernel_seconds
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, s)| s / totals[0] * 100.0)
            .unwrap_or(0.0);
        cells.push(format!("{share:.1}%"));
        table.row(cells);
    }
    let mut total_cells = vec!["TOTAL".to_string()];
    for (report, total) in reports.iter().zip(&totals) {
        let _ = report;
        total_cells.push(format!("{:.2}", total / frames as f64 * 1e3));
    }
    total_cells.push("100%".into());
    table.row(total_cells);
    println!("{}", table.render());

    let mut fps = Table::new(vec!["device".into(), "FPS".into(), "power (W)".into()]);
    for (d, report) in devices.iter().zip(&reports) {
        fps.row(vec![
            d.name.clone(),
            format!("{:.2}", report.run_cost.mean_fps()),
            format!("{:.2}", report.run_cost.average_watts()),
        ]);
    }
    println!("{}", fps.render());

    // the same table measured on this host, derived from the traced
    // run's aggregated per-kernel profile (informational only; the
    // figures above use the device model)
    let mut host = Table::new(vec![
        "kernel".into(),
        "host ms/frame".into(),
        "share".into(),
    ]);
    for kernel in Kernel::ALL {
        let Some(row) = profile.get_at(SpanLevel::Kernel, kernel.name()) else {
            continue;
        };
        host.row(vec![
            kernel.name().to_string(),
            format!("{:.2}", row.total_secs() / frames as f64 * 1e3),
            format!(
                "{:.1}%",
                100.0 * profile.share(SpanLevel::Kernel, kernel.name())
            ),
        ]);
    }
    println!("== measured host profile (slam-trace) ==");
    println!("{}", host.render());

    println!(
        "host wall time: {:.1} ms/frame (informational only; figures use the device model)",
        run.wall_seconds() / frames as f64 * 1e3
    );
    println!(
        "dominant modelled kernel on the XU3: {}",
        run.cost_on(&devices[0]).dominant_kernel()
    );
}
