//! Kernel performance baselines: thread scaling plus the dense-vs-sparse
//! volume backend head-to-head.
//!
//! Two sections:
//!
//! * **Thread scaling** — times each worker-pool kernel at 1 thread and
//!   at N threads on this host (same inputs, bit-identical outputs).
//! * **Backend comparison** — times integrate / raycast / marching cubes
//!   on the dense and the sparse volume backends at 640×480 / 256³ (the
//!   full-sensor working point the dense volume pinned the paper's
//!   curves below), then proves a 512³ sparse run completes — a volume
//!   the dense backend would need 1 GiB to even allocate.
//!
//! Everything is written to `BENCH_kernels.json` so the performance
//! trajectory is machine-readable.
//!
//! Run with `cargo run --release -p bench --bin bench_kernels`; pass
//! `--smoke` for the quick CI pass (small sizes, 2 runs, no JSON): it
//! checks the sparse backend fuses *bit-identically* to the dense one
//! inside the truncation band and exits non-zero on any mismatch.

use slam_kfusion::exec;
use slam_kfusion::icp::{track, TrackLevel};
use slam_kfusion::image::{DepthImage, Image2D};
use slam_kfusion::mesh::marching_cubes_with_threads;
use slam_kfusion::preprocess::{bilateral_filter_with_threads, depth2vertex, vertex2normal};
use slam_kfusion::raycast::{raycast_with_threads, RaycastParams};
use slam_kfusion::tsdf::TsdfVolume;
use slam_kfusion::tsdf_sparse::SparseTsdfVolume;
use slam_kfusion::KFusionConfig;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::{ProfileRow, SpanLevel, Tracer};

/// Median wall-clock seconds of `runs` calls (after one warm-up call),
/// recorded as slam-trace spans and read off the aggregated profile.
fn median_secs(mut f: impl FnMut(), runs: usize) -> f64 {
    f();
    let tracer = Tracer::new();
    for _ in 0..runs {
        let _run = tracer.section_span("timed_run");
        f();
    }
    tracer
        .drain()
        .profile()
        .get_at(SpanLevel::Section, "timed_run")
        .map_or(0.0, ProfileRow::median_secs)
}

struct Entry {
    kernel: String,
    comparison: &'static str,
    baseline_s: f64,
    optimized_s: f64,
}

/// A depth frame with structure: a background wall plus two raised
/// slabs, scaled to any resolution. Depths sit at a typical indoor
/// working distance (wall ~2.6 m, furniture-scale slabs ~2 m) so the
/// ray marcher crosses a realistic stretch of observed-empty space
/// before the surface band.
fn structured_depth(cam: &PinholeCamera) -> DepthImage {
    let (w, h) = (cam.width, cam.height);
    let mut depth = Image2D::new(w, h, 2.6f32);
    for y in h / 6..7 * h / 12 {
        for x in w / 5..11 * w / 16 {
            depth.set(x, y, 2.0 + 0.001 * (x + y) as f32 * 240.0 / h as f32);
        }
    }
    for y in 7 * h / 12..5 * h / 6 {
        for x in w / 2..7 * w / 8 {
            depth.set(x, y, 2.2);
        }
    }
    depth
}

/// Builds a dense and a sparse volume fused with the same three frames,
/// returning both: the backend head-to-head inputs.
fn fused_pair(
    res: usize,
    depth: &DepthImage,
    cam: &PinholeCamera,
    pose: &Se3,
    mu: f32,
) -> (TsdfVolume, SparseTsdfVolume) {
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut dense = TsdfVolume::new(res, 4.0);
    let mut sparse = SparseTsdfVolume::new(res, 4.0);
    for _ in 0..3 {
        dense.integrate(depth, cam, pose, mu, 100.0);
        sparse.integrate(depth, cam, pose, mu, 100.0);
    }
    (dense, sparse)
}

/// Asserts the sparse volume matches the dense one bit-for-bit at every
/// observed voxel (dense tsdf < 1.0 ⟹ in the truncation band of some
/// observation ⟹ the sparse backend must hold the identical value).
fn check_band_equivalence(dense: &TsdfVolume, sparse: &SparseTsdfVolume) -> Result<(), String> {
    let res = dense.resolution();
    for z in 0..res {
        for y in 0..res {
            for x in 0..res {
                let d = dense.voxel_tsdf(x, y, z);
                if d < 1.0 {
                    let s = sparse.voxel_tsdf(x, y, z);
                    if d.to_bits() != s.to_bits() {
                        return Err(format!(
                            "tsdf mismatch at ({x},{y},{z}): dense {d} vs sparse {s}"
                        ));
                    }
                    let dw = dense.voxel_weight(x, y, z);
                    let sw = sparse.voxel_weight(x, y, z);
                    if dw.to_bits() != sw.to_bits() {
                        return Err(format!(
                            "weight mismatch at ({x},{y},{z}): dense {dw} vs sparse {sw}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn print_entry(e: &Entry) {
    println!(
        "{:<22} {:<18} {:>12.3} {:>12.3} {:>8.2}x",
        e.kernel,
        e.comparison,
        e.baseline_s * 1e3,
        e.optimized_s * 1e3,
        e.baseline_s / e.optimized_s
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = exec::available_threads().min(4).max(2);

    // --- smoke: small, fast, correctness-gated; used by the CI lint job
    if smoke {
        let cam = PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5);
        let depth = structured_depth(&cam);
        let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));
        let (mut dense, mut sparse) = fused_pair(96, &depth, &cam, &pose, 0.1);
        if let Err(e) = check_band_equivalence(&dense, &sparse) {
            eprintln!("FAIL: dense/sparse divergence: {e}");
            std::process::exit(1);
        }
        let params = RaycastParams {
            near: 0.3,
            far: 5.0,
            step_fraction: 0.5,
            mu: 0.1,
        };
        let runs = 2;
        println!(
            "{:<22} {:<18} {:>12} {:>12} {:>9}",
            "kernel", "comparison", "dense (ms)", "sparse (ms)", "speedup"
        );
        let d = median_secs(
            || {
                dense.integrate(&depth, &cam, &pose, 0.1, 100.0);
            },
            runs,
        );
        let s = median_secs(
            || {
                sparse.integrate(&depth, &cam, &pose, 0.1, 100.0);
            },
            runs,
        );
        print_entry(&Entry {
            kernel: "integrate_96".into(),
            comparison: "dense_vs_sparse",
            baseline_s: d,
            optimized_s: s,
        });
        let d = median_secs(
            || drop(raycast_with_threads(&dense, &cam, &pose, &params, threads)),
            runs,
        );
        let s = median_secs(
            || drop(raycast_with_threads(&sparse, &cam, &pose, &params, threads)),
            runs,
        );
        print_entry(&Entry {
            kernel: "raycast_96".into(),
            comparison: "dense_vs_sparse",
            baseline_s: d,
            optimized_s: s,
        });
        println!(
            "smoke OK: sparse backend bit-identical in band ({} bricks, {:.1} MiB vs {:.1} MiB dense)",
            sparse.allocated_bricks(),
            sparse.memory_bytes() as f64 / (1024.0 * 1024.0),
            dense.memory_bytes() as f64 / (1024.0 * 1024.0),
        );
        return;
    }

    // --- full run -----------------------------------------------------
    let runs = 7;
    let mut entries: Vec<Entry> = Vec::new();

    // thread scaling at the classic compute resolution
    let cam = PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5);
    let depth = structured_depth(&cam);
    let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut vol = TsdfVolume::new(128, 4.0);
    for _ in 0..3 {
        vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
    }
    let params = RaycastParams {
        near: 0.3,
        far: 5.0,
        step_fraction: 0.5,
        mu: 0.1,
    };
    let (model, _) = raycast_with_threads(&vol, &cam, &pose, &params, 0);
    let (vertices, _) = depth2vertex(&depth, &cam);
    let (normals, _) = vertex2normal(&vertices);
    let levels = [TrackLevel {
        vertices,
        normals,
        camera: cam,
    }];
    let start = Se3::from_translation(Vec3::new(2.0, 2.0, 0.22));
    let icp_config = |t: usize| KFusionConfig {
        pyramid_iterations: [10, 0, 0],
        threads: t,
        ..KFusionConfig::fast_test()
    };

    eprintln!("thread scaling at 1 vs {threads} threads ({runs} runs each, median)...");
    let mut time_pair = |kernel: &str, run: &mut dyn FnMut(usize)| {
        let baseline_s = median_secs(|| run(1), runs);
        let optimized_s = median_secs(|| run(threads), runs);
        entries.push(Entry {
            kernel: kernel.to_string(),
            comparison: "one_thread_vs_n",
            baseline_s,
            optimized_s,
        });
    };
    time_pair("bilateral_filter", &mut |t| {
        bilateral_filter_with_threads(&depth, 2, 1.5, 0.1, t);
    });
    time_pair("icp_track", &mut |t| {
        track(&levels, &model, &cam, &start, &icp_config(t));
    });
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut scratch = TsdfVolume::new(128, 4.0);
    time_pair("integrate_128", &mut |t| {
        scratch.integrate_with_threads(&depth, &cam, &pose, 0.1, 100.0, t);
    });
    time_pair("raycast_128", &mut |t| {
        raycast_with_threads(&vol, &cam, &pose, &params, t);
    });
    time_pair("marching_cubes_128", &mut |t| {
        marching_cubes_with_threads(&vol, t);
    });

    // backend head-to-head at the full sensor / 256³ working point
    eprintln!("dense vs sparse at 640x480 / 256^3 ({threads} threads, {runs} runs, median)...");
    let cam_vga = PinholeCamera::new(640, 480, 525.0, 525.0, 319.5, 239.5);
    let depth_vga = structured_depth(&cam_vga);
    let (mut dense, mut sparse) = fused_pair(256, &depth_vga, &cam_vga, &pose, 0.1);
    if let Err(e) = check_band_equivalence(&dense, &sparse) {
        eprintln!("FAIL: dense/sparse divergence: {e}");
        std::process::exit(1);
    }
    let bricks_256 = sparse.allocated_bricks();
    let mut backend_pair =
        |kernel: &str, dense_run: &mut dyn FnMut(), sparse_run: &mut dyn FnMut()| {
            let baseline_s = median_secs(dense_run, runs);
            let optimized_s = median_secs(sparse_run, runs);
            entries.push(Entry {
                kernel: kernel.to_string(),
                comparison: "dense_vs_sparse",
                baseline_s,
                optimized_s,
            });
        };
    backend_pair(
        "integrate",
        &mut || {
            dense.integrate_with_threads(&depth_vga, &cam_vga, &pose, 0.1, 100.0, threads);
        },
        &mut || {
            sparse.integrate_traced(
                &depth_vga,
                &cam_vga,
                &pose,
                0.1,
                100.0,
                threads,
                Tracer::off(),
            );
        },
    );
    backend_pair(
        "raycast",
        &mut || {
            drop(raycast_with_threads(
                &dense, &cam_vga, &pose, &params, threads,
            ))
        },
        &mut || {
            drop(raycast_with_threads(
                &sparse, &cam_vga, &pose, &params, threads,
            ))
        },
    );
    backend_pair(
        "marching_cubes",
        &mut || drop(marching_cubes_with_threads(&dense, threads)),
        &mut || drop(marching_cubes_with_threads(&sparse, threads)),
    );

    // 512³ feasibility: a volume the dense backend cannot reasonably hold
    eprintln!("sparse 512^3 feasibility run...");
    let mut sparse_512 = SparseTsdfVolume::new(512, 4.0);
    let integrate_512_s = median_secs(
        || {
            sparse_512.integrate_traced(
                &depth_vga,
                &cam_vga,
                &pose,
                0.1,
                100.0,
                threads,
                Tracer::off(),
            );
        },
        3,
    );
    let raycast_512_s = median_secs(
        || {
            drop(raycast_with_threads(
                &sparse_512,
                &cam_vga,
                &pose,
                &params,
                threads,
            ))
        },
        3,
    );
    let dense_512_bytes = 512usize * 512 * 512 * 8;

    println!(
        "{:<22} {:<18} {:>12} {:>12} {:>9}",
        "kernel", "comparison", "base (ms)", "opt (ms)", "speedup"
    );
    let kernels: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            print_entry(e);
            serde_json::json!({
                "kernel": e.kernel,
                "comparison": e.comparison,
                "baseline_ms": e.baseline_s * 1e3,
                "optimized_ms": e.optimized_s * 1e3,
                "speedup": e.baseline_s / e.optimized_s,
            })
        })
        .collect();
    let feasibility = serde_json::json!({
        "volume_resolution": 512,
        "resolution": [cam_vga.width, cam_vga.height],
        "integrate_ms": integrate_512_s * 1e3,
        "raycast_ms": raycast_512_s * 1e3,
        "allocated_bricks": sparse_512.allocated_bricks(),
        "memory_bytes": sparse_512.memory_bytes(),
        "dense_equivalent_bytes": dense_512_bytes,
    });
    let report = serde_json::json!({
        "threads": threads,
        "runs": runs,
        "resolution": [cam_vga.width, cam_vga.height],
        "volume_resolution": 256,
        "sparse_allocated_bricks": bricks_256,
        "kernels": kernels,
        "sparse_512": feasibility,
    });
    println!(
        "sparse 512^3: integrate {:.3} ms, raycast {:.3} ms, {} bricks, {:.1} MiB (dense would be {:.0} MiB)",
        integrate_512_s * 1e3,
        raycast_512_s * 1e3,
        sparse_512.allocated_bricks(),
        sparse_512.memory_bytes() as f64 / (1024.0 * 1024.0),
        dense_512_bytes as f64 / (1024.0 * 1024.0),
    );
    let path = "BENCH_kernels.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");
    println!("\nwritten to {path}");
}
