//! Thread-scaling baseline for the parallel kernels.
//!
//! Times each worker-pool kernel at 1 thread and at N threads on this
//! host (same inputs, bit-identical outputs) and writes the comparison to
//! `BENCH_kernels.json` so the performance trajectory is machine-readable.
//!
//! Run with `cargo run --release -p bench --bin bench_kernels`.

use slam_kfusion::exec;
use slam_kfusion::icp::{track, TrackLevel};
use slam_kfusion::image::Image2D;
use slam_kfusion::mesh::marching_cubes_with_threads;
use slam_kfusion::preprocess::{bilateral_filter_with_threads, depth2vertex, vertex2normal};
use slam_kfusion::raycast::{raycast_with_threads, RaycastParams};
use slam_kfusion::tsdf::TsdfVolume;
use slam_kfusion::KFusionConfig;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::{ProfileRow, SpanLevel, Tracer};

/// Median wall-clock seconds of `runs` calls (after one warm-up call),
/// recorded as slam-trace spans and read off the aggregated profile.
fn median_secs(mut f: impl FnMut(), runs: usize) -> f64 {
    f();
    let tracer = Tracer::new();
    for _ in 0..runs {
        let _run = tracer.section_span("timed_run");
        f();
    }
    tracer
        .drain()
        .profile()
        .get_at(SpanLevel::Section, "timed_run")
        .map_or(0.0, ProfileRow::median_secs)
}

struct Entry {
    kernel: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

fn main() {
    let threads = exec::available_threads().min(4).max(2);
    let runs = 7;

    let cam = PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5);
    let mut depth = Image2D::new(cam.width, cam.height, 1.5f32);
    for y in 40..140 {
        for x in 60..220 {
            depth.set(x, y, 1.2 + 0.001 * (x + y) as f32);
        }
    }
    let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.2));
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut vol = TsdfVolume::new(128, 4.0);
    for _ in 0..3 {
        vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
    }
    let params = RaycastParams {
        near: 0.3,
        far: 5.0,
        step_fraction: 0.5,
        mu: 0.1,
    };
    let (model, _) = raycast_with_threads(&vol, &cam, &pose, &params, 0);
    let (vertices, _) = depth2vertex(&depth, &cam);
    let (normals, _) = vertex2normal(&vertices);
    let levels = [TrackLevel {
        vertices,
        normals,
        camera: cam,
    }];
    let start = Se3::from_translation(Vec3::new(2.0, 2.0, 0.22));
    let icp_config = |t: usize| KFusionConfig {
        pyramid_iterations: [10, 0, 0],
        threads: t,
        ..KFusionConfig::fast_test()
    };

    eprintln!("timing kernels at 1 vs {threads} threads ({runs} runs each, median)...");
    let mut entries = Vec::new();
    let mut time_pair = |kernel: &'static str, run: &mut dyn FnMut(usize)| {
        let serial_s = median_secs(|| run(1), runs);
        let parallel_s = median_secs(|| run(threads), runs);
        entries.push(Entry {
            kernel,
            serial_s,
            parallel_s,
        });
    };
    time_pair("bilateral_filter", &mut |t| {
        bilateral_filter_with_threads(&depth, 2, 1.5, 0.1, t);
    });
    time_pair("icp_track", &mut |t| {
        track(&levels, &model, &cam, &start, &icp_config(t));
    });
    // xtask-allow: algorithm-boundary — reason: kernel microbenchmark legitimately constructs the raw volume
    let mut scratch = TsdfVolume::new(128, 4.0);
    time_pair("integrate_128", &mut |t| {
        scratch.integrate_with_threads(&depth, &cam, &pose, 0.1, 100.0, t);
    });
    time_pair("raycast_128", &mut |t| {
        raycast_with_threads(&vol, &cam, &pose, &params, t);
    });
    time_pair("marching_cubes_128", &mut |t| {
        marching_cubes_with_threads(&vol, t);
    });

    println!(
        "{:<20} {:>12} {:>12} {:>9}",
        "kernel", "1 thr (ms)", "N thr (ms)", "speedup"
    );
    let kernels: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            let speedup = e.serial_s / e.parallel_s;
            println!(
                "{:<20} {:>12.3} {:>12.3} {:>8.2}x",
                e.kernel,
                e.serial_s * 1e3,
                e.parallel_s * 1e3,
                speedup
            );
            serde_json::json!({
                "kernel": e.kernel,
                "serial_ms": e.serial_s * 1e3,
                "parallel_ms": e.parallel_s * 1e3,
                "speedup": speedup,
            })
        })
        .collect();
    let report = serde_json::json!({
        "threads": threads,
        "runs": runs,
        "resolution": [cam.width, cam.height],
        "volume_resolution": 128,
        "kernels": kernels,
    });
    let path = "BENCH_kernels.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");
    println!("\nwritten to {path}");
}
