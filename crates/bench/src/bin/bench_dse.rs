//! Evaluation-engine baseline: batch scheduling and cache warmth.
//!
//! Times a fixed batch of distinct configurations through the
//! [`slambench::engine::EvalEngine`] three ways — serial (thread budget
//! pinned to 1), batch-parallel on a cold cache, and again on the warm
//! cache — then repeats the comparison for a whole `explore` run. Writes
//! the numbers to `BENCH_dse.json` so the performance trajectory is
//! machine-readable.
//!
//! Run with `cargo run --release -p bench --bin bench_dse`.

use bench::{exploration_camera, living_room_dataset};
use rand::SeedableRng;
use slam_kfusion::exec;
use slam_kfusion::KFusionConfig;
use slam_power::devices::odroid_xu3;
use slam_trace::Tracer;
use slambench::config_space::{decode_config, slambench_space};
use slambench::engine::EvalEngine;
use slambench::explore::{explore_with_engine, ExploreOptions};

/// Wall-clock seconds of one call, measured as a slam-trace span.
fn secs(f: impl FnOnce()) -> f64 {
    let tracer = Tracer::new();
    {
        let _s = tracer.section_span("measurement");
        f();
    }
    tracer
        .drain()
        .spans()
        .find(|s| s.name == "measurement")
        .map_or(0.0, |s| s.duration_ns() as f64 / 1e9)
}

fn main() {
    let frames = 12;
    let batch_n = 8;
    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    // a reproducible batch of distinct algorithmic configurations
    let space = slambench_space();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2018);
    let configs: Vec<KFusionConfig> = (0..batch_n)
        .map(|_| decode_config(&space.sample(&mut rng)))
        .collect();

    eprintln!(
        "timing a {batch_n}-configuration batch on {} host threads...",
        exec::available_threads()
    );
    let serial_engine = EvalEngine::new();
    let serial_s = secs(|| {
        exec::with_thread_budget(1, || {
            serial_engine.evaluate_batch(&dataset, &configs);
        })
    });
    let batch_engine = EvalEngine::new();
    let cold_s = secs(|| {
        batch_engine.evaluate_batch(&dataset, &configs);
    });
    let warm_s = secs(|| {
        batch_engine.evaluate_batch(&dataset, &configs);
    });

    eprintln!("timing explore (cold vs warm engine)...");
    let options = ExploreOptions::fast();
    let explore_engine = EvalEngine::new();
    let explore_cold_s = secs(|| {
        explore_with_engine(&explore_engine, &dataset, &device, &options);
    });
    let explore_warm_s = secs(|| {
        explore_with_engine(&explore_engine, &dataset, &device, &options);
    });

    let stats = batch_engine.stats();
    println!("{:<28} {:>10}", "measurement", "seconds");
    for (label, s) in [
        ("batch serial (1 thread)", serial_s),
        ("batch cold (parallel)", cold_s),
        ("batch warm (cache hits)", warm_s),
        ("explore cold", explore_cold_s),
        ("explore warm", explore_warm_s),
    ] {
        println!("{label:<28} {s:>10.4}");
    }
    println!(
        "batch speedup {:.2}x cold, {:.0}x warm; engine saw {} hits / {} misses",
        serial_s / cold_s.max(1e-9),
        serial_s / warm_s.max(1e-9),
        stats.hits,
        stats.misses,
    );

    let report = serde_json::json!({
        "host_threads": exec::available_threads(),
        "frames": frames,
        "batch_configs": batch_n,
        "batch_serial_s": serial_s,
        "batch_cold_s": cold_s,
        "batch_warm_s": warm_s,
        "batch_cold_speedup": serial_s / cold_s.max(1e-9),
        "batch_warm_speedup": serial_s / warm_s.max(1e-9),
        "explore_budget": options.budget,
        "explore_cold_s": explore_cold_s,
        "explore_warm_s": explore_warm_s,
        "explore_warm_speedup": explore_cold_s / explore_warm_s.max(1e-9),
    });
    let path = "BENCH_dse.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");
    println!("\nwritten to {path}");
}
