//! Campaign-server throughput/latency baseline: stands up a loopback
//! `slam-serve` instance and hammers it with concurrent clients, each
//! submitting a sweep campaign and blocking until its outcomes stream
//! back. Reports campaign-completion latency (p50/p99) and evaluation
//! throughput at 1/4/16 clients, cold shards (every run computed) vs
//! warm shards (every run a cache hit), and writes the grid to
//! `BENCH_serve.json` so the serving trajectory is machine-readable.
//!
//! Run with `cargo run --release -p bench --bin bench_serve`.
//! `--smoke` shrinks the grid to one 2-client scenario on a tiny
//! dataset — the configuration CI runs.

use slam_kfusion::KFusionConfig;
use slam_scene::dataset::DatasetConfig;
use slam_serve::{
    serve, CampaignHub, CampaignKind, CampaignRequest, Client, OutcomesPage, Priority,
    ServeOptions, Submitted,
};
use slam_trace::{Clock, WallClock};

/// One client's campaign workload: a small sweep whose configurations
/// are distinct per client, so cold scenarios really compute every run.
fn workload(client: usize, configs_per_client: usize, frames: usize) -> CampaignRequest {
    let mut dataset = DatasetConfig::tiny_test();
    dataset.frame_count = frames;
    let configs = (0..configs_per_client)
        .map(|j| {
            let mut config = KFusionConfig::fast_test();
            config.volume_resolution = 32;
            config.pyramid_iterations = [1 + (client % 3), 1 + (j % 2), 1];
            config
        })
        .collect();
    CampaignRequest {
        algorithm: "kfusion".to_string(),
        dataset,
        kind: CampaignKind::Sweep { configs },
        priority: Priority::Batch,
        device: None,
    }
}

/// Submits one campaign and blocks until every outcome has streamed
/// back; returns (latency_secs, evaluations).
fn drive_campaign(client: Client, request: &CampaignRequest, clock: &WallClock) -> (f64, usize) {
    let started = clock.now_ns();
    let submitted: Submitted = client
        .post("/campaigns", request)
        .expect("loopback server reachable")
        .json()
        .expect("submit body decodes");
    let mut seen = 0usize;
    loop {
        let page: OutcomesPage = client
            .get(&format!(
                "/campaigns/{}/outcomes?from={seen}&wait=1",
                submitted.id
            ))
            .expect("loopback server reachable")
            .json()
            .expect("outcomes body decodes");
        seen += page.records.len();
        if page.done || seen >= submitted.total {
            break;
        }
    }
    let latency = (clock.now_ns() - started) as f64 / 1e9;
    (latency, seen)
}

struct Scenario {
    clients: usize,
    warm: bool,
    latencies: Vec<f64>,
    evals: usize,
    wall_s: f64,
}

/// Runs `clients` concurrent campaign drivers against `addr`.
fn run_scenario(
    addr: std::net::SocketAddr,
    clients: usize,
    configs_per_client: usize,
    frames: usize,
    warm: bool,
    clock: &WallClock,
) -> Scenario {
    let started = clock.now_ns();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let request = workload(c, configs_per_client, frames);
            let client = Client::new(addr);
            let clock = WallClock::new();
            // xtask-allow: threading — reason: bench clients model independent processes hammering the server; they never touch the exec pool
            std::thread::spawn(move || drive_campaign(client, &request, &clock))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut evals = 0usize;
    for handle in handles {
        let (latency, n) = handle.join().expect("client thread completes");
        latencies.push(latency);
        evals += n;
    }
    let wall_s = (clock.now_ns() - started) as f64 / 1e9;
    latencies.sort_by(f64::total_cmp);
    Scenario {
        clients,
        warm,
        latencies,
        evals,
        wall_s,
    }
}

/// Percentile over an ascending-sorted sample (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (client_counts, configs_per_client, frames): (&[usize], usize, usize) = if smoke {
        (&[2], 2, 3)
    } else {
        (&[1, 4, 16], 3, 4)
    };
    let shards = 2usize;
    let clock = WallClock::new();

    let state_dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    eprintln!(
        "serving {shards} shards; {configs_per_client} configs/client over {frames} frames...",
    );
    println!(
        "{:<8} {:>8} {:>6} {:>10} {:>10} {:>12}",
        "clients", "shards", "warm", "p50(s)", "p99(s)", "evals/s"
    );

    let mut rows = Vec::new();
    for &clients in client_counts {
        // a fresh state dir per client count: cold really means cold
        let scenario_dir = state_dir.join(format!("c{clients}"));
        let mut options = ServeOptions::new(&scenario_dir);
        options.shards = shards;
        options.executors = clients.min(4).max(2);
        let hub = CampaignHub::start(options);
        let handle = serve(hub.clone(), "127.0.0.1:0").expect("loopback bind");
        let addr = handle.addr();
        for warm in [false, true] {
            let s = run_scenario(addr, clients, configs_per_client, frames, warm, &clock);
            let throughput = s.evals as f64 / s.wall_s.max(1e-9);
            println!(
                "{:<8} {:>8} {:>6} {:>10.3} {:>10.3} {:>12.1}",
                s.clients,
                shards,
                if s.warm { "yes" } else { "no" },
                percentile(&s.latencies, 50.0),
                percentile(&s.latencies, 99.0),
                throughput
            );
            rows.push(serde_json::json!({
                "clients": s.clients,
                "shards": shards,
                "warm": s.warm,
                "campaigns": s.latencies.len(),
                "evaluations": s.evals,
                "wall_s": s.wall_s,
                "p50_s": percentile(&s.latencies, 50.0),
                "p99_s": percentile(&s.latencies, 99.0),
                "evals_per_s": throughput,
            }));
        }
        handle.stop();
        hub.shutdown();
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    let report = serde_json::json!({
        "smoke": smoke,
        "shards": shards,
        "configs_per_client": configs_per_client,
        "frames": frames,
        "rows": rows,
    });
    let path = "BENCH_serve.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");
    println!("\nwritten to {path}");
}
