//! **E1 / Figure 2 (left):** design-space exploration of the KinectFusion
//! algorithmic parameters on the ODROID XU3 model.
//!
//! Regenerates the paper's scatter of runtime (s) vs. max ATE (m) for
//! three series — the default configuration, a random-sampling sweep and
//! the HyperMapper-style active learning — and reports the best
//! configurations under the 5 cm accuracy limit.
//!
//! Run with `cargo run --release -p bench --bin fig2_dse`.
//!
//! Both sweeps checkpoint to `results/checkpoints/` as they go; rerun
//! with `--resume` after an interrupted sweep to continue from the last
//! checkpoint instead of restarting (bit-identical outcome, same seed).
//! `--checkpoint-every N` tunes the checkpoint cadence (default 8).

use bench::{exploration_camera, living_room_dataset, thresholds};
use slam_dse::active::ActiveLearnerOptions;
use slam_dse::Evaluation;
use slam_metrics::report::{scatter_plot, Table};
use slam_power::devices::odroid_xu3;
use slambench::checkpoint::CheckpointOptions;
use slambench::engine::EvalEngine;
use slambench::explore::{
    explore_checkpointed, random_sweep_checkpointed, ExploreOptions, MeasuredConfig,
};

/// `--resume` and `--checkpoint-every N` from the command line.
fn checkpoint_flags(label: &str) -> CheckpointOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ckpt = CheckpointOptions::new(label);
    ckpt.resume = args.iter().any(|a| a == "--resume");
    if let Some(every) = args
        .iter()
        .position(|a| a == "--checkpoint-every")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        ckpt.every = every.max(1);
    }
    ckpt
}

fn to_points(ms: &[MeasuredConfig]) -> Vec<(f64, f64)> {
    ms.iter().map(|m| (m.runtime_s, m.max_ate_m)).collect()
}

fn hypervolume(ms: &[MeasuredConfig], reference: [f64; 2]) -> f64 {
    let evals: Vec<Evaluation> = ms
        .iter()
        .map(|m| Evaluation::new(m.x.clone(), vec![m.runtime_s, m.max_ate_m]))
        .collect();
    let front = slam_dse::pareto::pareto_front(&evals);
    slam_dse::pareto::hypervolume_2d(&front, reference)
}

fn main() {
    let frames = 25;
    let budget = 120;
    let random_n = 120;
    println!("== E1 / Figure 2 (left): runtime vs accuracy on the ODROID XU3 model ==");
    println!("dataset: living_room, {frames} frames at 320x240 (see DESIGN.md for scaling)");
    println!("budget: {budget} active-learning evaluations vs {random_n} random samples\n");

    let dataset = living_room_dataset(exploration_camera(), frames);
    let device = odroid_xu3();

    let engine = EvalEngine::with_disk_cache("results/cache");
    eprintln!("[1/2] random sampling ({random_n} configurations, parallel)...");
    let random_sweep = random_sweep_checkpointed(
        &engine,
        &dataset,
        &device,
        random_n,
        2018,
        &checkpoint_flags("fig2_dse_random"),
    )
    .complete()
    .expect("no stop_after configured");
    if !random_sweep.quarantined.is_empty() {
        eprintln!("quarantined during random sweep:");
        for q in &random_sweep.quarantined {
            eprintln!("  {q}");
        }
    }
    let random = random_sweep.measured;

    eprintln!("[2/2] active learning ({budget} evaluations)...");
    let mut options = ExploreOptions {
        budget,
        learner: ActiveLearnerOptions {
            initial_samples: 40,
            iterations: 16,
            batch_size: 5,
            candidates_per_iteration: 1500,
            exploration_fraction: 0.2,
            seed: 2018,
            ..ActiveLearnerOptions::default()
        },
        accuracy_limit: thresholds::MAX_ATE_M,
        ..ExploreOptions::default()
    };
    options.learner.forest.trees = 24;
    let outcome = explore_checkpointed(
        &engine,
        &dataset,
        &device,
        &options,
        &checkpoint_flags("fig2_dse_active"),
    )
    .complete()
    .expect("no stop_after configured");
    if !outcome.quarantined.is_empty() {
        eprintln!("quarantined during active learning:");
        for q in &outcome.quarantined {
            eprintln!("  {q}");
        }
    }

    // ---- the scatter (clip the hopeless tail for readability) -------------
    let clip = |pts: Vec<(f64, f64)>| -> Vec<(f64, f64)> {
        pts.into_iter()
            .filter(|&(r, a)| r < 0.5 && a < 0.5)
            .collect()
    };
    let series = vec![
        ("random sampling", '.', clip(to_points(&random))),
        ("active learning", 'o', clip(to_points(&outcome.measured))),
        (
            "default configuration",
            'D',
            vec![(
                outcome.default_config.runtime_s,
                outcome.default_config.max_ate_m,
            )],
        ),
    ];
    println!(
        "\nRuntime (s, x) vs Max ATE (m, y); accuracy limit {} m:",
        thresholds::MAX_ATE_M
    );
    print!("{}", scatter_plot(&series, 72, 24));

    // ---- best configurations ----------------------------------------------
    let best_of = |ms: &[MeasuredConfig]| -> Option<MeasuredConfig> {
        ms.iter()
            .filter(|m| m.max_ate_m <= thresholds::MAX_ATE_M)
            .min_by(|a, b| a.runtime_s.partial_cmp(&b.runtime_s).expect("finite"))
            .cloned()
    };
    let best_random = best_of(&random);
    let best_active = best_of(&outcome.measured);

    let mut table = Table::new(vec![
        "series".into(),
        "runtime (s)".into(),
        "FPS".into(),
        "max ATE (m)".into(),
        "power (W)".into(),
        "speedup vs default".into(),
        "configuration".into(),
    ]);
    let default = &outcome.default_config;
    let mut push = |name: &str, m: &MeasuredConfig| {
        table.row(vec![
            name.into(),
            format!("{:.4}", m.runtime_s),
            format!("{:.1}", m.fps),
            format!("{:.4}", m.max_ate_m),
            format!("{:.2}", m.watts),
            format!("{:.2}x", default.runtime_s / m.runtime_s),
            format!("{}", m.config),
        ]);
    };
    push("default", default);
    if let Some(m) = &best_random {
        push("best random (ATE<5cm)", m);
    }
    if let Some(m) = &best_active {
        push("best active (ATE<5cm)", m);
    }
    println!("{}", table.render());

    // ---- front quality ------------------------------------------------------
    let reference = [
        default.runtime_s.max(0.3),
        0.25, // a generous ATE reference bound
    ];
    let hv_random = hypervolume(&random, reference);
    let hv_active = hypervolume(&outcome.measured, reference);
    println!("2-D hypervolume (runtime x maxATE, ref {reference:?}):");
    println!("  random sampling : {hv_random:.5}");
    println!("  active learning : {hv_active:.5}");
    println!(
        "  active/random   : {:.3} (>= 1.0 means active learning dominates)",
        hv_active / hv_random.max(1e-12)
    );

    match (&best_random, &best_active) {
        (Some(r), Some(a)) => {
            println!(
                "\nshape check: best feasible runtime — active {:.4} s vs random {:.4} s ({})",
                a.runtime_s,
                r.runtime_s,
                if a.runtime_s <= r.runtime_s {
                    "active wins"
                } else {
                    "random wins"
                },
            );
        }
        _ => println!("\nshape check: a series found no feasible configuration"),
    }
}
