//! Tracing-overhead baseline: traced vs untraced pipeline runs.
//!
//! Runs the same short sequence with tracing disabled and enabled
//! (median of several repetitions of each), reports the overhead
//! percentage and the per-kernel time shares off the traced run's
//! aggregated profile, writes the numbers to `BENCH_trace.json`, and
//! dumps the Chrome `trace_event` JSON under `results/traces/` (load it
//! in Perfetto or `about://tracing`).
//!
//! Run with `cargo run --release -p bench --bin bench_trace`.

use bench::{exploration_camera, living_room_dataset};
use slam_kfusion::KFusionConfig;
use slam_trace::{SpanLevel, Tracer};
use slambench::engine::{evaluate_once, evaluate_once_traced};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let frames = 10;
    let reps = 5;
    let dataset = living_room_dataset(exploration_camera(), frames);
    let config = KFusionConfig {
        volume_resolution: 128,
        ..KFusionConfig::default()
    };

    eprintln!("timing {reps} untraced vs {reps} traced runs of {frames} frames...");
    evaluate_once(&dataset, &config); // warm-up
    let untraced_s = median(
        (0..reps)
            .map(|_| evaluate_once(&dataset, &config).wall_seconds())
            .collect(),
    );
    let tracer = Tracer::new();
    let traced_s = median(
        (0..reps)
            .map(|_| evaluate_once_traced(&dataset, &config, &tracer).wall_seconds())
            .collect(),
    );
    let overhead_pct = (traced_s / untraced_s.max(1e-12) - 1.0) * 100.0;

    let trace = tracer.drain();
    let profile = trace.profile();
    println!("{}", profile.render());
    println!(
        "untraced {:.4} s, traced {:.4} s per run: {overhead_pct:+.2}% tracing overhead \
         ({} events over {reps} runs)",
        untraced_s,
        traced_s,
        trace.len(),
    );

    let kernels: Vec<serde_json::Value> = profile
        .rows()
        .iter()
        .filter(|r| r.level == SpanLevel::Kernel)
        .map(|r| {
            serde_json::json!({
                "kernel": r.name,
                "count": r.count,
                "total_ms": r.total_ns as f64 / 1e6,
                "ms_per_frame": r.total_ns as f64 / 1e6 / (frames * reps) as f64,
                "share": profile.share(SpanLevel::Kernel, r.name),
            })
        })
        .collect();
    let report = serde_json::json!({
        "frames": frames,
        "reps": reps,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_pct": overhead_pct,
        "events": trace.len(),
        "counters": trace.counter_totals(),
        "kernels": kernels,
    });
    let path = "BENCH_trace.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialisable report"),
    )
    .expect("writable working directory");

    let trace_dir = std::path::Path::new("results/traces");
    std::fs::create_dir_all(trace_dir).expect("writable working directory");
    let chrome = trace_dir.join("bench_trace.json");
    std::fs::write(&chrome, trace.to_chrome_json()).expect("writable working directory");
    println!("\nwritten to {path}; Chrome trace at {}", chrome.display());
}
