//! Shared helpers for the figure-regeneration binaries and criterion
//! benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/`; see
//! the experiment index in `DESIGN.md` and the recorded outcomes in
//! `EXPERIMENTS.md`. The binaries print plain-text tables and ASCII
//! charts so a reproduction can be eyeballed in a terminal.

#![deny(unsafe_code)]

use slam_kfusion::KFusionConfig;
use slam_math::camera::PinholeCamera;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;

/// The sensor used by the exploration figures: half-resolution (320×240),
/// which keeps hundreds of pipeline evaluations affordable while
/// preserving the paper's kernel cost mix (the pixel kernels scale with
/// the image, the TSDF volume work does not — at 160×120 the volume
/// dominates so much that speed-ups become exaggerated).
pub fn exploration_camera() -> PinholeCamera {
    PinholeCamera::new(320, 240, 262.5, 262.5, 159.5, 119.5)
}

/// The quarter-resolution sensor for fast examples and smoke tests.
pub fn tiny_camera() -> PinholeCamera {
    PinholeCamera::tiny()
}

/// The full Kinect sensor, used for the headline (E4) experiment.
pub fn headline_camera() -> PinholeCamera {
    PinholeCamera::kinect()
}

/// The benchmark sequence at a given camera and frame count: the
/// living-room scene with Kinect noise (the workspace's ICL-NUIM
/// `living_room` stand-in).
pub fn living_room_dataset(camera: PinholeCamera, frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::living_room();
    dc.camera = camera;
    dc.frame_count = frames;
    dc.noise = DepthNoiseModel {
        max_range: 6.0,
        ..DepthNoiseModel::kinect()
    };
    SyntheticDataset::generate(&dc)
}

/// The "XU3-tuned" configuration: the best feasible configuration found
/// by the `fig2_dse` exploration on the ODROID XU3 model, frozen here so
/// that `fig3_phones` and `headline` are reproducible without re-running
/// the search (re-run `fig2_dse` to re-derive it; it prints its best
/// feasible configuration for comparison).
pub fn xu3_tuned_config() -> KFusionConfig {
    KFusionConfig {
        compute_size_ratio: 2,
        icp_threshold: 2e-5,
        mu: 0.075,
        volume_resolution: 96,
        pyramid_iterations: [4, 2, 2],
        tracking_rate: 1,
        integration_rate: 2,
        raycast_rate: 1,
        bilateral_filter: true,
        ..KFusionConfig::default()
    }
}

/// The paper's quality thresholds (Figure 2 right): accurate, fast,
/// power-efficient.
pub mod thresholds {
    /// Max ATE limit in metres ("Accurate (Max ATE < 5 cm)").
    pub const MAX_ATE_M: f64 = 0.05;
    /// FPS target ("Fast (Speed > 30 FPS)").
    pub const FPS: f64 = 30.0;
    /// Power limit in watts ("Power efficient (consumption < 3 W)").
    pub const WATTS: f64 = 3.0;
}

/// Formats a float with fixed decimals for table cells.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_config_is_valid_and_lighter_than_default() {
        let tuned = xu3_tuned_config();
        tuned.validate().unwrap();
        let default = KFusionConfig::default();
        assert!(tuned.volume_resolution < default.volume_resolution);
        assert!(tuned.compute_size_ratio > default.compute_size_ratio);
        assert!(tuned.total_icp_iterations() < default.total_icp_iterations());
    }

    #[test]
    fn dataset_helper_generates() {
        let d = living_room_dataset(exploration_camera(), 3);
        assert_eq!(d.len(), 3);
        assert!(d.frames()[0].valid_depth_fraction() > 0.5);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
