//! The `slam-serve` binary: stand up the campaign server.
//!
//! ```text
//! slam-serve [--addr 127.0.0.1:7878] [--state-dir results/serve]
//!            [--shards 2] [--executors 2] [--quantum 4]
//!            [--self-check] [--example-request]
//! ```
//!
//! `--self-check` starts an ephemeral server on a loopback port, runs
//! one tiny campaign end-to-end through the HTTP surface, prints the
//! result, and exits — the smoke test CI runs. `--example-request`
//! prints a complete, valid `POST /campaigns` body to stdout (a
//! `DatasetConfig` is too nested to hand-write) and exits; pipe it to
//! a file, edit, and `curl -d @-` it.

use slam_kfusion::KFusionConfig;
use slam_scene::dataset::DatasetConfig;
use slam_serve::{
    serve, CampaignHub, CampaignKind, CampaignRequest, Client, OutcomesPage, Priority,
    ServeOptions, Submitted,
};

struct Args {
    addr: String,
    options: ServeOptions,
    self_check: bool,
    example_request: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        options: ServeOptions::new("results/serve"),
        self_check: false,
        example_request: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--state-dir" => args.options.state_dir = value("--state-dir")?.into(),
            "--shards" => {
                args.options.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--executors" => {
                args.options.executors = value("--executors")?
                    .parse()
                    .map_err(|e| format!("--executors: {e}"))?;
            }
            "--quantum" => {
                args.options.quantum = value("--quantum")?
                    .parse()
                    .map_err(|e| format!("--quantum: {e}"))?;
            }
            "--self-check" => args.self_check = true,
            "--example-request" => args.example_request = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn self_check(mut options: ServeOptions) -> Result<(), String> {
    options.state_dir =
        std::env::temp_dir().join(format!("slam-serve-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&options.state_dir);
    let state_dir = options.state_dir.clone();
    let hub = CampaignHub::start(options);
    let handle = serve(hub.clone(), "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let client = Client::new(handle.addr());
    let mut dataset = DatasetConfig::tiny_test();
    dataset.frame_count = 3;
    let request = CampaignRequest {
        algorithm: "kfusion".to_string(),
        dataset,
        kind: CampaignKind::Sweep {
            configs: vec![KFusionConfig::fast_test()],
        },
        priority: Priority::Interactive,
        device: None,
    };
    let submitted: Submitted = client
        .post("/campaigns", &request)
        .map_err(|e| format!("submit: {e}"))?
        .json()
        .map_err(|e| format!("submit body: {e}"))?;
    let page: OutcomesPage = client
        .get(&format!(
            "/campaigns/{}/outcomes?from=0&wait=1",
            submitted.id
        ))
        .map_err(|e| format!("outcomes: {e}"))?
        .json()
        .map_err(|e| format!("outcomes body: {e}"))?;
    handle.stop();
    hub.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
    if page.records.len() == submitted.total {
        println!(
            "self-check ok: campaign {} streamed {} outcome(s)",
            submitted.id,
            page.records.len()
        );
        Ok(())
    } else {
        Err(format!(
            "self-check failed: {}/{} outcomes",
            page.records.len(),
            submitted.total
        ))
    }
}

/// Prints a complete `POST /campaigns` body: the living-room sequence
/// at 30 frames, a two-configuration sweep, interactive priority.
fn example_request() {
    let mut dataset = DatasetConfig::living_room();
    dataset.frame_count = 30;
    let mut tuned = KFusionConfig::default();
    tuned.volume_resolution = 128;
    let request = CampaignRequest {
        algorithm: "kfusion".to_string(),
        dataset,
        kind: CampaignKind::Sweep {
            configs: vec![KFusionConfig::default(), tuned],
        },
        priority: Priority::Interactive,
        device: None,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&request).expect("request serialises")
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("slam-serve: {e}");
            std::process::exit(2);
        }
    };
    if args.example_request {
        example_request();
        return;
    }
    if args.self_check {
        if let Err(e) = self_check(args.options) {
            eprintln!("slam-serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let hub = CampaignHub::start(args.options);
    match serve(hub, &args.addr) {
        Ok(handle) => {
            println!("slam-serve listening on {}", handle.addr());
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("slam-serve: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    }
}
