//! Evaluation-as-a-service: a zero-dependency HTTP/1.1 + JSON campaign
//! server over a sharded [`EvalEngine`](slambench::engine::EvalEngine)
//! core.
//!
//! The paper's DSE methodology (HyperMapper) and SLAMBench2's
//! head-to-head harness both presume a shared evaluation backend that
//! many clients hammer concurrently. This crate makes the workspace's
//! single-process engine that backend:
//!
//! * [`protocol`] — the serde wire types of the campaign API: submit
//!   explore / sweep / suite / random-sweep / single-eval campaigns for
//!   any registered [`AlgoId`](slam_kfusion::AlgoId), poll or stream
//!   per-run outcomes incrementally, query stats, cancel.
//! * [`shard`] — N engine shards with config-hash routing
//!   ([`run_fingerprint`](slambench::engine::run_fingerprint) modulo
//!   shard count), cross-shard cache lookup before any run, and a
//!   shared on-disk cache directory (content-addressed file names make
//!   concurrent writers safe).
//! * [`campaign`] — campaign state machines: validation at the trust
//!   boundary, unit expansion, per-campaign outcome logs, cancel flags,
//!   and spec persistence through the checkpoint layer's atomic-JSON
//!   helpers so a killed server resumes in-flight campaigns.
//! * [`scheduler`] — the [`CampaignHub`](scheduler::CampaignHub): a
//!   small executor pool that multiplexes runnable campaigns over the
//!   shared worker pool in quantum-sized slices, interactive before
//!   batch, least-recently-served first within a class, splitting the
//!   kernel thread budget across concurrently running campaigns.
//! * [`server`] — the HTTP front end: hand-rolled request parsing over
//!   std [`TcpListener`](std::net::TcpListener), chunked streaming of
//!   outcomes as they land, typed 400s (the
//!   [`AlgoId::from_str`](std::str::FromStr) message surfaces
//!   verbatim).
//! * [`client`] — a minimal blocking HTTP client used by the
//!   integration tests, the `bench_serve` bin and `--self-check`.
//!
//! # Determinism obligations
//!
//! Campaign outcomes are bit-identical to the same configurations run
//! serially through one engine, at any shard count, client count or
//! thread budget, because every run is thread-count-invariant and
//! shards never share mutable state (the disk cache is content
//! addressed and write-then-rename). The single exception is
//! [`FrameRecord::wall_time`](slambench::run::FrameRecord) on a *fresh*
//! execution — cached replays (including post-restart resume) return
//! even that bit-identically.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod shard;

pub use client::{Client, Response};
pub use protocol::{
    CampaignKind, CampaignPhase, CampaignRequest, CampaignStatus, ErrorBody, OutcomeRecord,
    OutcomeStatus, OutcomesPage, Priority, ServerStatsReport, Submitted,
};
pub use scheduler::{CampaignHub, ServeOptions};
pub use server::{serve, ServeHandle};
pub use shard::ShardedEngine;
