//! Campaign state machines: validation at the trust boundary, work-unit
//! expansion, the per-campaign outcome log, cancellation, and spec
//! persistence.
//!
//! A [`Campaign`] is built from a wire
//! [`CampaignRequest`](crate::protocol::CampaignRequest) by
//! [`Campaign::build`], which is where every untrusted field is
//! checked: the algorithm name (rejected with the
//! [`AlgoId`](slam_kfusion::AlgoId) parse error verbatim, which lists
//! the valid names), the device name, every configuration, the dataset
//! and the suite name. A campaign that builds is guaranteed evaluable.
//!
//! The campaign's spec (`{id, request, done}`) is persisted through the
//! checkpoint layer's atomic-JSON helpers under
//! `<state_dir>/campaigns/<id>.json` the moment it is accepted, and
//! rewritten with `done: true` on any terminal phase — so a killed
//! server finds exactly the in-flight campaigns on restart and rebuilds
//! them from their requests. Work units are re-derived
//! deterministically from the request (synthetic datasets and seeded
//! samples regenerate bit-identically), and the engine's shared disk
//! cache replays every pre-kill evaluation — including its recorded
//! wall times — so resumed campaigns stream byte-identical outcomes.

use crate::protocol::{
    CampaignKind, CampaignPhase, CampaignRequest, CampaignStatus, OutcomeRecord, Priority,
};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use slam_kfusion::{AlgoId, KFusionConfig};
use slam_power::devices::{all_devices, by_name, odroid_xu3};
use slam_power::DeviceModel;
use slam_scene::dataset::SyntheticDataset;
use slambench::checkpoint::{load_json, save_json_atomic};
use slambench::explore::ExploreOptions;
use slambench::suite::{adversarial_suite, standard_suite};
use slambench::{decode_for, space_for};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One evaluation slot of a unit-list campaign.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Index into the campaign's dataset list.
    pub dataset: usize,
    /// Sequence name, for suite campaigns.
    pub sequence: Option<String>,
    /// The configuration to evaluate.
    pub config: KFusionConfig,
}

/// The evaluable form of a campaign.
#[derive(Debug)]
pub enum Work {
    /// A fixed list of evaluation slots (single, sweep, suite,
    /// random-sweep campaigns).
    Units {
        /// The generated datasets the units index into.
        datasets: Vec<SyntheticDataset>,
        /// The slots, in streaming order.
        units: Vec<WorkUnit>,
    },
    /// An active-learning exploration driven through the checkpointed
    /// sweep loop (the proposals depend on earlier measurements, so
    /// there is no up-front unit list).
    Explore {
        /// The dataset explored over.
        dataset: SyntheticDataset,
        /// Exploration settings (budget, seeded learner).
        options: ExploreOptions,
    },
}

/// Mutable campaign progress, behind one mutex. The outcome log is
/// append-only; `outcomes.len()` is the streaming cursor.
#[derive(Debug)]
struct ProgressState {
    phase: CampaignPhase,
    outcomes: Vec<OutcomeRecord>,
}

/// One accepted campaign. See the [module docs](self).
#[derive(Debug)]
pub struct Campaign {
    /// Campaign id (assigned by the hub, stable across restarts).
    pub id: u64,
    /// The parsed algorithm.
    pub algorithm: AlgoId,
    /// Scheduling class.
    pub priority: Priority,
    /// The resolved device model (explore objectives).
    pub device: DeviceModel,
    /// The originating request, as persisted.
    pub request: CampaignRequest,
    /// Total evaluations the campaign will produce.
    pub total: usize,
    /// The evaluable work.
    pub work: Work,
    progress: Mutex<ProgressState>,
    wakeup: Condvar,
    cancelled: AtomicBool,
    leased: AtomicBool,
    served_tick: AtomicU64,
}

fn join_device_names() -> String {
    all_devices()
        .iter()
        .map(|d| d.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

impl Campaign {
    /// Validates `request` and expands it into an evaluable campaign.
    ///
    /// # Errors
    ///
    /// A human-readable message, surfaced verbatim as the HTTP 400
    /// body: unknown algorithm (listing the valid names), unknown
    /// device (listing the catalogue), invalid configuration, empty
    /// dataset, unknown suite, or an empty work list.
    pub fn build(id: u64, request: CampaignRequest) -> Result<Campaign, String> {
        let algorithm: AlgoId = request.algorithm.parse()?;
        let device = match &request.device {
            None => odroid_xu3(),
            Some(name) => by_name(name).ok_or_else(|| {
                format!(
                    "unknown device {name:?}; valid devices: {}",
                    join_device_names()
                )
            })?,
        };
        let needs_request_dataset = !matches!(request.kind, CampaignKind::Suite { .. });
        if needs_request_dataset && request.dataset.frame_count == 0 {
            return Err("cannot evaluate on an empty dataset".to_string());
        }
        let validate = |config: &KFusionConfig| {
            config
                .validate()
                .map_err(|e| format!("invalid configuration: {e}"))
        };
        let (total, work) = match &request.kind {
            CampaignKind::Single { config } => {
                validate(config)?;
                let dataset = SyntheticDataset::generate(&request.dataset);
                let units = vec![WorkUnit {
                    dataset: 0,
                    sequence: None,
                    config: config.clone(),
                }];
                (
                    1,
                    Work::Units {
                        datasets: vec![dataset],
                        units,
                    },
                )
            }
            CampaignKind::Sweep { configs } => {
                if configs.is_empty() {
                    return Err("sweep has no configurations".to_string());
                }
                for config in configs {
                    validate(config)?;
                }
                let dataset = SyntheticDataset::generate(&request.dataset);
                let units = configs
                    .iter()
                    .map(|config| WorkUnit {
                        dataset: 0,
                        sequence: None,
                        config: config.clone(),
                    })
                    .collect::<Vec<_>>();
                (
                    units.len(),
                    Work::Units {
                        datasets: vec![dataset],
                        units,
                    },
                )
            }
            CampaignKind::Suite {
                suite,
                frames,
                configs,
            } => {
                if configs.is_empty() {
                    return Err("suite campaign has no configurations".to_string());
                }
                for config in configs {
                    validate(config)?;
                }
                if *frames == 0 {
                    return Err("cannot evaluate on an empty dataset".to_string());
                }
                let sequences = match suite.as_str() {
                    "standard" => standard_suite(request.dataset.camera, *frames),
                    "adversarial" => adversarial_suite(request.dataset.camera, *frames),
                    other => {
                        return Err(format!(
                            "unknown suite {other:?}; valid suites: standard, adversarial"
                        ))
                    }
                };
                let mut datasets = Vec::with_capacity(sequences.len());
                let mut units = Vec::with_capacity(sequences.len() * configs.len());
                for (si, seq) in sequences.iter().enumerate() {
                    datasets.push(SyntheticDataset::generate(&seq.config));
                    for config in configs {
                        units.push(WorkUnit {
                            dataset: si,
                            sequence: Some(seq.name.clone()),
                            config: config.clone(),
                        });
                    }
                }
                (units.len(), Work::Units { datasets, units })
            }
            CampaignKind::RandomSweep { n, seed } => {
                if *n == 0 {
                    return Err("random sweep has no samples".to_string());
                }
                let space = space_for(algorithm);
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(*seed);
                let samples = slam_dse::sampler::random_samples(&space, *n, &mut rng);
                let dataset = SyntheticDataset::generate(&request.dataset);
                let units = samples
                    .iter()
                    .map(|x| WorkUnit {
                        dataset: 0,
                        sequence: None,
                        config: decode_for(algorithm, x),
                    })
                    .collect::<Vec<_>>();
                (
                    units.len(),
                    Work::Units {
                        datasets: vec![dataset],
                        units,
                    },
                )
            }
            CampaignKind::Explore { budget, seed } => {
                if *budget == 0 {
                    return Err("exploration has no budget".to_string());
                }
                let dataset = SyntheticDataset::generate(&request.dataset);
                // small budgets use the fast learner profile so tiny
                // interactive explorations are not dominated by the
                // default 40-point initial design
                let mut learner = if *budget <= 24 {
                    slam_dse::active::ActiveLearnerOptions::fast()
                } else {
                    slam_dse::active::ActiveLearnerOptions::default()
                };
                learner.seed = *seed;
                let options = ExploreOptions {
                    budget: *budget,
                    learner,
                    ..ExploreOptions::default()
                };
                (*budget, Work::Explore { dataset, options })
            }
        };
        Ok(Campaign {
            id,
            algorithm,
            priority: request.priority,
            device,
            request,
            total,
            work,
            progress: Mutex::new(ProgressState {
                phase: CampaignPhase::Queued,
                outcomes: Vec::new(),
            }),
            wakeup: Condvar::new(),
            cancelled: AtomicBool::new(false),
            leased: AtomicBool::new(false),
            served_tick: AtomicU64::new(0),
        })
    }

    fn lock_progress(&self) -> MutexGuard<'_, ProgressState> {
        // the log is append-only and the phase a single enum write, so
        // a poisoned lock cannot expose a torn state
        self.progress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The campaign's lifecycle state.
    pub fn phase(&self) -> CampaignPhase {
        self.lock_progress().phase.clone()
    }

    /// Outcomes streamed so far — also the index the next quantum
    /// starts from.
    pub fn completed(&self) -> usize {
        self.lock_progress().outcomes.len()
    }

    /// The wire status of this campaign.
    pub fn status(&self) -> CampaignStatus {
        let progress = self.lock_progress();
        CampaignStatus {
            id: self.id,
            algorithm: self.algorithm.id().to_string(),
            kind: self.request.kind.name().to_string(),
            priority: self.priority,
            phase: progress.phase.clone(),
            total: self.total,
            completed: progress.outcomes.len(),
        }
    }

    /// Appends a quantum's outcomes to the log and advances the phase
    /// (`Running`, or `Complete` once the log is full). Records arriving
    /// after cancellation are dropped: the log never grows past what
    /// the cancel point promised. Wakes every waiting reader.
    pub fn append(&self, records: Vec<OutcomeRecord>) {
        let mut progress = self.lock_progress();
        if !progress.phase.is_terminal() {
            progress.outcomes.extend(records);
            progress.phase = if progress.outcomes.len() >= self.total {
                CampaignPhase::Complete
            } else {
                CampaignPhase::Running
            };
        }
        self.wakeup.notify_all();
    }

    /// Cancels the campaign: the phase becomes `Cancelled` immediately
    /// (unless already terminal), the executor's in-flight quantum is
    /// discarded on arrival, and streamed readers are woken to observe
    /// the terminal state. Returns the post-cancel status.
    pub fn cancel(&self) -> CampaignStatus {
        self.cancelled.store(true, Ordering::SeqCst);
        {
            let mut progress = self.lock_progress();
            if !progress.phase.is_terminal() {
                progress.phase = CampaignPhase::Cancelled;
            }
            self.wakeup.notify_all();
        }
        self.status()
    }

    /// Whether [`Campaign::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Marks the campaign failed with an engine error message.
    pub fn mark_failed(&self, error: String) {
        let mut progress = self.lock_progress();
        if !progress.phase.is_terminal() {
            progress.phase = CampaignPhase::Failed { error };
        }
        self.wakeup.notify_all();
    }

    /// Whether an executor should pick this campaign up.
    pub fn wants_work(&self) -> bool {
        !self.leased.load(Ordering::SeqCst) && {
            let progress = self.lock_progress();
            !progress.phase.is_terminal() && progress.outcomes.len() < self.total
        }
    }

    /// Claims the campaign for one executor (at most one runs a
    /// campaign's quanta at a time, keeping the outcome log ordered).
    pub fn try_lease(&self) -> bool {
        self.leased
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases the executor's claim.
    pub fn release(&self) {
        self.leased.store(false, Ordering::SeqCst);
    }

    /// Records when the scheduler last served this campaign (fairness:
    /// least-recently-served runs first within a priority class).
    pub fn touch(&self, tick: u64) {
        self.served_tick.store(tick, Ordering::SeqCst);
    }

    /// The scheduler tick this campaign was last served at.
    pub fn last_served(&self) -> u64 {
        self.served_tick.load(Ordering::SeqCst)
    }

    /// The outcomes from `from` onward plus whether the campaign is
    /// terminal. With `wait`, blocks (bounded at roughly a minute)
    /// until a record past `from` lands or the campaign is terminal —
    /// the long-poll behind `?wait=1` and the streaming endpoint.
    pub fn page_from(&self, from: usize, wait: bool) -> (Vec<OutcomeRecord>, bool) {
        let mut progress = self.lock_progress();
        if wait {
            let mut patience = 1200u32; // × 50 ms ≈ one minute
            while progress.outcomes.len() <= from && !progress.phase.is_terminal() && patience > 0 {
                let (next, _timeout) = self
                    .wakeup
                    .wait_timeout(progress, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                progress = next;
                patience -= 1;
            }
        }
        let start = from.min(progress.outcomes.len());
        (
            progress.outcomes[start..].to_vec(),
            progress.phase.is_terminal(),
        )
    }
}

/// The persisted form of a campaign: enough to rebuild it after a kill.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// The campaign's id (also the file stem).
    pub id: u64,
    /// The originating request, verbatim.
    pub request: CampaignRequest,
    /// Whether the campaign reached a terminal phase — done specs are
    /// not resumed.
    pub done: bool,
}

/// The campaign spec directory under a server state dir.
pub fn spec_dir(state_dir: &Path) -> PathBuf {
    state_dir.join("campaigns")
}

fn spec_path(state_dir: &Path, id: u64) -> PathBuf {
    spec_dir(state_dir).join(format!("{id:08}.json"))
}

/// Atomically persists one campaign spec. Best-effort, like every
/// persistence layer here: a failed save costs resume, not
/// correctness.
pub fn save_spec(state_dir: &Path, spec: &CampaignSpec) -> bool {
    save_json_atomic(&spec_path(state_dir, spec.id), spec)
}

/// Loads every parseable campaign spec under `state_dir`, id order.
/// Unreadable or corrupt files are skipped — the same tolerance policy
/// as the sweep checkpoints.
pub fn load_specs(state_dir: &Path) -> Vec<CampaignSpec> {
    let Ok(entries) = std::fs::read_dir(spec_dir(state_dir)) else {
        return Vec::new();
    };
    let mut specs: Vec<CampaignSpec> = entries
        .flatten()
        .filter_map(|entry| load_json(&entry.path()))
        .collect();
    specs.sort_by_key(|spec| spec.id);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{OutcomeStatus, Priority};
    use slam_scene::dataset::DatasetConfig;

    fn request(kind: CampaignKind) -> CampaignRequest {
        let mut dataset = DatasetConfig::tiny_test();
        dataset.frame_count = 3;
        CampaignRequest {
            algorithm: "kfusion".into(),
            dataset,
            kind,
            priority: Priority::Batch,
            device: None,
        }
    }

    fn record(index: usize) -> OutcomeRecord {
        OutcomeRecord {
            index,
            sequence: None,
            status: OutcomeStatus::Failed,
            run: None,
            measured: None,
            quarantined: None,
        }
    }

    #[test]
    fn unknown_algorithm_error_lists_valid_names() {
        let mut req = request(CampaignKind::Single {
            config: KFusionConfig::fast_test(),
        });
        req.algorithm = "orb-slam".into();
        let err = Campaign::build(1, req).unwrap_err();
        assert!(err.contains("orb-slam"), "{err}");
        for algo in AlgoId::ALL {
            assert!(err.contains(algo.id()), "{err} missing {}", algo.id());
        }
    }

    #[test]
    fn unknown_device_and_suite_are_rejected() {
        let mut req = request(CampaignKind::Single {
            config: KFusionConfig::fast_test(),
        });
        req.device = Some("cray-1".into());
        let err = Campaign::build(1, req).unwrap_err();
        assert!(
            err.contains("cray-1") && err.contains("ODROID XU3"),
            "{err}"
        );

        let req = request(CampaignKind::Suite {
            suite: "weird".into(),
            frames: 3,
            configs: vec![KFusionConfig::fast_test()],
        });
        let err = Campaign::build(1, req).unwrap_err();
        assert!(err.contains("weird") && err.contains("standard"), "{err}");
    }

    #[test]
    fn invalid_config_and_empty_work_are_rejected() {
        let mut bad = KFusionConfig::fast_test();
        bad.compute_size_ratio = 3;
        let err = Campaign::build(1, request(CampaignKind::Single { config: bad })).unwrap_err();
        assert!(err.contains("invalid configuration"), "{err}");

        let err = Campaign::build(1, request(CampaignKind::Sweep { configs: vec![] })).unwrap_err();
        assert!(err.contains("no configurations"), "{err}");

        let mut req = request(CampaignKind::Single {
            config: KFusionConfig::fast_test(),
        });
        req.dataset.frame_count = 0;
        let err = Campaign::build(1, req).unwrap_err();
        assert!(err.contains("empty dataset"), "{err}");
    }

    #[test]
    fn suite_expands_sequence_major() {
        let configs = vec![KFusionConfig::fast_test(), {
            let mut c = KFusionConfig::fast_test();
            c.volume_resolution = 32;
            c
        }];
        let campaign = Campaign::build(
            1,
            request(CampaignKind::Suite {
                suite: "standard".into(),
                frames: 2,
                configs: configs.clone(),
            }),
        )
        .unwrap();
        let Work::Units { datasets, units } = &campaign.work else {
            panic!("suite expands to units");
        };
        assert_eq!(campaign.total, datasets.len() * configs.len());
        assert_eq!(units.len(), campaign.total);
        // sequence-major: every config of sequence 0 before sequence 1
        assert_eq!(units[0].dataset, 0);
        assert_eq!(units[1].dataset, 0);
        assert_eq!(units[configs.len()].dataset, 1);
        assert!(units[0]
            .sequence
            .as_deref()
            .is_some_and(|s| s.contains("living_room")));
    }

    #[test]
    fn random_sweep_is_seed_deterministic() {
        let build =
            |seed| Campaign::build(1, request(CampaignKind::RandomSweep { n: 4, seed })).unwrap();
        let (a, b, c) = (build(7), build(7), build(8));
        let configs = |campaign: &Campaign| {
            let Work::Units { units, .. } = &campaign.work else {
                panic!("random sweep expands to units");
            };
            units.iter().map(|u| u.config.clone()).collect::<Vec<_>>()
        };
        assert_eq!(configs(&a), configs(&b));
        assert_ne!(configs(&a), configs(&c));
        assert_eq!(a.total, 4);
    }

    #[test]
    fn append_cancel_and_page_follow_the_lifecycle() {
        let campaign =
            Campaign::build(1, request(CampaignKind::RandomSweep { n: 3, seed: 1 })).unwrap();
        assert_eq!(campaign.phase(), CampaignPhase::Queued);
        assert!(campaign.wants_work());
        assert!(campaign.try_lease());
        assert!(!campaign.wants_work()); // leased
        campaign.append(vec![record(0)]);
        assert_eq!(campaign.phase(), CampaignPhase::Running);
        let (records, done) = campaign.page_from(0, false);
        assert_eq!(records.len(), 1);
        assert!(!done);
        let status = campaign.cancel();
        assert_eq!(status.phase, CampaignPhase::Cancelled);
        assert_eq!(status.completed, 1);
        // a late quantum after cancellation is dropped
        campaign.append(vec![record(1)]);
        let (records, done) = campaign.page_from(0, true);
        assert_eq!(records.len(), 1);
        assert!(done);
        campaign.release();
        assert!(!campaign.wants_work()); // terminal
    }

    #[test]
    fn completion_is_reached_exactly_at_total() {
        let campaign =
            Campaign::build(1, request(CampaignKind::RandomSweep { n: 2, seed: 1 })).unwrap();
        campaign.append(vec![record(0), record(1)]);
        assert_eq!(campaign.phase(), CampaignPhase::Complete);
        let (records, done) = campaign.page_from(1, true);
        assert_eq!(records.len(), 1);
        assert!(done);
    }

    #[test]
    fn specs_round_trip_in_id_order() {
        let dir = std::env::temp_dir().join(format!("slam-serve-spec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for id in [3u64, 1, 2] {
            let spec = CampaignSpec {
                id,
                request: request(CampaignKind::RandomSweep { n: 2, seed: id }),
                done: id == 2,
            };
            assert!(save_spec(&dir, &spec));
        }
        // a corrupt file is skipped, not fatal
        std::fs::write(spec_dir(&dir).join("junk.json"), "{ nope").unwrap();
        let specs = load_specs(&dir);
        assert_eq!(
            specs.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(specs[1].done);
        assert!(!specs[0].done);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
