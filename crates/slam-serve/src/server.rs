//! The HTTP front end: a hand-rolled HTTP/1.1 server over std
//! [`TcpListener`], one short-lived thread per connection, JSON bodies,
//! chunked streaming for live outcome feeds. Zero dependencies beyond
//! the workspace.
//!
//! The protocol is deliberately tiny — every route is a
//! [`protocol`](crate::protocol) type:
//!
//! ```text
//! POST   /campaigns                  submit  → 202 Submitted | 400 ErrorBody
//! GET    /campaigns/<id>             status  → 200 CampaignStatus | 404
//! GET    /campaigns/<id>/outcomes    page    → 200 OutcomesPage   (?from=K&wait=1)
//! GET    /campaigns/<id>/stream      stream  → 200 chunked NDJSON (?from=K)
//! DELETE /campaigns/<id>             cancel  → 200 CampaignStatus | 404
//! GET    /stats                      stats   → 200 ServerStatsReport
//! GET    /healthz                    health  → 200 {"ok":true}
//! ```
//!
//! Malformed requests get typed 400s with the validation message
//! verbatim (so an unknown algorithm 400 lists every registered
//! algorithm id). Connections are `Connection: close` — one request
//! per connection keeps the parser trivial and is plenty for a
//! campaign-grained API where each evaluation costs far more than a
//! TCP handshake.

use crate::protocol::{ErrorBody, OutcomesPage};
use crate::scheduler::CampaignHub;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Request header cap: a campaign API has no business sending more.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Request body cap (a sweep of a few thousand configs fits easily).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A running server: the bound address plus the shutdown handle.
pub struct ServeHandle {
    addr: SocketAddr,
    hub: CampaignHub,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The address the server actually bound (use `port 0` to let the
    /// OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub this server fronts.
    pub fn hub(&self) -> &CampaignHub {
        &self.hub
    }

    /// Stops accepting connections and joins the accept loop. The hub
    /// keeps running — callers that want full shutdown also call
    /// [`CampaignHub::shutdown`].
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // self-connect to unblock the blocking accept
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the hub's campaign
/// API until [`ServeHandle::stop`].
///
/// # Errors
///
/// Any bind error, verbatim.
pub fn serve(hub: CampaignHub, addr: &str) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_hub = hub.clone();
    let accept_thread = std::thread::Builder::new()
        .name("slam-serve-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    continue;
                };
                let hub = accept_hub.clone();
                let _ = std::thread::Builder::new()
                    .name("slam-serve-conn".to_string())
                    .spawn(move || handle_connection(&hub, stream));
            }
        })?;
    Ok(ServeHandle {
        addr: local,
        hub,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// One parsed request head plus its body.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

fn query_usize(query: &[(String, String)], key: &str) -> usize {
    query
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

fn query_flag(query: &[(String, String)], key: &str) -> bool {
    query
        .iter()
        .any(|(k, v)| k == key && v != "0" && v != "false")
}

/// Reads one HTTP/1.1 request off the stream. `None` on any protocol
/// violation (the caller answers 400) or a dead socket.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        _ => return None,
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Some(Request {
        method,
        path: path.to_string(),
        query: parse_query(raw_query),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn write_json<T: Serialize>(stream: &mut TcpStream, status: u16, body: &T) {
    let text = serde_json::to_string(body).unwrap_or_default();
    let response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        status_reason(status),
        text.len(),
        text
    );
    let _ = stream.write_all(response.as_bytes());
}

fn write_error(stream: &mut TcpStream, status: u16, error: impl Into<String>) {
    write_json(
        stream,
        status,
        &ErrorBody {
            error: error.into(),
        },
    );
}

fn handle_connection(hub: &CampaignHub, mut stream: TcpStream) {
    let Some(request) = read_request(&mut stream) else {
        write_error(&mut stream, 400, "malformed HTTP request");
        return;
    };
    hub.tracer().counter("serve.request", 1);
    let _span = hub.tracer().section_span("serve.request");
    route(hub, &mut stream, &request);
}

fn route(hub: &CampaignHub, stream: &mut TcpStream, request: &Request) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => write_json(stream, 200, &serde_json::json!({"ok": true})),
        ("GET", ["stats"]) => write_json(stream, 200, &hub.stats_report()),
        ("POST", ["campaigns"]) => match serde_json::from_slice(&request.body) {
            Ok(campaign_request) => match hub.submit(campaign_request) {
                Ok(submitted) => write_json(stream, 202, &submitted),
                Err(error) => write_error(stream, 400, error),
            },
            Err(e) => write_error(stream, 400, format!("invalid campaign request: {e}")),
        },
        (method, ["campaigns", id, rest @ ..]) => {
            let Ok(id) = id.parse::<u64>() else {
                write_error(stream, 404, format!("no campaign {id:?}"));
                return;
            };
            let Some(campaign) = hub.campaign(id) else {
                write_error(stream, 404, format!("no campaign {id}"));
                return;
            };
            match (method, rest) {
                ("GET", []) => write_json(stream, 200, &campaign.status()),
                ("DELETE", []) => match hub.cancel(id) {
                    Some(status) => write_json(stream, 200, &status),
                    None => write_error(stream, 404, format!("no campaign {id}")),
                },
                ("GET", ["outcomes"]) => {
                    let from = query_usize(&request.query, "from");
                    let wait = query_flag(&request.query, "wait");
                    let (records, done) = campaign.page_from(from, wait);
                    write_json(
                        stream,
                        200,
                        &OutcomesPage {
                            from: from.min(campaign.completed()),
                            records,
                            done,
                        },
                    );
                }
                ("GET", ["stream"]) => {
                    stream_outcomes(stream, &campaign, query_usize(&request.query, "from"));
                }
                _ => write_error(stream, 405, format!("{method} not supported here")),
            }
        }
        (method, _) => write_error(
            stream,
            404,
            format!("no route for {method} {}", request.path),
        ),
    }
}

/// Streams outcome records as they land: a chunked response with one
/// JSON [`OutcomeRecord`](crate::protocol::OutcomeRecord) per line,
/// ending once the campaign is terminal (or the client hangs up).
fn stream_outcomes(stream: &mut TcpStream, campaign: &crate::campaign::Campaign, from: usize) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut cursor = from;
    loop {
        let (records, done) = campaign.page_from(cursor, true);
        for record in &records {
            let Ok(line) = serde_json::to_string(record) else {
                continue;
            };
            let chunk = format!("{:x}\r\n{}\n\r\n", line.len() + 1, line);
            if stream.write_all(chunk.as_bytes()).is_err() {
                return; // client hung up
            }
        }
        cursor += records.len();
        if done {
            break;
        }
    }
    let _ = stream.write_all(b"0\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_handles_the_grammar() {
        let q = parse_query("from=7&wait=1&flag");
        assert_eq!(query_usize(&q, "from"), 7);
        assert!(query_flag(&q, "wait"));
        assert!(query_flag(&q, "flag"));
        assert!(!query_flag(&q, "absent"));
        assert_eq!(query_usize(&q, "absent"), 0);
        let q = parse_query("wait=0");
        assert!(!query_flag(&q, "wait"));
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
