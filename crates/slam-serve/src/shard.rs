//! The sharded engine core: N [`EvalEngine`]s per algorithm with
//! fingerprint routing and cross-shard cache lookup.
//!
//! Each evaluation request has a stable home shard —
//! [`run_fingerprint`](slambench::engine::run_fingerprint) modulo the
//! shard count — so repeated requests for one configuration always land
//! on the engine already holding its cache entry, and concurrent
//! campaigns spread naturally over shards. Before any run, every other
//! shard is probed ([`EvalEngine::is_cached`]): a configuration warmed
//! by a different campaign on a different shard is served from that
//! shard's memory instead of re-executing, counted in
//! [`ShardedEngine::cross_shard_hits`].
//!
//! All shards share one on-disk cache directory. This is safe by
//! construction: entries are content-addressed (file name = key hash)
//! and written via write-then-rename, so concurrent writers either
//! agree byte-for-byte or the last rename wins with identical content —
//! and it is what makes a killed server's warm state survive into the
//! next process.
//!
//! # Determinism
//!
//! Routing is a pure function of the request (the fingerprint
//! normalises the `threads` knob away), shard batches are evaluated in
//! ascending shard order, and each [`EvalEngine`] batch is itself
//! bit-identical to serial evaluation — so a sharded batch returns
//! bit-identical outcomes to one engine evaluating the same configs
//! serially, at any shard count.

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_scene::dataset::SyntheticDataset;
use slam_trace::Tracer;
use slambench::engine::{run_fingerprint, EngineStats, EvalEngine, EvalError, RunOutcome};
use slambench::fault::FaultPolicy;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// N engine shards per registered algorithm, with fingerprint routing
/// and cross-shard cache lookup. See the [module docs](self).
pub struct ShardedEngine {
    shards: usize,
    engines: BTreeMap<AlgoId, Vec<EvalEngine>>,
    tracer: Tracer,
    cross_shard_hits: AtomicU64,
}

impl ShardedEngine {
    /// Builds `shards` engines (minimum 1) for every registered
    /// algorithm, all persisting to `disk_dir` and running under
    /// `policy`. The tracer records cache traffic and cross-shard hits.
    pub fn new(
        shards: usize,
        disk_dir: &Path,
        policy: FaultPolicy,
        tracer: Tracer,
    ) -> ShardedEngine {
        let shards = shards.max(1);
        let mut engines = BTreeMap::new();
        for algo in AlgoId::ALL {
            let row: Vec<EvalEngine> = (0..shards)
                .map(|_| {
                    EvalEngine::with_disk_cache(disk_dir)
                        .with_algorithm(algo)
                        .with_policy(policy)
                        .with_tracer(tracer.clone())
                })
                .collect();
            engines.insert(algo, row);
        }
        ShardedEngine {
            shards,
            engines,
            tracer,
            cross_shard_hits: AtomicU64::new(0),
        }
    }

    /// Number of shards per algorithm.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The home shard of one request: `run_fingerprint % shards`,
    /// stable across processes and thread knobs.
    pub fn home_shard(
        &self,
        algorithm: AlgoId,
        dataset: &SyntheticDataset,
        config: &KFusionConfig,
    ) -> usize {
        (run_fingerprint(algorithm, dataset, config) % self.shards as u64) as usize
    }

    /// Direct access to one shard's engine — the warm-up and inspection
    /// surface used by the scheduler (checkpointed explores run on a
    /// single pinned shard), the integration tests, and `bench_serve`.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shard_count()`.
    pub fn engine(&self, algorithm: AlgoId, shard: usize) -> &EvalEngine {
        let row = self.row(algorithm);
        // xtask-allow: panic-path — reason: shard bounds are a caller contract, documented above
        &row[shard]
    }

    fn row(&self, algorithm: AlgoId) -> &[EvalEngine] {
        // every AlgoId::ALL entry is populated in new(); BTreeMap get
        // can only miss if AlgoId grew a variant without ALL, which the
        // algo unit tests pin
        self.engines
            .get(&algorithm)
            .map_or(&[], |row| row.as_slice())
    }

    /// Routes each request to a shard: home when the home shard can
    /// serve it (or nobody can), otherwise the first other shard whose
    /// cache is already warm (a cross-shard hit).
    fn route(
        &self,
        algorithm: AlgoId,
        dataset: &SyntheticDataset,
        config: &KFusionConfig,
    ) -> usize {
        let home = self.home_shard(algorithm, dataset, config);
        let row = self.row(algorithm);
        let Some(home_engine) = row.get(home) else {
            return home;
        };
        // the home probe also consults the shared disk cache (and
        // promotes), so reaching the cross-shard scan means the entry
        // can only exist in another shard's memory
        if home_engine.is_cached(dataset, config) {
            return home;
        }
        for (idx, engine) in row.iter().enumerate() {
            if idx != home && engine.is_cached(dataset, config) {
                self.cross_shard_hits.fetch_add(1, Ordering::Relaxed);
                self.tracer.counter("serve.cross_shard_hit", 1);
                return idx;
            }
        }
        home
    }

    /// Evaluates a batch through the shards: route each request
    /// (cross-shard lookup first), evaluate the per-shard groups in
    /// ascending shard order, and scatter the outcomes back to request
    /// order. Bit-identical to one engine evaluating the batch.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] for the first invalid
    /// configuration, [`EvalError::EmptyDataset`] when the dataset has
    /// no frames — checked up front, before any routing or execution.
    pub fn evaluate_outcomes(
        &self,
        algorithm: AlgoId,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Result<Vec<RunOutcome>, EvalError> {
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        if dataset.is_empty() {
            return Err(EvalError::EmptyDataset);
        }
        for config in configs {
            config.validate()?;
        }
        // group request indices by target shard, preserving request
        // order within each group
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, config) in configs.iter().enumerate() {
            let shard = self.route(algorithm, dataset, config);
            groups.entry(shard).or_default().push(i);
        }
        let row = self.row(algorithm);
        let mut slots: Vec<Option<RunOutcome>> = vec![None; configs.len()];
        for (shard, indices) in &groups {
            let Some(engine) = row.get(*shard) else {
                continue;
            };
            let group: Vec<KFusionConfig> = indices.iter().map(|&i| configs[i].clone()).collect();
            let outcomes = engine.try_evaluate_batch_outcomes(dataset, &group)?;
            for (&i, outcome) in indices.iter().zip(outcomes) {
                slots[i] = Some(outcome);
            }
        }
        Ok(slots
            .into_iter()
            // xtask-allow: panic-path — reason: every request index was grouped under exactly one shard above
            .map(|slot| slot.expect("every slot routed to a shard"))
            .collect())
    }

    /// Per-shard cache/fault counters, shard-index order, each merged
    /// across the shard's per-algorithm engines.
    pub fn per_shard_stats(&self) -> Vec<EngineStats> {
        (0..self.shards)
            .map(|shard| {
                let per_algo: Vec<EngineStats> = self
                    .engines
                    .values()
                    .filter_map(|row| row.get(shard))
                    .map(|engine| engine.stats())
                    .collect();
                EngineStats::merge(&per_algo)
            })
            .collect()
    }

    /// Element-wise sum of [`ShardedEngine::per_shard_stats`].
    pub fn merged_stats(&self) -> EngineStats {
        EngineStats::merge(&self.per_shard_stats())
    }

    /// Requests served by a non-home shard's warm memory cache.
    pub fn cross_shard_hits(&self) -> u64 {
        self.cross_shard_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_scene::dataset::DatasetConfig;

    fn tiny_dataset(frames: usize) -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = frames;
        SyntheticDataset::generate(&dc)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("slam-serve-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn configs() -> Vec<KFusionConfig> {
        let base = KFusionConfig::fast_test();
        let mut coarse = base.clone();
        coarse.volume_resolution = 32;
        let mut icp = base.clone();
        icp.icp_threshold = base.icp_threshold * 2.0;
        vec![base, coarse, icp]
    }

    #[test]
    fn routing_is_stable_and_ignores_threads() {
        let dir = tmp_dir("route");
        let sharded = ShardedEngine::new(4, &dir, FaultPolicy::default(), Tracer::disabled());
        let dataset = tiny_dataset(3);
        for config in configs() {
            let home = sharded.home_shard(AlgoId::KinectFusion, &dataset, &config);
            assert!(home < 4);
            let mut threaded = config.clone();
            threaded.threads = 5;
            assert_eq!(
                home,
                sharded.home_shard(AlgoId::KinectFusion, &dataset, &threaded)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_batch_matches_single_engine() {
        let dir = tmp_dir("match");
        let sharded = ShardedEngine::new(3, &dir, FaultPolicy::default(), Tracer::disabled());
        let dataset = tiny_dataset(3);
        let cfgs = configs();
        let outcomes = sharded
            .evaluate_outcomes(AlgoId::KinectFusion, &dataset, &cfgs)
            .unwrap();
        let reference = EvalEngine::new();
        for (outcome, config) in outcomes.iter().zip(&cfgs) {
            let run = outcome.run().expect("deterministic configs complete");
            let want = reference.evaluate(&dataset, config);
            assert_eq!(run.ate.errors, want.ate.errors);
            assert_eq!(run.lost_frames, want.lost_frames);
            assert_eq!(run.config, want.config);
        }
        // every request was a miss exactly once across the shards
        let merged = sharded.merged_stats();
        assert_eq!(merged.misses, cfgs.len());
        assert_eq!(merged.hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_non_home_shard_is_a_cross_shard_hit() {
        let dir = tmp_dir("cross");
        let sharded = ShardedEngine::new(2, &dir, FaultPolicy::default(), Tracer::disabled());
        let dataset = tiny_dataset(3);
        let config = KFusionConfig::fast_test();
        let home = sharded.home_shard(AlgoId::KinectFusion, &dataset, &config);
        let other = 1 - home;
        // warm the non-home shard directly, then delete the disk entry
        // so only that shard's *memory* can serve the request
        let _ = sharded
            .engine(AlgoId::KinectFusion, other)
            .evaluate(&dataset, &config);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(sharded.cross_shard_hits(), 0);
        let outcomes = sharded
            .evaluate_outcomes(AlgoId::KinectFusion, &dataset, &[config.clone()])
            .unwrap();
        assert!(outcomes[0].is_done());
        assert_eq!(sharded.cross_shard_hits(), 1);
        // served from the warm shard's cache: no second execution
        assert_eq!(sharded.merged_stats().misses, 1);
        assert_eq!(sharded.merged_stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_shard_stats_cover_all_algorithms() {
        let dir = tmp_dir("stats");
        let sharded = ShardedEngine::new(2, &dir, FaultPolicy::default(), Tracer::disabled());
        let dataset = tiny_dataset(3);
        let config = KFusionConfig::fast_test();
        for algo in AlgoId::ALL {
            let _ = sharded
                .evaluate_outcomes(algo, &dataset, &[config.clone()])
                .unwrap();
        }
        let per_shard = sharded.per_shard_stats();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(EngineStats::merge(&per_shard).misses, AlgoId::ALL.len());
        assert_eq!(sharded.merged_stats().requests(), AlgoId::ALL.len(),);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_config_rejected_before_any_execution() {
        let dir = tmp_dir("invalid");
        let sharded = ShardedEngine::new(2, &dir, FaultPolicy::default(), Tracer::disabled());
        let dataset = tiny_dataset(3);
        let mut bad = KFusionConfig::fast_test();
        bad.compute_size_ratio = 3;
        let err = sharded
            .evaluate_outcomes(AlgoId::KinectFusion, &dataset, &[bad])
            .unwrap_err();
        assert!(matches!(err, EvalError::InvalidConfig(_)));
        assert_eq!(sharded.merged_stats().requests(), 0);
        assert_eq!(
            sharded
                .evaluate_outcomes(
                    AlgoId::KinectFusion,
                    &tiny_dataset(0),
                    &[KFusionConfig::fast_test()]
                )
                .unwrap_err(),
            EvalError::EmptyDataset
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
