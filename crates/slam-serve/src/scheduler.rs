//! The [`CampaignHub`]: a fair scheduler multiplexing concurrent
//! campaigns over the shared worker pool.
//!
//! A small pool of executor threads repeatedly picks the next runnable
//! campaign and serves it one *quantum* (a few evaluations), so a long
//! batch sweep cannot starve an interactive request that arrives
//! mid-flight. Selection order: interactive before batch, then
//! least-recently-served, then lowest id — a priority-class round-robin.
//! While `k` campaigns run concurrently, each quantum caps its kernel
//! threads at `available / k`
//! ([`with_thread_budget`](slam_kfusion::exec::with_thread_budget)), so
//! outer × inner parallelism never oversubscribes the machine and every
//! campaign keeps making progress.
//!
//! Determinism is unaffected by any of this: quanta evaluate through
//! the sharded engine (bit-identical at any thread budget), and each
//! campaign's outcome log is appended by at most one executor at a time
//! (a lease), in unit order.
//!
//! Persistence: campaign specs are saved on submit and marked done on
//! any terminal phase; exploration campaigns additionally run through
//! the sweep checkpoint layer (one checkpoint per campaign under
//! `<state_dir>/checkpoints/`). [`CampaignHub::start`] reloads every
//! non-done spec, so killing the process mid-campaign loses nothing but
//! the current quantum — and even that re-evaluates from the shared
//! disk cache bit-identically.

use crate::campaign::{load_specs, save_spec, Campaign, CampaignSpec, Work};
use crate::protocol::{OutcomeRecord, OutcomeStatus, Priority, ServerStatsReport, Submitted};
use crate::shard::ShardedEngine;
use slam_kfusion::exec;
use slam_trace::Tracer;
use slambench::checkpoint::{load_checkpoint, CheckpointOptions, RecordedEval};
use slambench::explore::explore_checkpointed;
use slambench::fault::FaultPolicy;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Hub construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Engine shards per algorithm (minimum 1).
    pub shards: usize,
    /// Executor threads serving campaign quanta. Zero is legitimate:
    /// the hub accepts and persists campaigns but never runs them —
    /// the tests use it to stage a kill before any work starts.
    pub executors: usize,
    /// Evaluations per scheduling quantum (minimum 1): the fairness
    /// granularity and the cancel/kill resolution.
    pub quantum: usize,
    /// Server state directory: `cache/` (shared disk cache),
    /// `campaigns/` (specs), `checkpoints/` (exploration sweeps).
    pub state_dir: PathBuf,
    /// Fault-tolerance policy applied to every engine shard.
    pub policy: FaultPolicy,
    /// Tracer for `serve.*` counters and spans (disabled by default).
    pub tracer: Tracer,
}

impl ServeOptions {
    /// Defaults: 2 shards, 2 executors, quantum 4, default fault
    /// policy, disabled tracer.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            shards: 2,
            executors: 2,
            quantum: 4,
            state_dir: state_dir.into(),
            policy: FaultPolicy::default(),
            tracer: Tracer::disabled(),
        }
    }
}

struct Registry {
    campaigns: BTreeMap<u64, Arc<Campaign>>,
    next_id: u64,
}

struct HubShared {
    engine: ShardedEngine,
    tracer: Tracer,
    quantum: usize,
    shards: usize,
    state_dir: PathBuf,
    reg: Mutex<Registry>,
    work_ready: Condvar,
    stop: AtomicBool,
    tick: AtomicU64,
    active: AtomicUsize,
}

impl HubShared {
    fn lock_reg(&self) -> MutexGuard<'_, Registry> {
        // registry mutations are single map inserts; a poisoned lock
        // cannot expose a torn registry
        self.reg.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Picks the next campaign an executor should serve, without leasing
/// it: interactive before batch, then least recently served, then
/// lowest id.
fn select_candidate(registry: &Registry) -> Option<Arc<Campaign>> {
    let mut best: Option<&Arc<Campaign>> = None;
    for campaign in registry.campaigns.values() {
        if !campaign.wants_work() {
            continue;
        }
        let beats = match best {
            None => true,
            Some(current) => {
                let rank = |c: &Campaign| {
                    (
                        match c.priority {
                            Priority::Interactive => 0u8,
                            Priority::Batch => 1u8,
                        },
                        c.last_served(),
                        c.id,
                    )
                };
                rank(campaign) < rank(current)
            }
        };
        if beats {
            best = Some(campaign);
        }
    }
    best.cloned()
}

/// The campaign scheduler and engine front-door. Cheap to share:
/// clones hand out the same hub.
#[derive(Clone)]
pub struct CampaignHub {
    shared: Arc<HubShared>,
    executors: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl CampaignHub {
    /// Builds the sharded engine, reloads every non-done campaign spec
    /// under the state dir, and spawns the executor pool.
    pub fn start(options: ServeOptions) -> CampaignHub {
        let shards = options.shards.max(1);
        let engine = ShardedEngine::new(
            shards,
            &options.state_dir.join("cache"),
            options.policy,
            options.tracer.clone(),
        );
        let mut campaigns = BTreeMap::new();
        let mut next_id = 1u64;
        for spec in load_specs(&options.state_dir) {
            next_id = next_id.max(spec.id + 1); // done specs still burn their ids
            if spec.done {
                continue;
            }
            if let Ok(campaign) = Campaign::build(spec.id, spec.request) {
                campaigns.insert(spec.id, Arc::new(campaign));
            }
        }
        let shared = Arc::new(HubShared {
            engine,
            tracer: options.tracer,
            quantum: options.quantum.max(1),
            shards,
            state_dir: options.state_dir,
            reg: Mutex::new(Registry { campaigns, next_id }),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            tick: AtomicU64::new(0),
            active: AtomicUsize::new(0),
        });
        let executors = (0..options.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slam-serve-exec-{i}"))
                    .spawn(move || run_executor(&shared))
            })
            .flatten()
            .collect();
        CampaignHub {
            shared,
            executors: Arc::new(Mutex::new(executors)),
        }
    }

    /// Validates and accepts a campaign. The spec is persisted before
    /// this returns, so an accepted campaign survives a kill even if it
    /// never got scheduled.
    ///
    /// # Errors
    ///
    /// The [`Campaign::build`] validation message, verbatim — the HTTP
    /// layer ships it as the 400 body.
    pub fn submit(&self, request: crate::protocol::CampaignRequest) -> Result<Submitted, String> {
        let id = {
            let mut registry = self.shared.lock_reg();
            let id = registry.next_id;
            registry.next_id += 1; // burnt even if validation fails
            id
        };
        let campaign = Campaign::build(id, request)?;
        let total = campaign.total;
        save_spec(
            &self.shared.state_dir,
            &CampaignSpec {
                id,
                request: campaign.request.clone(),
                done: false,
            },
        );
        self.shared
            .lock_reg()
            .campaigns
            .insert(id, Arc::new(campaign));
        self.shared.work_ready.notify_all();
        Ok(Submitted { id, total })
    }

    /// The campaign with this id, if the hub knows it.
    pub fn campaign(&self, id: u64) -> Option<Arc<Campaign>> {
        self.shared.lock_reg().campaigns.get(&id).cloned()
    }

    /// Every campaign, id order.
    pub fn campaigns(&self) -> Vec<Arc<Campaign>> {
        self.shared.lock_reg().campaigns.values().cloned().collect()
    }

    /// Cancels a campaign: terminal immediately, in-flight quantum
    /// discarded on arrival. Returns the post-cancel status, or `None`
    /// for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<crate::protocol::CampaignStatus> {
        let campaign = self.campaign(id)?;
        let status = campaign.cancel();
        persist_phase(&self.shared, &campaign);
        Some(status)
    }

    /// The sharded engine core (warm-up and inspection surface for the
    /// integration tests and `bench_serve`).
    pub fn engine(&self) -> &ShardedEngine {
        &self.shared.engine
    }

    /// The tracer `serve.*` counters and spans record into.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The shard-aware stats report behind `GET /stats`.
    pub fn stats_report(&self) -> ServerStatsReport {
        ServerStatsReport {
            shards: self.shared.engine.shard_count(),
            per_shard: self.shared.engine.per_shard_stats(),
            merged: self.shared.engine.merged_stats(),
            cross_shard_hits: self.shared.engine.cross_shard_hits(),
            campaigns: self.campaigns().iter().map(|c| c.status()).collect(),
        }
    }

    /// Stops the executor pool without waiting for campaigns to finish
    /// — kill semantics: non-terminal campaigns keep `done: false` on
    /// disk and are resumed by the next [`CampaignHub::start`] on the
    /// same state dir. (Only the executor currently mid-quantum is
    /// joined; its last quantum re-evaluates from the disk cache on
    /// resume either way.)
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = {
            let mut executors = self
                .executors
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            executors.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Saves the campaign's spec with `done` reflecting whether its phase
/// is terminal.
fn persist_phase(shared: &HubShared, campaign: &Campaign) {
    save_spec(
        &shared.state_dir,
        &CampaignSpec {
            id: campaign.id,
            request: campaign.request.clone(),
            done: campaign.phase().is_terminal(),
        },
    );
}

fn run_executor(shared: &HubShared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let candidate = {
            let registry = shared.lock_reg();
            select_candidate(&registry)
        };
        let Some(campaign) = candidate.filter(|c| c.try_lease()) else {
            // idle (or lost the lease race): wait for a submit, a
            // release, or shutdown
            let registry = shared.lock_reg();
            let _wait = shared.tracer.section_span("serve.queue_wait");
            let _ = shared
                .work_ready
                .wait_timeout(registry, Duration::from_millis(50));
            continue;
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        run_quantum(shared, &campaign);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        campaign.release();
        shared.work_ready.notify_all();
    }
}

/// Serves one quantum of one campaign: a few evaluations under a fair
/// share of the kernel thread budget.
fn run_quantum(shared: &HubShared, campaign: &Campaign) {
    let tick = shared.tick.fetch_add(1, Ordering::SeqCst) + 1;
    campaign.touch(tick);
    shared.tracer.counter("serve.quantum", 1);
    let concurrent = shared.active.load(Ordering::SeqCst).max(1);
    let budget = (exec::available_threads() / concurrent).max(1);
    let start = campaign.completed();
    if start >= campaign.total {
        return;
    }
    match &campaign.work {
        Work::Units { datasets, units } => {
            let end = (start + shared.quantum).min(units.len());
            let chunk = &units[start..end];
            let mut records = Vec::with_capacity(chunk.len());
            // evaluate consecutive same-dataset slices as one engine
            // batch (suite campaigns interleave datasets)
            let mut i = 0;
            while i < chunk.len() {
                let ds = chunk[i].dataset;
                let mut j = i + 1;
                while j < chunk.len() && chunk[j].dataset == ds {
                    j += 1;
                }
                let configs: Vec<_> = chunk[i..j].iter().map(|u| u.config.clone()).collect();
                let outcome = exec::with_thread_budget(budget, || {
                    shared
                        .engine
                        .evaluate_outcomes(campaign.algorithm, &datasets[ds], &configs)
                });
                match outcome {
                    Ok(outcomes) => {
                        for (k, outcome) in outcomes.into_iter().enumerate() {
                            records.push(OutcomeRecord::from_outcome(
                                start + i + k,
                                chunk[i + k].sequence.clone(),
                                outcome,
                            ));
                        }
                    }
                    Err(e) => {
                        campaign.mark_failed(e.to_string());
                        persist_phase(shared, campaign);
                        return;
                    }
                }
                i = j;
                if campaign.is_cancelled() {
                    break;
                }
            }
            campaign.append(records);
        }
        Work::Explore { dataset, options } => {
            let ckpt = CheckpointOptions {
                dir: shared.state_dir.join("checkpoints"),
                label: format!("campaign-{}", campaign.id),
                every: 1,
                resume: true,
                stop_after: Some(start + shared.quantum),
            };
            // an exploration is a sequential learner loop: pin it to
            // one shard (by campaign id, so concurrent explorations
            // spread out) and let the checkpoint layer own its state
            let shard = (campaign.id % shared.shards as u64) as usize;
            let engine = shared.engine.engine(campaign.algorithm, shard);
            let _ = exec::with_thread_budget(budget, || {
                explore_checkpointed(engine, dataset, &campaign.device, options, &ckpt)
            });
            // stream whatever the checkpoint now holds beyond `start`
            let mut records = Vec::new();
            if let Some(checkpoint) = load_checkpoint(&ckpt.path()) {
                for (index, eval) in checkpoint.completed.iter().enumerate().skip(start) {
                    records.push(match eval {
                        RecordedEval::Measured(m) => OutcomeRecord {
                            index,
                            sequence: None,
                            status: OutcomeStatus::Measured,
                            run: None,
                            measured: Some(m.clone()),
                            quarantined: None,
                        },
                        RecordedEval::Failed { quarantined, .. } => OutcomeRecord {
                            index,
                            sequence: None,
                            status: OutcomeStatus::Failed,
                            run: None,
                            measured: None,
                            quarantined: Some(quarantined.clone()),
                        },
                    });
                }
            }
            campaign.append(records);
        }
    }
    if campaign.phase().is_terminal() {
        persist_phase(shared, campaign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CampaignKind, CampaignPhase, CampaignRequest};
    use slam_kfusion::KFusionConfig;
    use slam_scene::dataset::DatasetConfig;

    fn tmp_state(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slam-serve-hub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(kind: CampaignKind) -> CampaignRequest {
        let mut dataset = DatasetConfig::tiny_test();
        dataset.frame_count = 3;
        CampaignRequest {
            algorithm: "kfusion".into(),
            dataset,
            kind,
            priority: Priority::Batch,
            device: None,
        }
    }

    fn wait_terminal(campaign: &Campaign) -> CampaignPhase {
        for _ in 0..600 {
            let (_, done) = campaign.page_from(campaign.completed(), true);
            if done {
                break;
            }
        }
        campaign.phase()
    }

    #[test]
    fn sweep_campaign_runs_to_completion() {
        let dir = tmp_state("sweep");
        let hub = CampaignHub::start(ServeOptions::new(&dir));
        let mut coarse = KFusionConfig::fast_test();
        coarse.volume_resolution = 32;
        let submitted = hub
            .submit(request(CampaignKind::Sweep {
                configs: vec![KFusionConfig::fast_test(), coarse],
            }))
            .unwrap();
        assert_eq!(submitted.total, 2);
        let campaign = hub.campaign(submitted.id).unwrap();
        assert_eq!(wait_terminal(&campaign), CampaignPhase::Complete);
        let (records, done) = campaign.page_from(0, false);
        assert!(done);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].index, 0);
        assert_eq!(records[1].index, 1);
        assert!(records.iter().all(|r| r.run.is_some()));
        let stats = hub.stats_report();
        assert_eq!(stats.per_shard.len(), 2);
        assert_eq!(stats.merged.misses, 2);
        hub.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explore_campaign_streams_measured_points() {
        let dir = tmp_state("explore");
        let hub = CampaignHub::start(ServeOptions::new(&dir));
        let submitted = hub
            .submit(request(CampaignKind::Explore {
                budget: 6,
                seed: 11,
            }))
            .unwrap();
        let campaign = hub.campaign(submitted.id).unwrap();
        assert_eq!(wait_terminal(&campaign), CampaignPhase::Complete);
        let (records, done) = campaign.page_from(0, false);
        assert!(done);
        assert_eq!(records.len(), 6);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.index, i);
            assert!(matches!(
                record.status,
                OutcomeStatus::Measured | OutcomeStatus::Failed
            ));
        }
        hub.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_submission_is_rejected_and_burns_no_campaign() {
        let dir = tmp_state("reject");
        let hub = CampaignHub::start(ServeOptions::new(&dir));
        let mut req = request(CampaignKind::Single {
            config: KFusionConfig::fast_test(),
        });
        req.algorithm = "nonesuch".into();
        let err = hub.submit(req).unwrap_err();
        assert!(err.contains("nonesuch") && err.contains("kfusion"), "{err}");
        assert!(hub.campaigns().is_empty());
        hub.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn selection_prefers_interactive_then_least_recently_served() {
        let mk = |id, priority| {
            let mut req = request(CampaignKind::RandomSweep { n: 3, seed: id });
            req.priority = priority;
            Arc::new(Campaign::build(id, req).unwrap())
        };
        let batch_old = mk(1, Priority::Batch);
        let batch_new = mk(2, Priority::Batch);
        let interactive = mk(3, Priority::Interactive);
        batch_old.touch(1);
        batch_new.touch(5);
        interactive.touch(9);
        let mut registry = Registry {
            campaigns: BTreeMap::new(),
            next_id: 4,
        };
        for c in [&batch_old, &batch_new, &interactive] {
            registry.campaigns.insert(c.id, Arc::clone(c));
        }
        // interactive wins despite being most recently served
        assert_eq!(select_candidate(&registry).unwrap().id, 3);
        // with interactive leased, the least-recently-served batch wins
        assert!(interactive.try_lease());
        assert_eq!(select_candidate(&registry).unwrap().id, 1);
        // ties broken by id
        batch_old.touch(5);
        assert_eq!(select_candidate(&registry).unwrap().id, 1);
        // nothing runnable → None
        assert!(batch_old.try_lease());
        assert!(batch_new.try_lease());
        assert!(select_candidate(&registry).is_none());
    }

    #[test]
    fn restart_resumes_a_submitted_campaign_with_its_id() {
        let dir = tmp_state("resume");
        let mut options = ServeOptions::new(&dir);
        options.executors = 0; // the kill lands before any executor runs it
        let hub = CampaignHub::start(options);
        let mut coarse = KFusionConfig::fast_test();
        coarse.volume_resolution = 32;
        let submitted = hub
            .submit(request(CampaignKind::Sweep {
                configs: vec![KFusionConfig::fast_test(), coarse],
            }))
            .unwrap();
        hub.shutdown(); // the campaign is still queued at the kill
        let hub2 = CampaignHub::start(ServeOptions::new(&dir));
        let campaign = hub2
            .campaign(submitted.id)
            .expect("non-done campaign resumed under its original id");
        assert_eq!(wait_terminal(&campaign), CampaignPhase::Complete);
        assert_eq!(campaign.completed(), 2);
        // ids are never reused across restarts
        let next = hub2
            .submit(request(CampaignKind::Single {
                config: KFusionConfig::fast_test(),
            }))
            .unwrap();
        assert!(next.id > submitted.id);
        hub2.shutdown();
        // a second restart does not resurrect the completed campaign
        let hub3 = CampaignHub::start(ServeOptions::new(&dir));
        assert!(hub3.campaign(submitted.id).is_none());
        hub3.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_stops_a_campaign_short() {
        let dir = tmp_state("cancel");
        let mut options = ServeOptions::new(&dir);
        options.quantum = 1;
        options.executors = 1;
        let hub = CampaignHub::start(options);
        let configs: Vec<KFusionConfig> = (0..6)
            .map(|i| {
                let mut c = KFusionConfig::fast_test();
                c.volume_resolution = 32 + 16 * i;
                c
            })
            .collect();
        let submitted = hub
            .submit(request(CampaignKind::Sweep { configs }))
            .unwrap();
        let campaign = hub.campaign(submitted.id).unwrap();
        // wait for at least one outcome, then cancel
        let _ = campaign.page_from(0, true);
        let status = hub.cancel(submitted.id).unwrap();
        assert_eq!(status.phase, CampaignPhase::Cancelled);
        let (records, done) = campaign.page_from(0, false);
        assert!(done);
        assert!(records.len() < 6, "cancel should land before completion");
        // the log never grows after the cancel point
        let frozen = records.len();
        hub.shutdown();
        assert_eq!(campaign.completed(), frozen);
        // a cancelled campaign is done on disk: restart ignores it
        let hub2 = CampaignHub::start(ServeOptions::new(&dir));
        assert!(hub2.campaign(submitted.id).is_none());
        hub2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
