//! A minimal blocking HTTP/1.1 client over std [`TcpStream`] — just
//! enough to drive the campaign API from the integration tests,
//! `bench_serve`, and the binary's `--self-check`. One request per
//! connection, mirroring the server's `Connection: close` policy.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One response: the status code and the raw body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON for every route but the stream).
    pub body: String,
}

impl Response {
    /// Deserialises the body.
    ///
    /// # Errors
    ///
    /// The `serde_json` parse error, verbatim.
    pub fn json<T: Deserialize>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_str(&self.body)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(self.addr)?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: slam-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
        })
    }

    /// `GET path` → status + body.
    ///
    /// # Errors
    ///
    /// Connection or protocol errors, verbatim.
    pub fn get(&self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `DELETE path` → status + body.
    ///
    /// # Errors
    ///
    /// Connection or protocol errors, verbatim.
    pub fn delete(&self, path: &str) -> std::io::Result<Response> {
        self.request("DELETE", path, None)
    }

    /// `POST path` with a JSON body → status + body.
    ///
    /// # Errors
    ///
    /// Connection or protocol errors, verbatim; serialisation failures
    /// surface as `InvalidData`.
    pub fn post<T: Serialize>(&self, path: &str, body: &T) -> std::io::Result<Response> {
        let text = serde_json::to_string(body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.request("POST", path, Some(&text))
    }

    /// `GET` a chunked NDJSON stream, blocking until the server closes
    /// it: returns the streamed lines in arrival order.
    ///
    /// # Errors
    ///
    /// Connection or protocol errors, verbatim.
    pub fn stream(&self, path: &str) -> std::io::Result<Vec<String>> {
        let mut stream = TcpStream::connect(self.addr)?;
        let head = format!("GET {path} HTTP/1.1\r\nHost: slam-serve\r\nConnection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let (_, payload) = split_head(&raw).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
        })?;
        let decoded = decode_chunked(payload).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed chunking")
        })?;
        Ok(decoded
            .split('\n')
            .filter(|line| !line.is_empty())
            .map(str::to_string)
            .collect())
    }
}

fn split_head(raw: &[u8]) -> Option<(&str, &[u8])> {
    let pos = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..pos]).ok()?;
    Some((head, &raw[pos + 4..]))
}

fn parse_response(raw: &[u8]) -> Option<Response> {
    let (head, body) = split_head(raw)?;
    let status_line = head.split("\r\n").next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    Some(Response {
        status,
        body: String::from_utf8_lossy(body).into_owned(),
    })
}

/// Decodes a chunked transfer-encoded payload into its content.
fn decode_chunked(mut payload: &[u8]) -> Option<String> {
    let mut out = Vec::new();
    loop {
        let line_end = payload.windows(2).position(|w| w == b"\r\n")?;
        let size_line = std::str::from_utf8(&payload[..line_end]).ok()?;
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        payload = &payload[line_end + 2..];
        if size == 0 {
            break;
        }
        if payload.len() < size + 2 {
            return None;
        }
        out.extend_from_slice(&payload[..size]);
        payload = &payload[size + 2..]; // skip the chunk's trailing CRLF
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_extracts_status_and_body() {
        let raw = b"HTTP/1.1 202 Accepted\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.body, "{}");
        assert!(parse_response(b"garbage").is_none());
    }

    #[test]
    fn chunked_decoding_reassembles_lines() {
        let payload = b"6\r\n{\"a\"}\n\r\n6\r\n{\"b\"}\n\r\n0\r\n\r\n";
        let decoded = decode_chunked(payload).unwrap();
        assert_eq!(decoded, "{\"a\"}\n{\"b\"}\n");
        // truncated chunk is a protocol error, not a panic
        assert!(decode_chunked(b"6\r\n{\"a\"").is_none());
    }
}
