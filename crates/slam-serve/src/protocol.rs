//! The wire types of the campaign API.
//!
//! Everything on the wire is JSON over HTTP/1.1. The grammar (also in
//! `DESIGN.md` §14):
//!
//! ```text
//! POST   /campaigns                 CampaignRequest  → 202 Submitted | 400 ErrorBody
//! GET    /campaigns/<id>                             → 200 CampaignStatus
//! GET    /campaigns/<id>/outcomes?from=K&wait=1      → 200 OutcomesPage
//! GET    /campaigns/<id>/stream?from=K               → 200 chunked, one OutcomeRecord per line
//! DELETE /campaigns/<id>                             → 200 CampaignStatus (cancelled)
//! GET    /stats                                      → 200 ServerStatsReport
//! GET    /healthz                                    → 200 {"ok":true}
//! ```
//!
//! Validation happens at this boundary: an unknown algorithm name is
//! rejected with the [`AlgoId`](slam_kfusion::AlgoId) parse error
//! verbatim (which lists every valid name), an invalid configuration
//! with the [`ConfigError`](slam_kfusion::config::ConfigError) message,
//! an empty dataset with the engine's `EmptyDataset` message.

use serde::{Deserialize, Serialize};
use slam_kfusion::KFusionConfig;
use slam_scene::dataset::DatasetConfig;
use slambench::engine::{EngineStats, RunOutcome};
use slambench::explore::MeasuredConfig;
use slambench::fault::QuarantinedConfig;
use slambench::run::PipelineRun;

/// Scheduling class of a campaign. Interactive campaigns are always
/// served before batch campaigns; within a class the scheduler is
/// least-recently-served round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Served ahead of every batch campaign (a human is waiting).
    Interactive,
    /// The default class: long sweeps and explorations.
    #[default]
    Batch,
}

/// What a campaign evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignKind {
    /// One configuration on the request's dataset.
    Single {
        /// The configuration to evaluate.
        config: KFusionConfig,
    },
    /// An explicit list of configurations on the request's dataset, in
    /// order.
    Sweep {
        /// The configurations to evaluate.
        configs: Vec<KFusionConfig>,
    },
    /// Every configuration on every sequence of a named built-in suite
    /// (`"standard"` or `"adversarial"`), sequence-major. The request's
    /// dataset supplies the camera; `frames` the sequence length.
    Suite {
        /// Built-in suite name: `"standard"` or `"adversarial"`.
        suite: String,
        /// Frames per sequence.
        frames: usize,
        /// The configurations to grade on each sequence.
        configs: Vec<KFusionConfig>,
    },
    /// `n` seeded random samples of the algorithm's parameter space on
    /// the request's dataset.
    RandomSweep {
        /// Number of samples.
        n: usize,
        /// RNG seed: the same seed always proposes the same configs.
        seed: u64,
    },
    /// A HyperMapper-style active-learning exploration of the
    /// algorithm's parameter space (budget evaluations), streaming each
    /// measured point. Resumes from its sweep checkpoint across server
    /// restarts.
    Explore {
        /// Total evaluation budget.
        budget: usize,
        /// Learner RNG seed.
        seed: u64,
    },
}

impl CampaignKind {
    /// Stable kind name for status reports.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignKind::Single { .. } => "single",
            CampaignKind::Sweep { .. } => "sweep",
            CampaignKind::Suite { .. } => "suite",
            CampaignKind::RandomSweep { .. } => "random_sweep",
            CampaignKind::Explore { .. } => "explore",
        }
    }
}

/// A campaign submission: `POST /campaigns`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// Stable algorithm id (`"kfusion"`, `"point-odometry"`, …).
    pub algorithm: String,
    /// The dataset recipe evaluated against (suite campaigns use only
    /// its camera).
    pub dataset: DatasetConfig,
    /// What to evaluate.
    pub kind: CampaignKind,
    /// Scheduling class (default batch).
    #[serde(default)]
    pub priority: Priority,
    /// Device model name for explore objectives (default `"ODROID
    /// XU3"`); looked up case-insensitively in the `slam_power`
    /// catalogue.
    #[serde(default)]
    pub device: Option<String>,
}

/// How one evaluation slot ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeStatus {
    /// The run completed within budget.
    Done,
    /// The per-run deadline fired; `run` holds the completed prefix.
    TimedOut,
    /// Every attempt panicked; `quarantined` says why.
    Failed,
    /// An exploration point: `measured` holds the objectives.
    Measured,
}

/// One streamed per-run outcome. `index` is the campaign-wide
/// evaluation index (dense, starting at 0), which is also the stream
/// cursor for `?from=`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomeRecord {
    /// Campaign-wide evaluation index.
    pub index: usize,
    /// Sequence name, for suite campaigns.
    #[serde(default)]
    pub sequence: Option<String>,
    /// How the slot ended.
    pub status: OutcomeStatus,
    /// The full run, for `done` / `timed_out` slots.
    #[serde(default)]
    pub run: Option<PipelineRun>,
    /// The measured objectives, for exploration points.
    #[serde(default)]
    pub measured: Option<MeasuredConfig>,
    /// The quarantine record, for `failed` slots.
    #[serde(default)]
    pub quarantined: Option<QuarantinedConfig>,
}

impl OutcomeRecord {
    /// Wraps an engine [`RunOutcome`] as the record at `index`.
    pub fn from_outcome(index: usize, sequence: Option<String>, outcome: RunOutcome) -> Self {
        let (status, run, quarantined) = match outcome {
            RunOutcome::Done(run) => (OutcomeStatus::Done, Some(run), None),
            RunOutcome::TimedOut(run) => (OutcomeStatus::TimedOut, Some(run), None),
            RunOutcome::Failed(q) => (OutcomeStatus::Failed, None, Some(q)),
        };
        OutcomeRecord {
            index,
            sequence,
            status,
            run,
            measured: None,
            quarantined,
        }
    }
}

/// Campaign lifecycle state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignPhase {
    /// Accepted, no quantum served yet.
    Queued,
    /// At least one quantum served.
    Running,
    /// Every evaluation finished.
    Complete,
    /// Cancelled by `DELETE /campaigns/<id>`; outcomes already streamed
    /// stay readable.
    Cancelled,
    /// The campaign aborted with an engine error.
    Failed {
        /// The error message.
        error: String,
    },
}

impl CampaignPhase {
    /// Whether the campaign will never produce further outcomes.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignPhase::Complete | CampaignPhase::Cancelled | CampaignPhase::Failed { .. }
        )
    }
}

/// `GET /campaigns/<id>` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: u64,
    /// Stable algorithm id.
    pub algorithm: String,
    /// Campaign kind name (`"sweep"`, `"explore"`, …).
    pub kind: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Lifecycle state.
    pub phase: CampaignPhase,
    /// Total evaluations the campaign will produce.
    pub total: usize,
    /// Outcomes produced so far.
    pub completed: usize,
}

/// `POST /campaigns` success response (202).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submitted {
    /// The new campaign's id.
    pub id: u64,
    /// Total evaluations the campaign will produce.
    pub total: usize,
}

/// Any error response body (4xx / 5xx).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable cause; parse errors and validation messages
    /// surface verbatim.
    pub error: String,
}

/// `GET /campaigns/<id>/outcomes` response: the records at
/// `[from, from + records.len())` plus whether the campaign is
/// terminal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomesPage {
    /// Index of the first record in `records`.
    pub from: usize,
    /// The records (possibly empty).
    pub records: Vec<OutcomeRecord>,
    /// Whether the campaign is terminal: no further records will ever
    /// arrive past `from + records.len()`.
    pub done: bool,
}

/// `GET /stats` response: shard-aware engine aggregation plus every
/// campaign's status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsReport {
    /// Number of engine shards.
    pub shards: usize,
    /// Per-shard cache/fault counters, shard-index order (merged across
    /// algorithms within a shard).
    pub per_shard: Vec<EngineStats>,
    /// Element-wise sum of `per_shard`
    /// ([`EngineStats::merge`](slambench::engine::EngineStats::merge)).
    pub merged: EngineStats,
    /// Requests served by a non-home shard's warm cache.
    pub cross_shard_hits: u64,
    /// Every campaign the server knows, id order.
    pub campaigns: Vec<CampaignStatus>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            (
                CampaignKind::Single {
                    config: KFusionConfig::fast_test(),
                },
                "single",
            ),
            (CampaignKind::Sweep { configs: vec![] }, "sweep"),
            (
                CampaignKind::Suite {
                    suite: "standard".into(),
                    frames: 3,
                    configs: vec![],
                },
                "suite",
            ),
            (CampaignKind::RandomSweep { n: 4, seed: 7 }, "random_sweep"),
            (CampaignKind::Explore { budget: 9, seed: 7 }, "explore"),
        ];
        for (kind, name) in kinds {
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn request_round_trips_and_defaults_apply() {
        let req = CampaignRequest {
            algorithm: "kfusion".into(),
            dataset: DatasetConfig::tiny_test(),
            kind: CampaignKind::RandomSweep { n: 3, seed: 42 },
            priority: Priority::Interactive,
            device: Some("ODROID XU3".into()),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: CampaignRequest = serde_json::from_str(&json).unwrap();
        // re-encoding is the cheapest deep-equality check: the request
        // holds foreign structs that do not implement `PartialEq`
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // priority and device are optional on the wire
        let minimal = format!(
            "{{\"algorithm\":\"kfusion\",\"dataset\":{},\"kind\":{{\"Single\":{{\"config\":{}}}}}}}",
            serde_json::to_string(&DatasetConfig::tiny_test()).unwrap(),
            serde_json::to_string(&KFusionConfig::fast_test()).unwrap(),
        );
        let parsed: CampaignRequest = serde_json::from_str(&minimal).unwrap();
        assert_eq!(parsed.priority, Priority::Batch);
        assert_eq!(parsed.device, None);
    }

    #[test]
    fn terminal_phases_are_terminal() {
        assert!(!CampaignPhase::Queued.is_terminal());
        assert!(!CampaignPhase::Running.is_terminal());
        assert!(CampaignPhase::Complete.is_terminal());
        assert!(CampaignPhase::Cancelled.is_terminal());
        assert!(CampaignPhase::Failed { error: "x".into() }.is_terminal());
    }
}
