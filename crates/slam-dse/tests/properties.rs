//! Property-based tests for the DSE engine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slam_dse::forest::{RandomForest, RandomForestOptions};
use slam_dse::pareto::{dominates, filter_feasible, pareto_front};
use slam_dse::space::{Domain, ParameterSpace};
use slam_dse::tree::{DecisionTree, TreeOptions};
use slam_dse::Evaluation;

fn objectives() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, 3)
}

fn evaluations() -> impl Strategy<Value = Vec<Evaluation>> {
    proptest::collection::vec(objectives(), 1..40).prop_map(|objs| {
        objs.into_iter()
            .map(|o| Evaluation::new(vec![], o))
            .collect()
    })
}

proptest! {
    /// Dominance is a strict partial order: irreflexive and asymmetric.
    #[test]
    fn dominance_partial_order(a in objectives(), b in objectives()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// Nothing on the Pareto front is dominated by anything in the set,
    /// and everything off the front is dominated by (or equal to)
    /// something on it.
    #[test]
    fn pareto_front_correctness(evals in evaluations()) {
        let front = pareto_front(&evals);
        prop_assert!(!front.is_empty());
        for f in &front {
            for e in &evals {
                prop_assert!(!dominates(&e.objectives, &f.objectives));
            }
        }
        for e in &evals {
            let covered = front
                .iter()
                .any(|f| f.objectives == e.objectives || dominates(&f.objectives, &e.objectives));
            prop_assert!(covered, "{:?} neither on nor dominated by the front", e.objectives);
        }
    }

    /// The front of the front is the front (idempotence).
    #[test]
    fn pareto_front_idempotent(evals in evaluations()) {
        let once = pareto_front(&evals);
        let twice = pareto_front(&once);
        prop_assert_eq!(once.len(), twice.len());
    }

    /// Feasibility filtering keeps exactly the satisfying points.
    #[test]
    fn feasibility_filter_exact(evals in evaluations(), limit in 0.0f64..10.0) {
        let feasible = filter_feasible(&evals, 1, limit);
        prop_assert_eq!(
            feasible.len(),
            evals.iter().filter(|e| e.objectives[1] <= limit).count()
        );
        for f in &feasible {
            prop_assert!(f.objectives[1] <= limit);
        }
    }

    /// Tree predictions are always within the training target range
    /// (leaves are means of training subsets).
    #[test]
    fn tree_predictions_within_range(
        data in proptest::collection::vec(((-5.0f64..5.0), (-10.0f64..10.0)), 4..50),
        query in -8.0f64..8.0,
    ) {
        let x: Vec<Vec<f64>> = data.iter().map(|(a, _)| vec![*a]).collect();
        let y: Vec<f64> = data.iter().map(|(_, b)| *b).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit_regression(&x, &y, &TreeOptions::default(), &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = tree.predict(&[query]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// Forest predictions are convex combinations of tree predictions,
    /// hence also within the training range.
    #[test]
    fn forest_predictions_within_range(
        data in proptest::collection::vec(((-5.0f64..5.0), (-10.0f64..10.0)), 4..40),
        query in -8.0f64..8.0,
    ) {
        let x: Vec<Vec<f64>> = data.iter().map(|(a, _)| vec![*a]).collect();
        let y: Vec<f64> = data.iter().map(|(_, b)| *b).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::fast(), &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (mean, std) = forest.predict_with_std(&[query]);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!(std >= 0.0 && std.is_finite());
    }

    /// Snapping is idempotent and always lands inside the domain.
    #[test]
    fn snap_idempotent(v in -1000.0f64..1000.0) {
        let domains = [
            Domain::ordinal(vec![1.0, 2.0, 4.0, 8.0]),
            Domain::real(0.0, 1.0),
            Domain::Integer { min: -3, max: 7 },
            Domain::Flag,
        ];
        for d in &domains {
            let once = d.snap(v);
            prop_assert_eq!(once, d.snap(once));
            let (lo, hi) = d.bounds();
            prop_assert!(once >= lo && once <= hi);
        }
    }

    /// Samples normalise into the unit cube and snap to themselves.
    #[test]
    fn samples_consistent(seed in 0u64..1000) {
        let mut space = ParameterSpace::new();
        space
            .add("a", Domain::ordinal(vec![32.0, 64.0, 128.0]))
            .add("b", Domain::log_real(1e-6, 1e-2))
            .add("c", Domain::Integer { min: 1, max: 9 })
            .add("d", Domain::Flag);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = space.sample(&mut rng);
        prop_assert_eq!(&space.snap(&x), &x, "samples must already be in-domain");
        for u in space.normalize(&x) {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }
}
