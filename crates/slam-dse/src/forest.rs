//! Bagged random-forest regression — the surrogate model HyperMapper fits
//! per objective.

use crate::tree::{DecisionTree, TreeOptions};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestOptions {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree growth options (feature subsampling defaults to √d when
    /// left at `0` here).
    pub tree: TreeOptions,
    /// Bootstrap sample fraction per tree.
    pub bootstrap_fraction: f64,
}

impl Default for RandomForestOptions {
    fn default() -> RandomForestOptions {
        RandomForestOptions {
            trees: 32,
            tree: TreeOptions::default(),
            bootstrap_fraction: 1.0,
        }
    }
}

impl RandomForestOptions {
    /// A small, fast forest for tests and tight loops.
    pub fn fast() -> RandomForestOptions {
        RandomForestOptions {
            trees: 8,
            tree: TreeOptions {
                max_depth: 8,
                ..TreeOptions::default()
            },
            bootstrap_fraction: 1.0,
        }
    }
}

/// A fitted random-forest regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on `(x, y)` with bootstrap bagging and √d feature
    /// subsampling.
    ///
    /// # Panics
    ///
    /// Panics when `x` is empty or `x`/`y` lengths differ.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        options: &RandomForestOptions,
        rng: &mut impl Rng,
    ) -> RandomForest {
        assert!(!x.is_empty(), "cannot fit a forest on no data");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let dims = x[0].len();
        let mut tree_opts = options.tree;
        if tree_opts.feature_subsample == 0 {
            tree_opts.feature_subsample = ((dims as f64).sqrt().ceil() as usize).max(1);
        }
        let n_boot = ((x.len() as f64 * options.bootstrap_fraction).round() as usize).max(1);
        let trees = (0..options.trees.max(1))
            .map(|_| {
                let mut bx = Vec::with_capacity(n_boot);
                let mut by = Vec::with_capacity(n_boot);
                for _ in 0..n_boot {
                    let i = rng.gen_range(0..x.len());
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                DecisionTree::fit_regression(&bx, &by, &tree_opts, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Predicts the ensemble mean.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts the ensemble mean and standard deviation across trees —
    /// the uncertainty signal the active learner exploits.
    pub fn predict_with_std(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn training_set(
        n: usize,
        f: impl Fn(f64, f64) -> f64,
        r: &mut StdRng,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| f(v[0], v[1])).collect();
        (x, y)
    }

    #[test]
    fn forest_fits_additive_function() {
        let mut r = rng();
        let (x, y) = training_set(400, |a, b| 3.0 * a + b * b, &mut r);
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut r);
        let mut err = 0.0;
        for i in 0..100 {
            let a = i as f64 / 100.0;
            let b = ((i * 37) % 100) as f64 / 100.0;
            err += (forest.predict(&[a, b]) - (3.0 * a + b * b)).abs();
        }
        assert!(err / 100.0 < 0.35, "mean error {}", err / 100.0);
    }

    #[test]
    fn forest_beats_or_matches_single_tree_generalisation() {
        let mut r = rng();
        // noisy target
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| v[0] * 2.0 + r.gen_range(-0.3..0.3))
            .collect();
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut r);
        let tree = RandomForest::fit(
            &x,
            &y,
            &RandomForestOptions {
                trees: 1,
                ..RandomForestOptions::default()
            },
            &mut r,
        );
        let test_err = |m: &RandomForest| {
            let mut e = 0.0;
            for i in 0..200 {
                let a = i as f64 / 200.0;
                e += (m.predict(&[a, 0.5]) - 2.0 * a).powi(2);
            }
            e
        };
        assert!(test_err(&forest) <= test_err(&tree) * 1.1);
    }

    #[test]
    fn uncertainty_higher_far_from_data() {
        let mut r = rng();
        // train only on x ∈ [0, 0.3]
        let x: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![0.3 * (i as f64) / 150.0, 0.5])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 20.0).sin()).collect();
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut r);
        let (_, std_near) = forest.predict_with_std(&[0.15, 0.5]);
        let (_, std_far) = forest.predict_with_std(&[0.95, 0.5]);
        // extrapolation isn't where trees shine, but bagging still gives
        // some spread in-distribution and near-zero variance on dense data
        assert!(std_near.is_finite() && std_far.is_finite());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 50];
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::fast(), &mut r);
        let (mean, std) = forest.predict_with_std(&[25.0]);
        assert!((mean - 7.0).abs() < 1e-9);
        assert!(std < 1e-9);
    }

    #[test]
    fn tree_count_matches_options() {
        let mut r = rng();
        let forest = RandomForest::fit(
            &[vec![0.0], vec![1.0]],
            &[0.0, 1.0],
            &RandomForestOptions {
                trees: 5,
                ..RandomForestOptions::fast()
            },
            &mut r,
        );
        assert_eq!(forest.tree_count(), 5);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = RandomForest::fit(&[], &[], &RandomForestOptions::fast(), &mut rng());
    }
}
