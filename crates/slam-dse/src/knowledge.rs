//! Knowledge extraction: distilling evaluated configurations into a
//! human-readable decision tree (the right-hand side of the paper's
//! Figure 2: *"Volume resolution < 96 → … Compute size ratio < 3 → …"*).

use crate::space::ParameterSpace;
use crate::tree::{DecisionTree, Node, TreeOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// A labelled dataset for knowledge extraction: configurations with a
/// class per configuration (e.g. `0` = rejected, `1` = "accurate AND
/// fast AND power-efficient").
#[derive(Debug, Clone)]
pub struct LabelledConfigs {
    /// Encoded configurations (raw domain values, not normalised —
    /// thresholds then print in natural units like `volume_resolution <
    /// 96`).
    pub x: Vec<Vec<f64>>,
    /// Integer class labels as `f64`.
    pub labels: Vec<f64>,
    /// Class names by index (for printing).
    pub class_names: Vec<String>,
}

/// A fitted, printable knowledge tree.
#[derive(Debug, Clone)]
pub struct KnowledgeTree {
    tree: DecisionTree,
    parameter_names: Vec<String>,
    class_names: Vec<String>,
}

impl KnowledgeTree {
    /// Fits a shallow classification tree over the labelled
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty or ragged.
    pub fn fit(space: &ParameterSpace, data: &LabelledConfigs, max_depth: usize) -> KnowledgeTree {
        let options = TreeOptions {
            max_depth,
            min_samples_split: 8,
            min_samples_leaf: 4,
            feature_subsample: 0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tree = DecisionTree::fit_classification(&data.x, &data.labels, &options, &mut rng);
        KnowledgeTree {
            tree,
            parameter_names: space.names().to_vec(),
            class_names: data.class_names.clone(),
        }
    }

    /// Predicts the class of a configuration.
    pub fn classify(&self, x: &[f64]) -> usize {
        self.tree.predict(x).round().max(0.0) as usize
    }

    /// Fraction of the dataset the tree classifies correctly.
    pub fn accuracy(&self, data: &LabelledConfigs) -> f64 {
        if data.x.is_empty() {
            return 0.0;
        }
        let correct = data
            .x
            .iter()
            .zip(&data.labels)
            .filter(|(x, &l)| self.tree.predict(x).round() == l.round())
            .count();
        correct as f64 / data.x.len() as f64
    }

    /// The name of the parameter tested at the root split, if the tree
    /// has one — the paper's figure leads with `volume resolution`.
    pub fn root_parameter(&self) -> Option<&str> {
        match self.tree.root() {
            Node::Split { feature, .. } => self.parameter_names.get(*feature).map(String::as_str),
            Node::Leaf { .. } => None,
        }
    }

    /// All `(parameter, threshold)` pairs tested anywhere in the tree.
    pub fn split_parameters(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        fn walk(node: &Node, names: &[String], out: &mut Vec<(String, f64)>) {
            if let Node::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                out.push((
                    names
                        .get(*feature)
                        .cloned()
                        .unwrap_or_else(|| format!("x{feature}")),
                    *threshold,
                ));
                walk(left, names, out);
                walk(right, names, out);
            }
        }
        walk(self.tree.root(), &self.parameter_names, &mut out);
        out
    }

    /// Renders the tree as indented text rules.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.tree.root(), 0, &mut out);
        out
    }

    /// Renders the tree as a Graphviz DOT digraph — the visual form the
    /// paper's Figure 2 (right) uses.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph knowledge {\n  node [shape=box];\n");
        let mut next_id = 0usize;
        self.dot_node(self.tree.root(), &mut next_id, &mut out);
        out.push_str("}\n");
        out
    }

    fn dot_node(&self, node: &Node, next_id: &mut usize, out: &mut String) -> usize {
        let id = *next_id;
        *next_id += 1;
        match node {
            Node::Leaf { value, samples } => {
                let class = (*value).round().max(0.0) as usize;
                let name = self
                    .class_names
                    .get(class)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "  n{id} [label=\"{name}\\n({samples} configs)\"];");
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = self
                    .parameter_names
                    .get(*feature)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "  n{id} [label=\"{name} < {threshold:.4}?\"];");
                let l = self.dot_node(left, next_id, out);
                let r = self.dot_node(right, next_id, out);
                let _ = writeln!(out, "  n{id} -> n{l} [label=\"yes\"];");
                let _ = writeln!(out, "  n{id} -> n{r} [label=\"no\"];");
            }
        }
        id
    }

    fn render_node(&self, node: &Node, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        match node {
            Node::Leaf { value, samples } => {
                let class = (*value).round().max(0.0) as usize;
                let name = self
                    .class_names
                    .get(class)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "{indent}=> {name}  ({samples} configs)");
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = self
                    .parameter_names
                    .get(*feature)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "{indent}{name} < {threshold:.4}?");
                let _ = writeln!(out, "{indent}YES:");
                self.render_node(left, depth + 1, out);
                let _ = writeln!(out, "{indent}NO:");
                self.render_node(right, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    fn space() -> ParameterSpace {
        let mut s = ParameterSpace::new();
        s.add(
            "volume_resolution",
            Domain::ordinal(vec![32.0, 64.0, 128.0, 192.0, 256.0]),
        )
        .add(
            "compute_size_ratio",
            Domain::ordinal(vec![1.0, 2.0, 4.0, 8.0]),
        );
        s
    }

    /// Synthetic labels mimicking the paper's structure: fast configs have
    /// small volumes and large ratios; accurate ones the opposite.
    fn dataset() -> LabelledConfigs {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for &vr in &[32.0, 64.0, 128.0, 192.0, 256.0] {
            for &csr in &[1.0, 2.0, 4.0, 8.0] {
                for rep in 0..3 {
                    let _ = rep;
                    x.push(vec![vr, csr]);
                    // "good" = big enough volume for accuracy, small enough
                    // work for speed
                    let good = vr >= 96.0 && vr <= 192.0 && csr >= 2.0;
                    labels.push(if good { 1.0 } else { 0.0 });
                }
            }
        }
        LabelledConfigs {
            x,
            labels,
            class_names: vec!["rejected".into(), "best".into()],
        }
    }

    #[test]
    fn tree_learns_the_rule() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        assert!(
            tree.accuracy(&data) > 0.95,
            "accuracy {}",
            tree.accuracy(&data)
        );
    }

    #[test]
    fn root_splits_on_a_real_parameter() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        // xtask-allow: panic-path — reason: a split is the fixture's premise, not the behaviour under test
        let root = tree.root_parameter().expect("tree must split");
        assert!(
            root == "volume_resolution" || root == "compute_size_ratio",
            "unexpected root {root}"
        );
    }

    #[test]
    fn split_parameters_use_natural_units() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        let splits = tree.split_parameters();
        assert!(!splits.is_empty());
        // volume thresholds must be in voxels (tens to hundreds), not [0,1]
        let vr_split = splits.iter().find(|(n, _)| n == "volume_resolution");
        if let Some((_, thr)) = vr_split {
            assert!(*thr > 16.0 && *thr < 256.0, "threshold {thr}");
        }
    }

    #[test]
    fn render_is_readable() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        let text = tree.render();
        assert!(text.contains('?'));
        assert!(text.contains("=>"));
        assert!(text.contains("best") || text.contains("rejected"));
        assert!(text.contains("YES:"));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph knowledge {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("yes"));
        assert!(dot.contains("no"));
        // every node id referenced by an edge is declared
        for line in dot.lines() {
            if let Some((from, _)) = line.trim().split_once(" -> ") {
                assert!(
                    dot.contains(&format!("{from} [label=")),
                    "undeclared {from}"
                );
            }
        }
    }

    #[test]
    fn classify_matches_labels_on_clean_data() {
        let data = dataset();
        let tree = KnowledgeTree::fit(&space(), &data, 4);
        assert_eq!(tree.classify(&[128.0, 2.0]), 1);
        assert_eq!(tree.classify(&[32.0, 1.0]), 0);
    }
}
