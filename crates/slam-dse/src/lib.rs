//! A HyperMapper-style multi-objective design-space exploration engine.
//!
//! Reproduces the methodology of the ISPASS'18 paper's Figure 2 (which
//! summarises Bodin et al., PACT'16 and Nardi et al., iWAPT'17):
//!
//! 1. define the algorithmic [`space::ParameterSpace`],
//! 2. evaluate an initial batch of [`sampler`] draws on the black-box
//!    benchmark (runtime / accuracy / power),
//! 3. fit one [`forest::RandomForest`] surrogate per objective,
//! 4. actively propose new configurations from the surrogate's predicted
//!    Pareto front ([`active::ActiveLearner`]),
//! 5. report the non-dominated set ([`pareto`]) and distil the evaluated
//!    data into human-readable rules ([`knowledge`], Figure 2 right).
//!
//! Everything — CART trees, bagged forests, samplers — is implemented in
//! this crate; there is no external ML dependency.
//!
//! # Examples
//!
//! ```
//! use slam_dse::space::{Domain, ParameterSpace};
//! use slam_dse::active::{ActiveLearner, ActiveLearnerOptions};
//!
//! // minimise (x-0.3)² and (x-0.7)² over one parameter: the Pareto set
//! // is the interval [0.3, 0.7]
//! let mut space = ParameterSpace::new();
//! space.add("x", Domain::real(0.0, 1.0));
//! let mut learner = ActiveLearner::new(space, 2, ActiveLearnerOptions::fast());
//! let result = learner.run(7, |x| {
//!     let v = x[0];
//!     vec![(v - 0.3_f64).powi(2), (v - 0.7_f64).powi(2)]
//! });
//! assert!(!result.pareto_front.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod forest;
pub mod importance;
pub mod knowledge;
pub mod pareto;
pub mod sampler;
pub mod space;
pub mod tree;

pub use active::{ActiveLearner, ActiveLearnerOptions, BatchEval, ExplorationResult};
pub use forest::{RandomForest, RandomForestOptions};
pub use pareto::pareto_front;
pub use space::{Domain, ParameterSpace};

/// One evaluated configuration: the encoded parameter vector and its
/// measured objective values (all objectives are minimised).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Encoded parameter values, one per space dimension.
    pub x: Vec<f64>,
    /// Measured objective values (smaller is better).
    pub objectives: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation record.
    pub fn new(x: Vec<f64>, objectives: Vec<f64>) -> Evaluation {
        Evaluation { x, objectives }
    }
}
