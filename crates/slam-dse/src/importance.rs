//! Parameter importance via permutation: how much does the surrogate's
//! prediction error grow when one parameter's column is shuffled?
//!
//! This is the analysis the HyperMapper line of work uses to explain
//! which algorithmic knobs drive each objective (and what the ISPASS'18
//! poster's knowledge tree summarises visually).

use crate::forest::RandomForest;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature (parameter) index.
    pub feature: usize,
    /// Mean-squared-error increase when the feature is permuted,
    /// normalised by the baseline MSE (`0` = irrelevant).
    pub relative_increase: f64,
}

/// Computes permutation importance of every feature of `forest` on the
/// dataset `(x, y)`, averaged over `repeats` shuffles. Results are sorted
/// most-important first.
///
/// # Panics
///
/// Panics when `x` is empty or `x`/`y` lengths differ.
pub fn permutation_importance(
    forest: &RandomForest,
    x: &[Vec<f64>],
    y: &[f64],
    repeats: usize,
    rng: &mut impl Rng,
) -> Vec<FeatureImportance> {
    assert!(!x.is_empty(), "importance needs data");
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let dims = x[0].len();
    let mse = |data: &[Vec<f64>]| -> f64 {
        data.iter()
            .zip(y)
            .map(|(row, &target)| (forest.predict(row) - target).powi(2))
            .sum::<f64>()
            / data.len() as f64
    };
    let baseline = mse(x).max(1e-12);
    let mut out: Vec<FeatureImportance> = (0..dims)
        .map(|feature| {
            let mut increase = 0.0;
            for _ in 0..repeats.max(1) {
                // shuffle this feature's column
                let mut column: Vec<f64> = x.iter().map(|r| r[feature]).collect();
                column.shuffle(rng);
                let permuted: Vec<Vec<f64>> = x
                    .iter()
                    .zip(&column)
                    .map(|(row, &v)| {
                        let mut r = row.clone();
                        r[feature] = v;
                        r
                    })
                    .collect();
                increase += (mse(&permuted) - baseline) / baseline;
            }
            FeatureImportance {
                feature,
                relative_increase: (increase / repeats.max(1) as f64).max(0.0),
            }
        })
        .collect();
    out.sort_by(|a, b| b.relative_increase.total_cmp(&a.relative_increase));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn relevant_feature_dominates() {
        let mut r = rng();
        // y depends strongly on feature 2, weakly on feature 0, not on 1
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| r.gen_range(0.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|v| 10.0 * v[2] + v[0]).collect();
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::default(), &mut r);
        let imp = permutation_importance(&forest, &x, &y, 3, &mut r);
        assert_eq!(imp[0].feature, 2, "importances: {imp:?}");
        // the irrelevant feature ranks last
        assert_eq!(imp[2].feature, 1, "importances: {imp:?}");
        assert!(imp[0].relative_increase > 5.0 * imp[2].relative_increase.max(1e-6));
    }

    #[test]
    fn constant_target_yields_no_importance() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y = vec![3.0; 50];
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::fast(), &mut r);
        let imp = permutation_importance(&forest, &x, &y, 2, &mut r);
        for fi in imp {
            assert!(fi.relative_increase < 1e-6);
        }
    }

    #[test]
    fn importances_cover_all_features() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..4).map(|_| r.gen_range(0.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] + v[1]).collect();
        let forest = RandomForest::fit(&x, &y, &RandomForestOptions::fast(), &mut r);
        let imp = permutation_importance(&forest, &x, &y, 2, &mut r);
        let mut features: Vec<usize> = imp.iter().map(|f| f.feature).collect();
        features.sort();
        assert_eq!(features, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_data_panics() {
        let mut r = rng();
        let forest = RandomForest::fit(&[vec![0.0]], &[1.0], &RandomForestOptions::fast(), &mut r);
        let _ = permutation_importance(&forest, &[], &[], 1, &mut r);
    }
}
