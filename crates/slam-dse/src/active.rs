//! The HyperMapper active-learning loop.
//!
//! Figure 2 of the paper: random-sample the configuration space, fit one
//! random-forest predictor per objective, then iteratively evaluate the
//! configurations the surrogate predicts to be near the Pareto front
//! (exploiting) or to be uncertain (exploring).

use crate::forest::{RandomForest, RandomForestOptions};
use crate::pareto::{dominates, pareto_front};
use crate::space::ParameterSpace;
use crate::Evaluation;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Options of the active learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveLearnerOptions {
    /// Evaluations in the initial random design.
    pub initial_samples: usize,
    /// Active-learning iterations after the initial design.
    pub iterations: usize,
    /// Configurations evaluated per iteration.
    pub batch_size: usize,
    /// Surrogate candidates scored per iteration (predictions are cheap;
    /// this is typically 10–100× the evaluation budget).
    pub candidates_per_iteration: usize,
    /// Fraction of each batch drawn from uncertain rather than
    /// Pareto-optimal candidates (exploration).
    pub exploration_fraction: f64,
    /// RNG seed (the whole exploration is deterministic given the seed and
    /// a deterministic evaluator).
    pub seed: u64,
    /// Random-forest options for the per-objective surrogates.
    pub forest: RandomForestOptions,
}

impl Default for ActiveLearnerOptions {
    fn default() -> ActiveLearnerOptions {
        ActiveLearnerOptions {
            initial_samples: 40,
            iterations: 10,
            batch_size: 8,
            candidates_per_iteration: 2000,
            exploration_fraction: 0.25,
            seed: 2018,
            forest: RandomForestOptions::default(),
        }
    }
}

impl ActiveLearnerOptions {
    /// A tiny budget for unit tests.
    pub fn fast() -> ActiveLearnerOptions {
        ActiveLearnerOptions {
            initial_samples: 10,
            iterations: 3,
            batch_size: 3,
            candidates_per_iteration: 200,
            exploration_fraction: 0.25,
            seed: 7,
            forest: RandomForestOptions::fast(),
        }
    }
}

/// The batch evaluator's verdict in a resumable run: either the batch's
/// objective vectors, or a request to suspend the loop at this batch
/// boundary (checkpointing callers use this to end a session cleanly).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchEval {
    /// One objective vector per proposed configuration.
    Evaluated(Vec<Vec<f64>>),
    /// Stop before evaluating this batch;
    /// [`ActiveLearner::run_batched_resumable`] returns immediately
    /// with `suspended = true`.
    Suspend,
}

/// The outcome of an exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// Every evaluated configuration, in evaluation order (the initial
    /// design first).
    pub evaluations: Vec<Evaluation>,
    /// How many of `evaluations` came from the initial random design.
    pub initial_count: usize,
    /// The non-dominated subset of all evaluations.
    pub pareto_front: Vec<Evaluation>,
}

impl ExplorationResult {
    /// The evaluations added by active learning (after the initial
    /// design).
    pub fn active_evaluations(&self) -> &[Evaluation] {
        &self.evaluations[self.initial_count.min(self.evaluations.len())..]
    }
}

/// A multi-objective active learner over a [`ParameterSpace`].
#[derive(Debug, Clone)]
pub struct ActiveLearner {
    space: ParameterSpace,
    objectives: usize,
    options: ActiveLearnerOptions,
}

impl ActiveLearner {
    /// Creates a learner for `objectives` minimised objectives.
    ///
    /// # Panics
    ///
    /// Panics when the space is empty or `objectives == 0`.
    pub fn new(
        space: ParameterSpace,
        objectives: usize,
        options: ActiveLearnerOptions,
    ) -> ActiveLearner {
        assert!(!space.is_empty(), "parameter space must not be empty");
        assert!(objectives > 0, "need at least one objective");
        ActiveLearner {
            space,
            objectives,
            options,
        }
    }

    /// The parameter space being explored.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Runs the full exploration: `budget` total evaluations are spent
    /// (initial design + active batches; the learner stops early when the
    /// budget is exhausted mid-batch).
    ///
    /// The evaluator maps an encoded configuration to its objective vector
    /// (all minimised). It must return `objectives` values; non-finite
    /// values mark failed runs and are treated as very bad.
    pub fn run(
        &mut self,
        budget: usize,
        mut evaluator: impl FnMut(&[f64]) -> Vec<f64>,
    ) -> ExplorationResult {
        self.run_batched(budget, |batch| batch.iter().map(|x| evaluator(x)).collect())
    }

    /// Like [`ActiveLearner::run`], but handing the evaluator whole
    /// proposal batches instead of single configurations, so independent
    /// evaluations can run concurrently (the `slambench` evaluation
    /// engine schedules them on the shared worker pool).
    ///
    /// Given the same seed, budget and a deterministic evaluator, the
    /// proposals, the evaluation order and the result are identical to
    /// [`ActiveLearner::run`]'s: the RNG is consumed only by the
    /// proposal step, never by evaluation, and a batch overshooting the
    /// budget is truncated to exactly the prefix `run` would have
    /// evaluated before stopping.
    pub fn run_batched(
        &mut self,
        budget: usize,
        mut evaluator: impl FnMut(&[Vec<f64>]) -> Vec<Vec<f64>>,
    ) -> ExplorationResult {
        let (result, suspended) =
            self.run_batched_resumable(budget, |batch| BatchEval::Evaluated(evaluator(batch)));
        debug_assert!(!suspended, "a plain evaluator cannot suspend");
        result
    }

    /// Like [`ActiveLearner::run_batched`], but the evaluator may answer
    /// a proposal batch with [`BatchEval::Suspend`] to stop the loop
    /// cleanly at that batch boundary — the mechanism checkpointing
    /// sweep drivers use to end a session without losing determinism.
    ///
    /// Returns the (possibly partial) result and whether the loop was
    /// suspended. A suspended loop consumed the RNG exactly as far as
    /// the evaluations it performed, so re-running with the same seed
    /// and an evaluator that replays the recorded prefix reproduces the
    /// remaining proposals bit-identically.
    pub fn run_batched_resumable(
        &mut self,
        budget: usize,
        mut evaluator: impl FnMut(&[Vec<f64>]) -> BatchEval,
    ) -> (ExplorationResult, bool) {
        let objectives = self.objectives;
        let mut rng = ChaCha8Rng::seed_from_u64(self.options.seed);
        let mut evaluations: Vec<Evaluation> = Vec::new();
        let mut suspended = false;
        let mut evaluate_batch =
            |batch: Vec<Vec<f64>>, evals: &mut Vec<Evaluation>, suspended: &mut bool| {
                if batch.is_empty() {
                    return;
                }
                let results = match evaluator(&batch) {
                    BatchEval::Evaluated(results) => results,
                    BatchEval::Suspend => {
                        *suspended = true;
                        return;
                    }
                };
                assert_eq!(
                    results.len(),
                    batch.len(),
                    "batch evaluator returned wrong result count"
                );
                for (x, mut obj) in batch.into_iter().zip(results) {
                    assert_eq!(
                        obj.len(),
                        objectives,
                        "evaluator returned wrong objective count"
                    );
                    for o in &mut obj {
                        if !o.is_finite() {
                            // large finite penalty; f64::MAX would overflow the
                            // surrogate's variance computation
                            *o = 1e12;
                        }
                        // clamp extreme finite values for the same reason
                        *o = o.clamp(-1e12, 1e12);
                    }
                    evals.push(Evaluation::new(x, obj));
                }
            };

        // ---- phase 1: initial random design --------------------------------
        let initial = self.options.initial_samples.min(budget);
        let design = crate::sampler::latin_hypercube(&self.space, initial, &mut rng);
        evaluate_batch(design, &mut evaluations, &mut suspended);
        let initial_count = evaluations.len();

        // ---- phase 2: active learning ---------------------------------------
        if !suspended {
            for _iter in 0..self.options.iterations {
                if evaluations.len() >= budget {
                    break;
                }
                let mut batch = self.propose_batch(&evaluations, &mut rng);
                batch.truncate(budget - evaluations.len());
                evaluate_batch(batch, &mut evaluations, &mut suspended);
                if suspended {
                    break;
                }
            }
        }

        let front = pareto_front(&evaluations);
        (
            ExplorationResult {
                evaluations,
                initial_count,
                pareto_front: front,
            },
            suspended,
        )
    }

    /// Proposes the next batch from the surrogate models.
    fn propose_batch(&self, evaluations: &[Evaluation], rng: &mut impl Rng) -> Vec<Vec<f64>> {
        let features: Vec<Vec<f64>> = evaluations
            .iter()
            .map(|e| self.space.normalize(&e.x))
            .collect();
        // one forest per objective
        let forests: Vec<RandomForest> = (0..self.objectives)
            .map(|k| {
                let y: Vec<f64> = evaluations.iter().map(|e| e.objectives[k]).collect();
                RandomForest::fit(&features, &y, &self.options.forest, rng)
            })
            .collect();
        // candidate pool: random samples plus mutations of the current front
        let front = pareto_front(evaluations);
        let mut candidates: Vec<Vec<f64>> =
            Vec::with_capacity(self.options.candidates_per_iteration);
        for i in 0..self.options.candidates_per_iteration {
            if !front.is_empty() && i.is_multiple_of(2) {
                let parent = &front[rng.gen_range(0..front.len())];
                candidates.push(self.space.mutate(&parent.x, rng));
            } else {
                candidates.push(self.space.sample(rng));
            }
        }
        // score candidates with the surrogates
        struct Scored {
            x: Vec<f64>,
            predicted: Vec<f64>,
            uncertainty: f64,
        }
        let scored: Vec<Scored> = candidates
            .into_iter()
            .map(|x| {
                let f = self.space.normalize(&x);
                let mut predicted = Vec::with_capacity(self.objectives);
                let mut uncertainty = 0.0;
                for forest in &forests {
                    let (mean, std) = forest.predict_with_std(&f);
                    predicted.push(mean);
                    uncertainty += std;
                }
                Scored {
                    x,
                    predicted,
                    uncertainty,
                }
            })
            .collect();
        // predicted Pareto candidates (exploitation)
        let mut predicted_front_idx: Vec<usize> = Vec::new();
        for (i, s) in scored.iter().enumerate() {
            let dominated = scored
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && dominates(&o.predicted, &s.predicted));
            if !dominated {
                predicted_front_idx.push(i);
            }
        }
        // uncertainty ranking (exploration)
        let mut by_uncertainty: Vec<usize> = (0..scored.len()).collect();
        by_uncertainty.sort_by(|&a, &b| scored[b].uncertainty.total_cmp(&scored[a].uncertainty));
        let explore_n = ((self.options.batch_size as f64 * self.options.exploration_fraction)
            .round() as usize)
            .min(self.options.batch_size);
        let exploit_n = self.options.batch_size - explore_n;
        let mut batch: Vec<Vec<f64>> = Vec::with_capacity(self.options.batch_size);
        let mut used: Vec<usize> = Vec::new();
        // exploit: spread over the predicted front
        for k in 0..exploit_n {
            if predicted_front_idx.is_empty() {
                break;
            }
            let idx = predicted_front_idx
                [(k * predicted_front_idx.len()) / exploit_n.max(1) % predicted_front_idx.len()];
            if !used.contains(&idx) {
                used.push(idx);
                batch.push(scored[idx].x.clone());
            }
        }
        // explore: most uncertain
        for &idx in &by_uncertainty {
            if batch.len() >= self.options.batch_size {
                break;
            }
            if !used.contains(&idx) {
                used.push(idx);
                batch.push(scored[idx].x.clone());
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    fn one_d_space() -> ParameterSpace {
        let mut s = ParameterSpace::new();
        s.add("x", Domain::real(0.0, 1.0));
        s
    }

    #[test]
    fn finds_single_objective_minimum() {
        // minimise (x - 0.62)²
        let mut learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let result = learner.run(40, |x| vec![(x[0] - 0.62).powi(2)]);
        let best = crate::pareto::best_by_objective(&result.evaluations, 0).unwrap();
        assert!(
            (best.x[0] - 0.62).abs() < 0.08,
            "best x = {} after {} evals",
            best.x[0],
            result.evaluations.len()
        );
    }

    #[test]
    fn respects_budget() {
        let mut learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let mut calls = 0usize;
        let result = learner.run(17, |x| {
            calls += 1;
            vec![x[0]]
        });
        assert!(calls <= 17);
        assert_eq!(result.evaluations.len(), calls);
        assert!(result.initial_count <= 10);
    }

    #[test]
    fn active_beats_random_on_equal_budget() {
        // a deceptive 2-D function with a narrow valley: active learning
        // should find lower values than pure random sampling
        let mut space = ParameterSpace::new();
        space
            .add("a", Domain::real(0.0, 1.0))
            .add("b", Domain::real(0.0, 1.0));
        let f = |x: &[f64]| {
            let v = (x[0] - 0.8).powi(2) * 4.0 + (x[1] - 0.2).powi(2) * 4.0;
            vec![v]
        };
        let budget = 60;
        // average over several seeds: a single random run can get lucky
        let seeds = [42u64, 43, 44, 45, 46];
        let mut active_sum = 0.0;
        let mut random_sum = 0.0;
        for &seed in &seeds {
            let mut opts = ActiveLearnerOptions::fast();
            opts.initial_samples = 15;
            opts.iterations = 20;
            opts.seed = seed;
            let mut learner = ActiveLearner::new(space.clone(), 1, opts);
            let active = learner.run(budget, |x| f(x));
            active_sum += crate::pareto::best_by_objective(&active.evaluations, 0)
                .unwrap()
                .objectives[0];
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            random_sum += crate::sampler::random_samples(&space, budget, &mut rng)
                .iter()
                .map(|x| f(x)[0])
                .fold(f64::INFINITY, f64::min);
        }
        assert!(
            active_sum <= random_sum,
            "mean best: active {active_sum} vs random {random_sum}"
        );
    }

    #[test]
    fn multi_objective_front_is_nondominated() {
        let mut learner = ActiveLearner::new(one_d_space(), 2, ActiveLearnerOptions::fast());
        let result = learner.run(30, |x| vec![(x[0] - 0.2).powi(2), (x[0] - 0.9).powi(2)]);
        assert!(!result.pareto_front.is_empty());
        for a in &result.pareto_front {
            for b in &result.pareto_front {
                assert!(!dominates(&a.objectives, &b.objectives) || a == b);
            }
        }
        // Pareto-optimal x lie between the two optima
        for e in &result.pareto_front {
            assert!((0.1..=1.0).contains(&e.x[0]), "x = {}", e.x[0]);
        }
    }

    #[test]
    fn non_finite_objectives_are_quarantined() {
        let mut learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let result = learner.run(20, |x| {
            if x[0] < 0.5 {
                vec![f64::NAN]
            } else {
                vec![x[0]]
            }
        });
        // the front must consist of finite, valid runs
        for e in &result.pareto_front {
            assert!(e.objectives[0] <= 1.0);
        }
    }

    #[test]
    fn batched_run_matches_serial_run() {
        // run() is the single-evaluation wrapper over run_batched(); pin
        // that they stay equivalent, including mid-batch budget
        // truncation (10 initial + 3 + 3 + 1-of-3 = 17)
        let f = |x: &[f64]| vec![(x[0] - 0.4).powi(2)];
        let mut serial_learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let serial = serial_learner.run(17, |x| f(x));
        let mut batched_learner =
            ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let mut batch_sizes = Vec::new();
        let batched = batched_learner.run_batched(17, |batch| {
            batch_sizes.push(batch.len());
            batch.iter().map(|x| f(x)).collect()
        });
        assert_eq!(serial, batched);
        assert_eq!(batch_sizes, vec![10, 3, 3, 1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
            learner.run(25, |x| vec![(x[0] - 0.3).abs()])
        };
        let a = run();
        let b = run();
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn suspended_run_resumes_bit_identically_via_replay() {
        let f = |x: &[f64]| vec![(x[0] - 0.4).powi(2)];
        // reference: one uninterrupted run
        let mut full_learner = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let full = full_learner.run_batched(16, |batch| batch.iter().map(|x| f(x)).collect());
        // session 1: suspend once 12 evaluations are done
        let mut record: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        let mut first = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let (_, suspended) = first.run_batched_resumable(16, |batch| {
            if record.len() >= 12 {
                return BatchEval::Suspend;
            }
            let results: Vec<Vec<f64>> = batch.iter().map(|x| f(x)).collect();
            for (x, obj) in batch.iter().zip(&results) {
                record.push((x.clone(), obj.clone()));
            }
            BatchEval::Evaluated(results)
        });
        assert!(suspended);
        assert!(record.len() >= 12 && record.len() < 16);
        // session 2: replay the record, evaluate the rest fresh
        let mut replay = std::collections::VecDeque::from(record);
        let mut second = ActiveLearner::new(one_d_space(), 1, ActiveLearnerOptions::fast());
        let (resumed, suspended) = second.run_batched_resumable(16, |batch| {
            let results: Vec<Vec<f64>> = batch
                .iter()
                .map(|x| {
                    if let Some((rx, robj)) = replay.pop_front() {
                        assert_eq!(&rx, x, "replayed proposal must match");
                        robj
                    } else {
                        f(x)
                    }
                })
                .collect();
            BatchEval::Evaluated(results)
        });
        assert!(!suspended);
        assert_eq!(resumed, full);
    }

    #[test]
    #[should_panic(expected = "wrong objective count")]
    fn evaluator_must_match_objectives() {
        let mut learner = ActiveLearner::new(one_d_space(), 2, ActiveLearnerOptions::fast());
        let _ = learner.run(5, |_| vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_space_panics() {
        let _ = ActiveLearner::new(ParameterSpace::new(), 1, ActiveLearnerOptions::fast());
    }
}
