//! Parameter space definition and configuration encoding.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The domain of one tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// An explicit ordered list of allowed values
    /// (e.g. volume resolution ∈ {32, 64, 128, 192, 256}).
    Ordinal(Vec<f64>),
    /// A continuous range `[min, max]`.
    Real {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
        /// Sample log-uniformly (for scale-free parameters like the ICP
        /// convergence threshold).
        log: bool,
    },
    /// An integer range `[min, max]` (inclusive).
    Integer {
        /// Lower bound.
        min: i64,
        /// Upper bound.
        max: i64,
    },
    /// A boolean flag, encoded as `0.0` / `1.0`.
    Flag,
}

impl Domain {
    /// Convenience constructor for a linear real range.
    pub fn real(min: f64, max: f64) -> Domain {
        Domain::Real {
            min,
            max,
            log: false,
        }
    }

    /// Convenience constructor for a log-uniform real range.
    ///
    /// # Panics
    ///
    /// Panics when `min <= 0` (log scale needs positive bounds).
    pub fn log_real(min: f64, max: f64) -> Domain {
        assert!(min > 0.0, "log domain requires positive bounds");
        Domain::Real {
            min,
            max,
            log: true,
        }
    }

    /// Convenience constructor for an ordinal list.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    pub fn ordinal(values: impl Into<Vec<f64>>) -> Domain {
        let values = values.into();
        assert!(
            !values.is_empty(),
            "ordinal domain needs at least one value"
        );
        Domain::Ordinal(values)
    }

    /// Draws a uniform random value from the domain.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match self {
            Domain::Ordinal(values) => values[rng.gen_range(0..values.len())],
            Domain::Real { min, max, log } => {
                if *log {
                    let (lo, hi) = (min.ln(), max.ln());
                    rng.gen_range(lo..=hi).exp()
                } else {
                    rng.gen_range(*min..=*max)
                }
            }
            Domain::Integer { min, max } => rng.gen_range(*min..=*max) as f64,
            Domain::Flag => {
                if rng.gen_bool(0.5) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Maps a unit-interval coordinate (`[0, 1]`) into the domain —
    /// used by the Latin hypercube sampler.
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            Domain::Ordinal(values) => {
                let idx = ((u * values.len() as f64) as usize).min(values.len() - 1);
                values[idx]
            }
            Domain::Real { min, max, log } => {
                if *log {
                    (min.ln() + u * (max.ln() - min.ln())).exp()
                } else {
                    min + u * (max - min)
                }
            }
            Domain::Integer { min, max } => {
                let span = (max - min + 1) as f64;
                (min + ((u * span) as i64).min(max - min)) as f64
            }
            Domain::Flag => {
                if u < 0.5 {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Clamps/snap a raw value back into the domain (nearest ordinal
    /// value, clipped range, rounded integer, thresholded flag).
    pub fn snap(&self, v: f64) -> f64 {
        match self {
            // an empty ordinal domain has nothing to snap to; leave the
            // value untouched rather than panicking
            Domain::Ordinal(values) => values
                .iter()
                .copied()
                .min_by(|a, b| (a - v).abs().total_cmp(&(b - v).abs()))
                .unwrap_or(v),
            Domain::Real { min, max, .. } => v.clamp(*min, *max),
            Domain::Integer { min, max } => (v.round() as i64).clamp(*min, *max) as f64,
            Domain::Flag => {
                if v >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The domain bounds as `(min, max)` for normalisation.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Domain::Ordinal(values) => {
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (min, max)
            }
            Domain::Real { min, max, .. } => (*min, *max),
            Domain::Integer { min, max } => (*min as f64, *max as f64),
            Domain::Flag => (0.0, 1.0),
        }
    }
}

/// A named, ordered collection of parameters; configurations are encoded
/// as `Vec<f64>` in parameter order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParameterSpace {
    names: Vec<String>,
    domains: Vec<Domain>,
}

impl ParameterSpace {
    /// Creates an empty space.
    pub fn new() -> ParameterSpace {
        ParameterSpace::default()
    }

    /// Adds a parameter; returns `&mut self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics on duplicate parameter names.
    pub fn add(&mut self, name: impl Into<String>, domain: Domain) -> &mut ParameterSpace {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name {name:?}"
        );
        self.names.push(name);
        self.domains.push(domain);
        self
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Parameter names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Parameter domains in order.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Draws a uniform random configuration.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        self.domains.iter().map(|d| d.sample(rng)).collect()
    }

    /// Snaps every component of a raw vector into its domain.
    pub fn snap(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.domains.len(), "dimension mismatch");
        x.iter()
            .zip(&self.domains)
            .map(|(v, d)| d.snap(*v))
            .collect()
    }

    /// Normalises a configuration to the unit hypercube (for distance
    /// computations and tree features).
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.domains.len(), "dimension mismatch");
        x.iter()
            .zip(&self.domains)
            .map(|(v, d)| {
                let (lo, hi) = d.bounds();
                if (hi - lo).abs() < 1e-12 {
                    0.0
                } else {
                    (v - lo) / (hi - lo)
                }
            })
            .collect()
    }

    /// A random neighbour of `x`: one randomly chosen coordinate is
    /// re-sampled (the local perturbation used by the active learner).
    pub fn mutate(&self, x: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        assert!(!self.is_empty(), "cannot mutate in an empty space");
        let mut out = x.to_vec();
        let i = rng.gen_range(0..self.domains.len());
        out[i] = self.domains[i].sample(rng);
        out
    }
}

impl fmt::Display for ParameterSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} parameters:", self.len())?;
        for (n, d) in self.names.iter().zip(&self.domains) {
            writeln!(f, "  {n}: {d:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn space() -> ParameterSpace {
        let mut s = ParameterSpace::new();
        s.add("vr", Domain::ordinal(vec![32.0, 64.0, 128.0, 256.0]))
            .add("mu", Domain::real(0.01, 0.2))
            .add("icp", Domain::log_real(1e-6, 1e-4))
            .add("iters", Domain::Integer { min: 1, max: 10 })
            .add("bf", Domain::Flag);
        s
    }

    #[test]
    fn sampling_respects_domains() {
        let s = space();
        let mut r = rng();
        for _ in 0..200 {
            let x = s.sample(&mut r);
            assert_eq!(x.len(), 5);
            assert!([32.0, 64.0, 128.0, 256.0].contains(&x[0]));
            assert!((0.01..=0.2).contains(&x[1]));
            assert!((1e-6..=1e-4).contains(&x[2]));
            assert!((1.0..=10.0).contains(&x[3]));
            assert!(x[3].fract() == 0.0);
            assert!(x[4] == 0.0 || x[4] == 1.0);
        }
    }

    #[test]
    fn log_sampling_spreads_over_decades() {
        let d = Domain::log_real(1e-6, 1e-2);
        let mut r = rng();
        let below_1e4 = (0..2000).filter(|_| d.sample(&mut r) < 1e-4).count();
        // log-uniform: half the draws below the geometric midpoint 1e-4
        assert!((800..1200).contains(&below_1e4), "got {below_1e4}");
    }

    #[test]
    fn snap_to_nearest_ordinal() {
        let d = Domain::ordinal(vec![32.0, 64.0, 128.0]);
        assert_eq!(d.snap(40.0), 32.0);
        assert_eq!(d.snap(100.0), 128.0);
        assert_eq!(d.snap(-5.0), 32.0);
    }

    #[test]
    fn snap_clamps_and_rounds() {
        assert_eq!(Domain::real(0.0, 1.0).snap(2.0), 1.0);
        assert_eq!(Domain::Integer { min: 1, max: 5 }.snap(3.4), 3.0);
        assert_eq!(Domain::Integer { min: 1, max: 5 }.snap(9.0), 5.0);
        assert_eq!(Domain::Flag.snap(0.7), 1.0);
        assert_eq!(Domain::Flag.snap(0.2), 0.0);
    }

    #[test]
    fn from_unit_covers_domain() {
        let d = Domain::ordinal(vec![1.0, 2.0, 3.0]);
        assert_eq!(d.from_unit(0.0), 1.0);
        assert_eq!(d.from_unit(0.99), 3.0);
        assert_eq!(d.from_unit(1.0), 3.0);
        let r = Domain::real(10.0, 20.0);
        assert_eq!(r.from_unit(0.5), 15.0);
        let i = Domain::Integer { min: 0, max: 4 };
        assert_eq!(i.from_unit(0.0), 0.0);
        assert_eq!(i.from_unit(1.0), 4.0);
    }

    #[test]
    fn normalize_is_unit_interval() {
        let s = space();
        let mut r = rng();
        for _ in 0..50 {
            let x = s.sample(&mut r);
            for v in s.normalize(&x) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn mutate_changes_at_most_one_coordinate() {
        let s = space();
        let mut r = rng();
        let x = s.sample(&mut r);
        let y = s.mutate(&x, &mut r);
        let changed = x.iter().zip(&y).filter(|(a, b)| a != b).count();
        assert!(changed <= 1);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut s = ParameterSpace::new();
        s.add("a", Domain::Flag).add("a", Domain::Flag);
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn log_domain_requires_positive() {
        let _ = Domain::log_real(0.0, 1.0);
    }

    #[test]
    fn index_of_and_display() {
        let s = space();
        assert_eq!(s.index_of("mu"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(format!("{s}").contains("mu"));
    }
}
