//! CART decision trees: regression (variance reduction) and
//! classification (Gini impurity), grown greedily with optional feature
//! subsampling — the building block of [`crate::forest::RandomForest`]
//! and the knowledge-extraction step.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeOptions {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child after a split.
    pub min_samples_leaf: usize,
    /// Number of features considered per split; `0` means all.
    pub feature_subsample: usize,
}

impl Default for TreeOptions {
    fn default() -> TreeOptions {
        TreeOptions {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            feature_subsample: 0,
        }
    }
}

/// A binary tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An internal split: `feature < threshold` goes left, else right.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[feature] < threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] >= threshold`.
        right: Box<Node>,
    },
    /// A leaf predicting a constant value (mean for regression, class
    /// index as `f64` for classification).
    Leaf {
        /// Predicted value.
        value: f64,
        /// Training samples that reached this leaf.
        samples: usize,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf { value, .. } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] < *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// The split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    Variance,
    Gini,
}

/// A fitted decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    dimensions: usize,
}

impl DecisionTree {
    /// Fits a regression tree minimising within-leaf variance.
    ///
    /// # Panics
    ///
    /// Panics when `x` is empty, lengths mismatch, or rows have unequal
    /// dimensions.
    pub fn fit_regression(
        x: &[Vec<f64>],
        y: &[f64],
        options: &TreeOptions,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        Self::fit(x, y, options, Criterion::Variance, rng)
    }

    /// Fits a classification tree on integer class labels (passed as
    /// `f64`), minimising Gini impurity. Leaves predict the majority
    /// class.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DecisionTree::fit_regression`].
    pub fn fit_classification(
        x: &[Vec<f64>],
        labels: &[f64],
        options: &TreeOptions,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        Self::fit(x, labels, options, Criterion::Gini, rng)
    }

    fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        options: &TreeOptions,
        criterion: Criterion,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        assert!(!x.is_empty(), "cannot fit a tree on no data");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let dims = x[0].len();
        assert!(
            x.iter().all(|row| row.len() == dims),
            "ragged feature matrix"
        );
        let indices: Vec<usize> = (0..x.len()).collect();
        let root = grow(x, y, &indices, options, criterion, 0, rng);
        DecisionTree {
            root,
            dimensions: dims,
        }
    }

    /// Predicts the value/class for one configuration.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dimensions, "dimension mismatch");
        self.root.predict(x)
    }

    /// The tree's depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.root.leaves()
    }

    /// The root node (for rule extraction / printing).
    pub fn root(&self) -> &Node {
        &self.root
    }
}

fn leaf_value(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64,
        Criterion::Gini => {
            // majority class
            let mut counts: Vec<(i64, usize)> = Vec::new();
            for &i in indices {
                let c = y[i].round() as i64;
                if let Some(e) = counts.iter_mut().find(|(k, _)| *k == c) {
                    e.1 += 1;
                } else {
                    counts.push((c, 1));
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(_, n)| n)
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        }
    }
}

/// Impurity of a subset times its size ("weighted impurity").
fn weighted_impurity(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    let n = indices.len() as f64;
    if indices.is_empty() {
        return 0.0;
    }
    match criterion {
        Criterion::Variance => {
            let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n;
            indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>()
        }
        Criterion::Gini => {
            let mut counts: Vec<(i64, usize)> = Vec::new();
            for &i in indices {
                let c = y[i].round() as i64;
                if let Some(e) = counts.iter_mut().find(|(k, _)| *k == c) {
                    e.1 += 1;
                } else {
                    counts.push((c, 1));
                }
            }
            let gini = 1.0
                - counts
                    .iter()
                    .map(|&(_, k)| (k as f64 / n).powi(2))
                    .sum::<f64>();
            gini * n
        }
    }
}

fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    options: &TreeOptions,
    criterion: Criterion,
    depth: usize,
    rng: &mut impl Rng,
) -> Node {
    let make_leaf = |indices: &[usize]| Node::Leaf {
        value: leaf_value(y, indices, criterion),
        samples: indices.len(),
    };
    if depth >= options.max_depth || indices.len() < options.min_samples_split {
        return make_leaf(indices);
    }
    let parent_impurity = weighted_impurity(y, indices, criterion);
    if parent_impurity < 1e-12 {
        return make_leaf(indices);
    }
    let dims = x[0].len();
    let mut features: Vec<usize> = (0..dims).collect();
    if options.feature_subsample > 0 && options.feature_subsample < dims {
        features.shuffle(rng);
        features.truncate(options.feature_subsample);
    }
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    for &f in &features {
        // candidate thresholds: midpoints between consecutive sorted values
        let mut values: Vec<f64> = indices.iter().map(|&i| x[i][f]).collect();
        values.sort_by(|a, b| a.total_cmp(b));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for w in values.windows(2) {
            let threshold = 0.5 * (w[0] + w[1]);
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][f] < threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.len() < options.min_samples_leaf || right.len() < options.min_samples_leaf {
                continue;
            }
            let imp =
                weighted_impurity(y, &left, criterion) + weighted_impurity(y, &right, criterion);
            if best.map_or(true, |(b, _, _)| imp < b) {
                best = Some((imp, f, threshold));
            }
        }
    }
    match best {
        Some((imp, feature, threshold)) if imp < parent_impurity - 1e-12 => {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][feature] < threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(x, y, &left, options, criterion, depth + 1, rng)),
                right: Box::new(grow(x, y, &right, options, criterion, depth + 1, rng)),
            }
        }
        _ => make_leaf(indices),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn regression_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] < 0.5 { 1.0 } else { 3.0 })
            .collect();
        let t = DecisionTree::fit_regression(&x, &y, &TreeOptions::default(), &mut rng());
        assert!((t.predict(&[0.2]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[0.8]) - 3.0).abs() < 1e-9);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn regression_approximates_smooth_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * 6.0).sin()).collect();
        let t = DecisionTree::fit_regression(&x, &y, &TreeOptions::default(), &mut rng());
        let mut max_err = 0.0f64;
        for i in 0..100 {
            let xv = i as f64 / 100.0;
            max_err = max_err.max((t.predict(&[xv]) - (xv * 6.0).sin()).abs());
        }
        assert!(max_err < 0.25, "max error {max_err}");
    }

    #[test]
    fn regression_uses_relevant_feature() {
        // y depends only on feature 1
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[1] < 0.4 { 0.0 } else { 10.0 })
            .collect();
        let t = DecisionTree::fit_regression(&x, &y, &TreeOptions::default(), &mut r);
        match t.root() {
            Node::Split {
                feature, threshold, ..
            } => {
                assert_eq!(*feature, 1);
                assert!((threshold - 0.4).abs() < 0.1);
            }
            // xtask-allow: panic-path — reason: exhaustive match arm asserting the fixture produced a split
            Node::Leaf { .. } => panic!("expected a split"),
        }
    }

    #[test]
    fn classification_learns_rectangle() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)])
            .collect();
        let labels: Vec<f64> = x
            .iter()
            .map(|v| if v[0] > 0.3 && v[1] < 0.6 { 1.0 } else { 0.0 })
            .collect();
        let t = DecisionTree::fit_classification(&x, &labels, &TreeOptions::default(), &mut r);
        let correct = x
            .iter()
            .zip(&labels)
            .filter(|(xi, &l)| t.predict(xi) == l)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn pure_node_stays_leaf() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 5.0];
        let t = DecisionTree::fit_regression(&x, &y, &TreeOptions::default(), &mut rng());
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[7.0]), 5.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let opts = TreeOptions {
            max_depth: 2,
            min_samples_leaf: 1,
            min_samples_split: 2,
            feature_subsample: 0,
        };
        let t = DecisionTree::fit_regression(&x, &y, &opts, &mut rng());
        assert!(t.depth() <= 2);
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 1 { 100.0 } else { 0.0 }).collect();
        let opts = TreeOptions {
            min_samples_leaf: 3,
            ..TreeOptions::default()
        };
        let t = DecisionTree::fit_regression(&x, &y, &opts, &mut rng());
        // cannot isolate the single outlier into a leaf of size 1
        fn check(node: &Node, min: usize) {
            match node {
                Node::Leaf { samples, .. } => assert!(*samples >= min),
                Node::Split { left, right, .. } => {
                    check(left, min);
                    check(right, min);
                }
            }
        }
        check(t.root(), 3);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let _ = DecisionTree::fit_regression(&[], &[], &TreeOptions::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dims_panics() {
        let t = DecisionTree::fit_regression(
            &[vec![1.0, 2.0]],
            &[1.0],
            &TreeOptions::default(),
            &mut rng(),
        );
        let _ = t.predict(&[1.0]);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..5).map(|_| r.gen_range(0.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[2] * 10.0).collect();
        let opts = TreeOptions {
            feature_subsample: 2,
            ..TreeOptions::default()
        };
        let t = DecisionTree::fit_regression(&x, &y, &opts, &mut r);
        // prediction correlates with the true function
        let mut err = 0.0;
        for xi in x.iter().take(50) {
            err += (t.predict(xi) - xi[2] * 10.0).abs();
        }
        assert!(err / 50.0 < 2.0);
    }
}
