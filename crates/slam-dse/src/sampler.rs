//! Space sampling strategies: uniform random and Latin hypercube.

use crate::space::ParameterSpace;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `n` independent uniform samples from the space.
pub fn random_samples(space: &ParameterSpace, n: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    (0..n).map(|_| space.sample(rng)).collect()
}

/// Draws `n` Latin-hypercube samples: each dimension's `[0, 1]` range is
/// split into `n` strata and each stratum is used exactly once, giving
/// better space coverage than pure random sampling for the initial design.
pub fn latin_hypercube(space: &ParameterSpace, n: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    if n == 0 || space.is_empty() {
        return Vec::new();
    }
    let dims = space.len();
    // per-dimension shuffled strata
    let strata: Vec<Vec<usize>> = (0..dims)
        .map(|_| {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            idx
        })
        .collect();
    (0..n)
        .map(|i| {
            space
                .domains()
                .iter()
                .enumerate()
                .map(|(d, domain)| {
                    let stratum = strata[d][i];
                    let u = (stratum as f64 + rng.gen::<f64>()) / n as f64;
                    domain.from_unit(u)
                })
                .collect()
        })
        .collect()
}

/// Enumerates the full Cartesian grid over the space, using each ordinal
/// / flag value, every integer, and `real_steps` evenly spaced values for
/// continuous domains. Returns `None` when the grid would exceed
/// `max_points` — the reason the paper needs model-based search instead
/// of exhaustive sweeps.
pub fn grid(space: &ParameterSpace, real_steps: usize, max_points: usize) -> Option<Vec<Vec<f64>>> {
    use crate::space::Domain;
    if space.is_empty() || real_steps == 0 {
        return Some(Vec::new());
    }
    let mut axes: Vec<Vec<f64>> = Vec::with_capacity(space.len());
    let mut total: usize = 1;
    for domain in space.domains() {
        let values: Vec<f64> = match domain {
            Domain::Ordinal(v) => v.clone(),
            Domain::Flag => vec![0.0, 1.0],
            Domain::Integer { min, max } => (*min..=*max).map(|v| v as f64).collect(),
            Domain::Real { .. } => (0..real_steps)
                .map(|i| {
                    let u = if real_steps == 1 {
                        0.5
                    } else {
                        i as f64 / (real_steps - 1) as f64
                    };
                    domain.from_unit(u)
                })
                .collect(),
        };
        total = total.checked_mul(values.len())?;
        if total > max_points {
            return None;
        }
        axes.push(values);
    }
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; axes.len()];
    loop {
        out.push(idx.iter().zip(&axes).map(|(&i, a)| a[i]).collect());
        // odometer increment
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < axes[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == axes.len() {
                return Some(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn space() -> ParameterSpace {
        let mut s = ParameterSpace::new();
        s.add("a", Domain::real(0.0, 1.0))
            .add("b", Domain::ordinal(vec![1.0, 2.0, 4.0, 8.0]));
        s
    }

    #[test]
    fn random_samples_count_and_domain() {
        let s = space();
        let samples = random_samples(&s, 25, &mut rng());
        assert_eq!(samples.len(), 25);
        for x in &samples {
            assert!((0.0..=1.0).contains(&x[0]));
            assert!([1.0, 2.0, 4.0, 8.0].contains(&x[1]));
        }
    }

    #[test]
    fn lhs_stratifies_continuous_dimension() {
        let s = space();
        let n = 10;
        let samples = latin_hypercube(&s, n, &mut rng());
        assert_eq!(samples.len(), n);
        // dimension 0: exactly one sample per decile
        let mut deciles = vec![0usize; n];
        for x in &samples {
            let d = ((x[0] * n as f64) as usize).min(n - 1);
            deciles[d] += 1;
        }
        assert!(deciles.iter().all(|&c| c == 1), "strata {deciles:?}");
    }

    #[test]
    fn lhs_zero_or_empty() {
        let s = space();
        assert!(latin_hypercube(&s, 0, &mut rng()).is_empty());
        let empty = ParameterSpace::new();
        assert!(latin_hypercube(&empty, 5, &mut rng()).is_empty());
    }

    #[test]
    fn lhs_covers_ordinals_roughly_uniformly() {
        let s = space();
        let samples = latin_hypercube(&s, 40, &mut rng());
        for v in [1.0, 2.0, 4.0, 8.0] {
            let count = samples.iter().filter(|x| x[1] == v).count();
            assert!((5..=15).contains(&count), "value {v} drawn {count} times");
        }
    }

    #[test]
    fn grid_enumerates_full_product() {
        let mut s = ParameterSpace::new();
        s.add("a", Domain::ordinal(vec![1.0, 2.0]))
            .add("b", Domain::Flag)
            .add("c", Domain::real(0.0, 1.0));
        // xtask-allow: panic-path — reason: the budget is sized so the grid fits; the message names the premise
        let g = grid(&s, 3, 100).expect("12 points fit");
        assert_eq!(g.len(), 2 * 2 * 3);
        // all points distinct
        let mut sorted = g.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), g.len());
        // real axis covers the endpoints
        assert!(g.iter().any(|p| p[2] == 0.0));
        assert!(g.iter().any(|p| p[2] == 1.0));
    }

    #[test]
    fn grid_refuses_explosions() {
        let mut s = ParameterSpace::new();
        s.add("a", Domain::Integer { min: 0, max: 99 })
            .add("b", Domain::Integer { min: 0, max: 99 });
        assert!(grid(&s, 2, 1000).is_none());
        assert!(grid(&s, 2, 10_000).is_some());
    }

    #[test]
    fn grid_trivial_cases() {
        assert_eq!(grid(&ParameterSpace::new(), 2, 10), Some(vec![]));
        let mut s = ParameterSpace::new();
        s.add("a", Domain::Flag);
        assert_eq!(grid(&s, 0, 10), Some(vec![]));
        let g = grid(&s, 1, 10).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let s = space();
        assert_eq!(
            latin_hypercube(&s, 8, &mut rng()),
            latin_hypercube(&s, 8, &mut rng())
        );
        assert_eq!(
            random_samples(&s, 8, &mut rng()),
            random_samples(&s, 8, &mut rng())
        );
    }
}
