//! Pareto-dominance utilities for multi-objective results. All objectives
//! are minimised.

use crate::Evaluation;

/// True when `a` dominates `b`: no objective worse, at least one strictly
/// better.
///
/// # Panics
///
/// Panics when the objective vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective dimensionality mismatch");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated subset of `evaluations` (first occurrence
/// wins among exact duplicates).
pub fn pareto_front(evaluations: &[Evaluation]) -> Vec<Evaluation> {
    let mut front: Vec<Evaluation> = Vec::new();
    for e in evaluations {
        if front
            .iter()
            .any(|f| dominates(&f.objectives, &e.objectives) || f.objectives == e.objectives)
        {
            continue;
        }
        front.retain(|f| !dominates(&e.objectives, &f.objectives));
        front.push(e.clone());
    }
    front
}

/// 2-D hypervolume (area dominated by the front, bounded by `reference`),
/// the standard scalar quality measure for a front. Points beyond the
/// reference are clipped out.
///
/// # Panics
///
/// Panics when any evaluation is not 2-D.
pub fn hypervolume_2d(front: &[Evaluation], reference: [f64; 2]) -> f64 {
    let mut pts: Vec<[f64; 2]> = front
        .iter()
        .map(|e| {
            assert_eq!(e.objectives.len(), 2, "hypervolume_2d needs 2 objectives");
            [e.objectives[0], e.objectives[1]]
        })
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
    // sweep left-to-right keeping the best (lowest) y so far
    let mut area = 0.0;
    let mut best_y = f64::INFINITY;
    // process non-dominated staircase: since sorted by x ascending, a
    // point contributes if its y improves on everything before it
    let mut staircase: Vec<[f64; 2]> = Vec::new();
    for p in pts {
        if p[1] < best_y {
            best_y = p[1];
            staircase.push(p);
        }
    }
    for (i, p) in staircase.iter().enumerate() {
        let next_x = staircase.get(i + 1).map_or(reference[0], |q| q[0]);
        area += (next_x - p[0]) * (reference[1] - p[1]);
    }
    area
}

/// Filters evaluations by a constraint on one objective (e.g. the paper's
/// "max ATE < 0.05 m"), returning those satisfying
/// `objectives[index] <= limit`.
pub fn filter_feasible(evaluations: &[Evaluation], index: usize, limit: f64) -> Vec<Evaluation> {
    evaluations
        .iter()
        .filter(|e| e.objectives.get(index).is_some_and(|&v| v <= limit))
        .cloned()
        .collect()
}

/// The evaluation minimising one objective, or `None` when empty.
pub fn best_by_objective(evaluations: &[Evaluation], index: usize) -> Option<&Evaluation> {
    evaluations
        .iter()
        .filter(|e| e.objectives.get(index).is_some_and(|v| v.is_finite()))
        .min_by(|a, b| a.objectives[index].total_cmp(&b.objectives[index]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(obj: &[f64]) -> Evaluation {
        Evaluation::new(vec![], obj.to_vec())
    }

    #[test]
    fn dominance_relations() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn front_extracts_non_dominated() {
        let evals = vec![
            ev(&[1.0, 4.0]),
            ev(&[2.0, 2.0]),
            ev(&[4.0, 1.0]),
            ev(&[3.0, 3.0]), // dominated by (2,2)
            ev(&[5.0, 5.0]), // dominated
        ];
        let front = pareto_front(&evals);
        assert_eq!(front.len(), 3);
        assert!(front
            .iter()
            .all(|e| e.objectives[0] + e.objectives[1] <= 5.0));
    }

    #[test]
    fn front_handles_duplicates() {
        let evals = vec![ev(&[1.0, 1.0]), ev(&[1.0, 1.0])];
        assert_eq!(pareto_front(&evals).len(), 1);
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_insertion_order_independent() {
        let a = vec![ev(&[1.0, 4.0]), ev(&[3.0, 3.0]), ev(&[2.0, 2.0])];
        let b = vec![ev(&[2.0, 2.0]), ev(&[1.0, 4.0]), ev(&[3.0, 3.0])];
        let fa: Vec<Vec<f64>> = {
            let mut v: Vec<Vec<f64>> = pareto_front(&a).into_iter().map(|e| e.objectives).collect();
            v.sort_by(|x, y| x[0].partial_cmp(&y[0]).unwrap());
            v
        };
        let fb: Vec<Vec<f64>> = {
            let mut v: Vec<Vec<f64>> = pareto_front(&b).into_iter().map(|e| e.objectives).collect();
            v.sort_by(|x, y| x[0].partial_cmp(&y[0]).unwrap());
            v
        };
        assert_eq!(fa, fb);
    }

    #[test]
    fn hypervolume_single_point() {
        let front = vec![ev(&[1.0, 1.0])];
        // dominated rectangle up to (3,3) is 2x2
        assert!((hypervolume_2d(&front, [3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_staircase() {
        let front = vec![ev(&[1.0, 2.0]), ev(&[2.0, 1.0])];
        // area = (2-1)*(3-2) + (3-2)*(3-1) = 1 + 2 = 3
        assert!((hypervolume_2d(&front, [3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_clips_outside_reference() {
        let front = vec![ev(&[5.0, 5.0])];
        assert_eq!(hypervolume_2d(&front, [3.0, 3.0]), 0.0);
    }

    #[test]
    fn hypervolume_more_points_not_smaller() {
        let small = vec![ev(&[2.0, 2.0])];
        let large = vec![ev(&[2.0, 2.0]), ev(&[1.0, 2.5])];
        let reference = [4.0, 4.0];
        assert!(hypervolume_2d(&large, reference) >= hypervolume_2d(&small, reference));
    }

    #[test]
    fn feasibility_filter() {
        let evals = vec![ev(&[1.0, 0.04]), ev(&[0.5, 0.08])];
        let feasible = filter_feasible(&evals, 1, 0.05);
        assert_eq!(feasible.len(), 1);
        assert_eq!(feasible[0].objectives[1], 0.04);
    }

    #[test]
    fn best_by_objective_picks_minimum() {
        let evals = vec![ev(&[3.0, 1.0]), ev(&[1.0, 9.0]), ev(&[2.0, 2.0])];
        assert_eq!(best_by_objective(&evals, 0).unwrap().objectives[0], 1.0);
        assert_eq!(best_by_objective(&evals, 1).unwrap().objectives[1], 1.0);
        assert!(best_by_objective(&[], 0).is_none());
    }
}
