//! Fixture-based self-tests for the static-analysis passes.
//!
//! Every file under `tests/fixtures/` is linted under the policy its
//! subdirectory maps to, and its findings must match the `//~ lint-name`
//! expectation markers exactly — both directions: a known-bad snippet
//! that stops tripping its lint fails the suite just like a known-good
//! snippet that starts tripping one. The workspace-level passes get the
//! same treatment: `fixtures/locks/` drives the global lock-order graph
//! and the mini workspace trees under `fixtures/ws/` drive the
//! crate-layer pass, and every lint in the registry must fire on at
//! least one bad fixture.
//!
//! Marker syntax (trailing comment):
//! * `//~ lint-name`    — a finding of `lint-name` on this line
//! * `//~^ lint-name`   — a finding on the previous line (one line up
//!   per `^`)
//!
//! Markers are stripped from the source before linting so they can never
//! interact with the lints themselves (e.g. with waiver parsing).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use xtask::lints::{lint_file, Diagnostic, LintPolicy, SourceFile};
use xtask::walk::classify;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Policy each fixture subdirectory is linted under.
fn policy_for(subdir: &str) -> LintPolicy {
    match subdir {
        "lib" => LintPolicy::lib(),
        "exec" => classify(Path::new("crates/slam-kfusion/src/exec/mod.rs")),
        "bin" => classify(Path::new("crates/bench/src/bin/fixture.rs")),
        "orchestrator" => classify(Path::new("crates/slambench/src/fixture.rs")),
        "root" => LintPolicy {
            require_deny_unsafe: true,
            ..LintPolicy::lib()
        },
        other => panic!("fixture subdir {other:?} has no policy mapping"),
    }
}

/// Parses the expectation markers out of a fixture, returning the
/// expected `(line, lint)` multiset and the marker-stripped source.
fn parse_fixture(text: &str) -> (BTreeMap<(u32, String), usize>, String) {
    let mut expected: BTreeMap<(u32, String), usize> = BTreeMap::new();
    let mut stripped = String::new();
    for (i, line) in text.lines().enumerate() {
        let kept = match line.find("//~") {
            Some(at) => {
                let marker = &line[at + 3..];
                let carets = marker.chars().take_while(|&c| c == '^').count();
                let target = (i + 1) as u32 - carets as u32;
                for name in marker[carets..].split_whitespace() {
                    *expected.entry((target, name.to_string())).or_insert(0) += 1;
                }
                &line[..at]
            }
            None => line,
        };
        stripped.push_str(kept);
        stripped.push('\n');
    }
    (expected, stripped)
}

fn findings_multiset(findings: &[Diagnostic]) -> BTreeMap<(u32, String), usize> {
    let mut out = BTreeMap::new();
    for d in findings {
        *out.entry((d.line, d.lint.clone())).or_insert(0) += 1;
    }
    out
}

#[test]
fn fixtures_match_expected_diagnostics_exactly() {
    let root = fixtures_dir();
    let mut checked = 0usize;
    for subdir in ["lib", "exec", "bin", "root", "orchestrator"] {
        let dir = root.join(subdir);
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("fixture dir {}: {e}", dir.display()))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        assert!(!entries.is_empty(), "no fixtures in {}", dir.display());
        for path in entries {
            let text = std::fs::read_to_string(&path).unwrap();
            let (expected, stripped) = parse_fixture(&text);
            let src = SourceFile::new(&path, &stripped);
            let findings = lint_file(&src, policy_for(subdir));
            let actual = findings_multiset(&findings);
            assert_eq!(
                actual,
                expected,
                "fixture {} diagnostics diverge\nfindings:\n{}",
                path.display(),
                findings
                    .iter()
                    .map(|d| format!("  {d}\n"))
                    .collect::<String>()
            );
            checked += 1;
        }
    }
    assert!(checked >= 10, "expected >= 10 fixtures, ran {checked}");
}

#[test]
fn bad_fixtures_actually_trip_every_lint() {
    // belt-and-braces: the fixture set must exercise each lint at least
    // once, so a lint that silently stops firing cannot hide behind an
    // all-good fixture set
    let root = fixtures_dir();
    let mut fired: BTreeMap<String, usize> = BTreeMap::new();
    for subdir in ["lib", "exec", "bin", "root", "orchestrator"] {
        for entry in std::fs::read_dir(root.join(subdir)).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|x| x != "rs") {
                continue;
            }
            let (_, stripped) = parse_fixture(&std::fs::read_to_string(&path).unwrap());
            for d in lint_file(&SourceFile::new(&path, &stripped), policy_for(subdir)) {
                *fired.entry(d.lint).or_insert(0) += 1;
            }
        }
    }
    // the workspace-level passes fire from their own fixture sets
    for path in lock_fixture_paths() {
        let (_, stripped) = parse_fixture(&std::fs::read_to_string(&path).unwrap());
        let src = SourceFile::new(&path, &stripped);
        for d in xtask::concurrency::lint_lock_order(&[&src]) {
            *fired.entry(d.lint).or_insert(0) += 1;
        }
    }
    for case in [
        "good",
        "bad_cycle",
        "bad_order",
        "bad_internal",
        "bad_orphan",
    ] {
        for d in ws_findings(case) {
            *fired.entry(d.lint).or_insert(0) += 1;
        }
    }
    for lint in xtask::registry::LINTS {
        assert!(
            fired.get(lint.name).copied().unwrap_or(0) > 0,
            "no fixture trips lint {:?} ({}) (fired: {fired:?})",
            lint.name,
            lint.id
        );
    }
}

#[test]
fn diagnostic_rendering_is_rustc_style() {
    let src = SourceFile::new(
        Path::new("crates/demo/src/lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    let findings = lint_file(&src, LintPolicy::lib());
    assert_eq!(findings.len(), 1);
    let rendered = findings[0].to_string();
    assert_eq!(
        rendered,
        "error[XT004/panic-path]: `.unwrap()` in a library path: return a `Result` \
         or use a documented-invariant `debug_assert!`\n  --> crates/demo/src/lib.rs:2"
    );
}

#[test]
fn waivers_must_name_the_right_lint() {
    // a waiver for one lint must not leak onto another lint's finding on
    // the same line
    let text =
        "pub fn f() {\n    // xtask-allow: hash-iter — reason: wrong lint named\n    panic!(\"x\");\n}\n";
    let src = SourceFile::new(Path::new("crates/demo/src/lib.rs"), text);
    let findings = lint_file(&src, LintPolicy::lib());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "panic-path");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn multi_lint_waiver_covers_both() {
    let text = "pub fn f() {\n    // xtask-allow: threading, panic-path — reason: fixture exercising multi-name waivers\n    std::thread::spawn(|| ()).join().unwrap();\n}\n";
    let src = SourceFile::new(Path::new("crates/demo/src/lib.rs"), text);
    let findings = lint_file(&src, LintPolicy::lib());
    assert!(findings.is_empty(), "{findings:?}");
}

fn lock_fixture_paths() -> Vec<PathBuf> {
    let dir = fixtures_dir().join("locks");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures in {}", dir.display());
    entries
}

#[test]
fn lock_order_fixtures_match_expected_diagnostics_exactly() {
    // each lock fixture is a self-contained workspace for the global
    // acquisition-order graph: its `//~ lock-order` markers must match
    // the pass output exactly, in both directions
    for path in lock_fixture_paths() {
        let (expected, stripped) = parse_fixture(&std::fs::read_to_string(&path).unwrap());
        let src = SourceFile::new(&path, &stripped);
        let findings = xtask::concurrency::lint_lock_order(&[&src]);
        assert_eq!(
            findings_multiset(&findings),
            expected,
            "lock fixture {} diagnostics diverge\nfindings:\n{}",
            path.display(),
            findings
                .iter()
                .map(|d| format!("  {d}\n"))
                .collect::<String>()
        );
    }
}

/// Runs the crate-layer passes over the mini workspace tree at
/// `fixtures/ws/<case>` with a fixture-local layer table (`a` above `b`;
/// `c` deliberately unassigned).
fn ws_findings(case: &str) -> Vec<Diagnostic> {
    let root = fixtures_dir().join("ws").join(case);
    let model = xtask::model::Model::build(&root)
        .unwrap_or_else(|e| panic!("model for {}: {e}", root.display()));
    let table: &[(&str, u32)] = match case {
        // bad_order inverts the ranks so both the manifest dep and the
        // import point *up* the DAG
        "bad_order" => &[("a", 0), ("b", 1)],
        _ => &[("a", 1), ("b", 0)],
    };
    let mut out = Vec::new();
    xtask::layers::lint_layers(&model, table, &mut out);
    xtask::layers::lint_internal(&model, xtask::layers::INTERNAL_RULES, &mut out);
    xtask::layers::lint_mod_orphans(&model, &mut out);
    out
}

fn lint_file_line(findings: &[Diagnostic]) -> Vec<(String, String, u32)> {
    let mut v: Vec<(String, String, u32)> = findings
        .iter()
        .map(|d| (d.lint.clone(), d.file.clone(), d.line))
        .collect();
    v.sort();
    v
}

#[test]
fn layer_passes_stay_silent_on_a_clean_workspace_tree() {
    let findings = ws_findings("good");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn dependency_cycles_are_reported_on_both_edges() {
    // a ⇄ b: both manifest dep edges lie on the cycle; the b → a edge is
    // additionally a layer-order violation (layer 0 depending on layer 1)
    assert_eq!(
        lint_file_line(&ws_findings("bad_cycle")),
        vec![
            ("layer-cycle".into(), "crates/a/Cargo.toml".into(), 6),
            ("layer-cycle".into(), "crates/b/Cargo.toml".into(), 6),
            ("layer-order".into(), "crates/b/Cargo.toml".into(), 6),
        ]
    );
}

#[test]
fn upward_deps_imports_and_unassigned_crates_are_reported() {
    assert_eq!(
        lint_file_line(&ws_findings("bad_order")),
        vec![
            // manifest dependency a (0) → b (1)
            ("layer-order".into(), "crates/a/Cargo.toml".into(), 6),
            // `use b::Thing;` import edge
            ("layer-order".into(), "crates/a/src/lib.rs".into(), 4),
            // crate `c` has no layer assignment
            ("layer-order".into(), "crates/c/Cargo.toml".into(), 1),
        ]
    );
}

#[test]
fn internal_pool_symbols_are_flagged_outside_their_home_crates() {
    assert_eq!(
        lint_file_line(&ws_findings("bad_internal")),
        vec![
            // `PoolShared` (protocol) and `run_tasks` (submission surface)
            ("layer-internal".into(), "crates/a/src/lib.rs".into(), 4),
            ("layer-internal".into(), "crates/a/src/lib.rs".into(), 5),
        ]
    );
}

#[test]
fn unreachable_src_files_are_reported_as_orphans() {
    assert_eq!(
        lint_file_line(&ws_findings("bad_orphan")),
        vec![("mod-orphan".into(), "crates/a/src/stray.rs".into(), 1)]
    );
}

#[test]
fn lint_repo_rejects_roots_with_no_sources() {
    // a mistyped `--root` must not look like a clean workspace: every
    // tracked tree is individually optional, so an empty walk has to be
    // an error rather than a vacuous pass
    let empty = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bin");
    let err = xtask::lint_repo(&empty).expect_err("empty root must error");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    assert!(err.to_string().contains("no Rust sources"), "{err}");
}
