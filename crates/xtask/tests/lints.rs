//! Fixture-based self-tests for the invariant lints.
//!
//! Every file under `tests/fixtures/` is linted under the policy its
//! subdirectory maps to, and its findings must match the `//~ lint-name`
//! expectation markers exactly — both directions: a known-bad snippet
//! that stops tripping its lint fails the suite just like a known-good
//! snippet that starts tripping one.
//!
//! Marker syntax (trailing comment):
//! * `//~ lint-name`    — a finding of `lint-name` on this line
//! * `//~^ lint-name`   — a finding on the previous line (one line up
//!   per `^`)
//!
//! Markers are stripped from the source before linting so they can never
//! interact with the lints themselves (e.g. with waiver parsing).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use xtask::lints::{lint_file, Diagnostic, LintPolicy, SourceFile};
use xtask::walk::classify;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Policy each fixture subdirectory is linted under.
fn policy_for(subdir: &str) -> LintPolicy {
    match subdir {
        "lib" => LintPolicy::lib(),
        "exec" => classify(Path::new("crates/slam-kfusion/src/exec/mod.rs")),
        "bin" => classify(Path::new("crates/bench/src/bin/fixture.rs")),
        "orchestrator" => classify(Path::new("crates/slambench/src/fixture.rs")),
        "root" => LintPolicy {
            require_deny_unsafe: true,
            ..LintPolicy::lib()
        },
        other => panic!("fixture subdir {other:?} has no policy mapping"),
    }
}

/// Parses the expectation markers out of a fixture, returning the
/// expected `(line, lint)` multiset and the marker-stripped source.
fn parse_fixture(text: &str) -> (BTreeMap<(u32, String), usize>, String) {
    let mut expected: BTreeMap<(u32, String), usize> = BTreeMap::new();
    let mut stripped = String::new();
    for (i, line) in text.lines().enumerate() {
        let kept = match line.find("//~") {
            Some(at) => {
                let marker = &line[at + 3..];
                let carets = marker.chars().take_while(|&c| c == '^').count();
                let target = (i + 1) as u32 - carets as u32;
                for name in marker[carets..].split_whitespace() {
                    *expected.entry((target, name.to_string())).or_insert(0) += 1;
                }
                &line[..at]
            }
            None => line,
        };
        stripped.push_str(kept);
        stripped.push('\n');
    }
    (expected, stripped)
}

fn findings_multiset(findings: &[Diagnostic]) -> BTreeMap<(u32, String), usize> {
    let mut out = BTreeMap::new();
    for d in findings {
        *out.entry((d.line, d.lint.clone())).or_insert(0) += 1;
    }
    out
}

#[test]
fn fixtures_match_expected_diagnostics_exactly() {
    let root = fixtures_dir();
    let mut checked = 0usize;
    for subdir in ["lib", "exec", "bin", "root", "orchestrator"] {
        let dir = root.join(subdir);
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("fixture dir {}: {e}", dir.display()))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        assert!(!entries.is_empty(), "no fixtures in {}", dir.display());
        for path in entries {
            let text = std::fs::read_to_string(&path).unwrap();
            let (expected, stripped) = parse_fixture(&text);
            let src = SourceFile::new(&path, &stripped);
            let findings = lint_file(&src, policy_for(subdir));
            let actual = findings_multiset(&findings);
            assert_eq!(
                actual,
                expected,
                "fixture {} diagnostics diverge\nfindings:\n{}",
                path.display(),
                findings
                    .iter()
                    .map(|d| format!("  {d}\n"))
                    .collect::<String>()
            );
            checked += 1;
        }
    }
    assert!(checked >= 10, "expected >= 10 fixtures, ran {checked}");
}

#[test]
fn bad_fixtures_actually_trip_every_lint() {
    // belt-and-braces: the fixture set must exercise each lint at least
    // once, so a lint that silently stops firing cannot hide behind an
    // all-good fixture set
    let root = fixtures_dir();
    let mut fired: BTreeMap<String, usize> = BTreeMap::new();
    for subdir in ["lib", "exec", "bin", "root", "orchestrator"] {
        for entry in std::fs::read_dir(root.join(subdir)).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|x| x != "rs") {
                continue;
            }
            let (_, stripped) = parse_fixture(&std::fs::read_to_string(&path).unwrap());
            for d in lint_file(&SourceFile::new(&path, &stripped), policy_for(subdir)) {
                *fired.entry(d.lint).or_insert(0) += 1;
            }
        }
    }
    for lint in [
        "threading",
        "unsafe-code",
        "hash-iter",
        "panic-path",
        "engine-only",
        "trace-clock",
        "waiver",
    ] {
        assert!(
            fired.get(lint).copied().unwrap_or(0) > 0,
            "no fixture trips lint {lint:?} (fired: {fired:?})"
        );
    }
}

#[test]
fn diagnostic_rendering_is_rustc_style() {
    let src = SourceFile::new(
        Path::new("crates/demo/src/lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    let findings = lint_file(&src, LintPolicy::lib());
    assert_eq!(findings.len(), 1);
    let rendered = findings[0].to_string();
    assert_eq!(
        rendered,
        "error[xtask::panic-path]: `.unwrap()` in a library path: return a `Result` \
         or use a documented-invariant `debug_assert!`\n  --> crates/demo/src/lib.rs:2"
    );
}

#[test]
fn waivers_must_name_the_right_lint() {
    // a waiver for one lint must not leak onto another lint's finding on
    // the same line
    let text =
        "pub fn f() {\n    // xtask-allow: hash-iter — wrong lint named\n    panic!(\"x\");\n}\n";
    let src = SourceFile::new(Path::new("crates/demo/src/lib.rs"), text);
    let findings = lint_file(&src, LintPolicy::lib());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "panic-path");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn multi_lint_waiver_covers_both() {
    let text = "pub fn f() {\n    // xtask-allow: threading, panic-path — fixture exercising multi-name waivers\n    std::thread::spawn(|| ()).join().unwrap();\n}\n";
    let src = SourceFile::new(Path::new("crates/demo/src/lib.rs"), text);
    let findings = lint_file(&src, LintPolicy::lib());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lint_repo_rejects_roots_with_no_sources() {
    // a mistyped `--root` must not look like a clean workspace: every
    // tracked tree is individually optional, so an empty walk has to be
    // an error rather than a vacuous pass
    let empty = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bin");
    let err = xtask::lint_repo(&empty).expect_err("empty root must error");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    assert!(err.to_string().contains("no Rust sources"), "{err}");
}
