//! Known-good fixture under the binary policy: experiment binaries may
//! unwrap (a panic aborts one run, not a library caller), but threading
//! and determinism rules still apply.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(8);
    println!("{n}");
}
