//! Known-bad fixture: reading the raw monotonic clock outside the
//! `slam_trace::clock` shim.

use std::time::Instant;

pub fn ad_hoc_timer() -> f64 {
    let t = Instant::now(); //~ trace-clock
    expensive();
    t.elapsed().as_secs_f64()
}

pub fn fully_qualified_read() -> std::time::Instant {
    std::time::Instant::now() //~ trace-clock
}

pub fn waived_read() -> Instant {
    // xtask-allow: trace-clock — reason: fixture exercising a sanctioned raw clock read
    Instant::now()
}

pub fn type_mentions_are_fine(origin: Instant) -> Instant {
    // `Instant` as a type (or in a comment: Instant::now()) never trips
    // the lint; only the `::now` read does
    origin
}
