//! Known-bad fixture: malformed waivers are themselves findings, and a
//! reason-less waiver does not suppress the lint it names.

pub fn reasonless_waiver(v: Option<u32>) -> u32 {
    // xtask-allow: panic-path //~ waiver
    v.unwrap() //~ panic-path
}

pub fn unknown_lint_waiver(v: Option<u32>) -> u32 {
    // xtask-allow: no-such-lint because reasons //~ waiver
    v.unwrap() //~ panic-path
}

pub fn empty_reason_waiver(v: Option<u32>) -> u32 {
    // xtask-allow: panic-path — reason: //~ waiver
    v.unwrap() //~ panic-path
}
