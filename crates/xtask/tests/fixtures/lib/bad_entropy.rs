//! Known-bad fixture: ambient entropy sources. Every run must be
//! replayable from its seed and injected clock alone.

use rand::rngs::OsRng; //~ entropy-source
use std::time::SystemTime; //~ entropy-source

pub fn ambient_rng() -> f64 {
    let mut rng = rand::thread_rng(); //~ entropy-source
    rng.gen()
}

pub fn os_seeded() -> ChaCha8Rng {
    ChaCha8Rng::from_entropy() //~ entropy-source
}

pub fn bare_random() -> f64 {
    rand::random() //~ entropy-source
}

pub fn wall_clock_stamp() -> u64 {
    let now = SystemTime::now(); //~ entropy-source
    now.duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

pub fn waived_stamp() {
    // xtask-allow: entropy-source — reason: fixture exercising a sanctioned ambient read
    let _ = SystemTime::now();
}
