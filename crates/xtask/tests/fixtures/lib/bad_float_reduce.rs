//! Known-bad fixture: ad-hoc reductions over worker-pool results. The
//! pool's submission-order contract lives in the callee; reducing by hand
//! at the call site hides it, so every shape below must route through the
//! ordered helpers in `slam_kfusion::exec` instead.

use slam_kfusion::exec;

pub fn direct_chain(threads: usize, tasks: Vec<exec::Task<'_, f64>>) -> f64 {
    exec::run_tasks(threads, tasks).into_iter().sum() //~ float-reduce
}

pub fn traced_chain(tracer: &Tracer, threads: usize, tasks: Vec<exec::Task<'_, u64>>) -> u64 {
    exec::trace_tasks(tracer, "kernel", threads, tasks)
        .into_iter()
        .sum::<u64>() //~ float-reduce
}

pub fn banded_fold(threads: usize, n: usize) -> f64 {
    exec::run_bands(threads, n, |range| range.len() as f64)
        .into_iter()
        .fold(0.0, |acc, x| acc + x) //~ float-reduce
}

pub fn via_binding(tracer: &Tracer, threads: usize, n: usize) -> f64 {
    let partials = exec::run_bands_traced(tracer, "kernel", threads, n, |r| r.len() as f64);
    partials.iter().copied().reduce(|a, b| a + b).unwrap_or(0.0) //~ float-reduce
}
