//! Known-bad fixture: `unsafe` outside the exec-pool allowlist.

pub fn transmutes(x: u32) -> i32 {
    unsafe { std::mem::transmute::<u32, i32>(x) } //~ unsafe-code
}

pub struct RawWrapper(*const u8);

// even an empty unsafe block or an unsafe fn signature is a finding
pub unsafe fn raw_read(p: *const u8) -> u8 {
    //~^ unsafe-code
    *p
}
