//! Known-bad fixture: hash collections in library code are a
//! nondeterministic-iteration hazard.

use std::collections::HashMap; //~ hash-iter
use std::collections::HashSet; //~ hash-iter

pub fn sums_in_hash_order(weights: &HashMap<String, f32>) -> f32 {
    //~^ hash-iter
    weights.values().sum()
}

pub fn collects_unordered(names: &[String]) -> HashSet<String> {
    //~^ hash-iter
    names.iter().cloned().collect()
}
