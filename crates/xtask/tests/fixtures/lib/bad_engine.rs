//! Known-bad fixture: calling the raw pipeline runner outside
//! `slambench::run` / `slambench::engine`.

use slambench::run::run_pipeline; //~ engine-only

pub fn direct_call(dataset: &Dataset, config: &Config) -> Run {
    run_pipeline(dataset, config) //~ engine-only
}

pub fn direct_threaded_call(dataset: &Dataset, config: &Config) -> Run {
    slambench::run::run_pipeline_with_threads(dataset, config, 4) //~ engine-only
}

pub fn direct_traced_call(dataset: &Dataset, config: &Config, tracer: &Tracer) -> Run {
    slambench::run::run_pipeline_traced(dataset, config, tracer) //~ engine-only
}

pub fn direct_generic_call(dataset: &Dataset, config: &Config) -> Run {
    slambench::run::run_algorithm(AlgoId::KinectFusion, dataset, config) //~ engine-only
}

pub fn direct_generic_traced(dataset: &Dataset, config: &Config, tracer: &Tracer) -> Run {
    slambench::run::run_algorithm_traced(AlgoId::PointOdometry, dataset, config, tracer) //~ engine-only
}

pub fn waived_call(dataset: &Dataset, config: &Config) -> Run {
    // xtask-allow: engine-only — reason: fixture exercising a sanctioned raw-runner call
    run_pipeline(dataset, config)
}

pub fn mentions_in_comments_are_fine() {
    // run_pipeline in a comment never trips the lint, and neither does
    // the engine's own vocabulary:
    let _ = "run_pipeline";
    let run_pipeline_budget = 3; // a *different* identifier stays legal
    let _ = run_pipeline_budget;
}
