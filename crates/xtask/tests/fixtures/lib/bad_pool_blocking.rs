//! Known-bad fixture: blocking calls inside closures that run on pool
//! workers. A parked worker serialises the batch and can deadlock nested
//! submissions.

use slam_kfusion::exec;

pub fn sleeping_task(threads: usize) {
    exec::run_tasks(
        threads,
        vec![Box::new(move || {
            std::thread::sleep(std::time::Duration::from_millis(1)); //~ pool-blocking
        }) as exec::Task<'_, ()>],
    );
}

pub fn file_io_in_cast_task() -> Vec<exec::Task<'static, ()>> {
    vec![Box::new(move || {
        let _ = std::fs::write("scratch.bin", b"partial"); //~ pool-blocking
    }) as exec::Task<'static, ()>]
}

pub fn channel_wait_in_band(threads: usize, n: usize, rx: &Receiver<u32>) {
    exec::run_bands(threads, n, |_range| {
        let _ = rx.recv(); //~ pool-blocking
    });
}

pub fn socket_wait_in_task(threads: usize, listener: &Listener) {
    exec::run_tasks(
        threads,
        vec![Box::new(move || {
            let _ = listener.accept(); //~ pool-blocking
        }) as exec::Task<'_, ()>],
    );
}

pub fn io_outside_tasks_is_fine(path: &str) -> std::io::Result<String> {
    // blocking outside a pool region never trips the lint
    std::fs::read_to_string(path)
}
