//! Known-good fixture: the sanctioned ways to write library code. No
//! lint may fire anywhere in this file.
//!
//! Doc examples may use `unwrap()` freely — they are documentation:
//!
//! ```
//! let x: Option<u32> = Some(1);
//! assert_eq!(x.unwrap(), 1);
//! ```

use std::collections::BTreeMap;

/// Errors are returned, not panicked.
pub fn checked(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing value".to_string())
}

/// Documented invariants use `debug_assert!`; entry-point preconditions
/// use `assert!` with a message (the sanctioned contract style).
pub fn banded(n: usize, bands: usize) -> usize {
    assert!(bands > 0, "bands must be positive");
    debug_assert!(n >= bands, "caller guarantees n >= bands");
    n / bands
}

/// Ordered maps keep every iteration deterministic.
pub fn accumulate(weights: &BTreeMap<String, f32>) -> f32 {
    weights.values().sum()
}

/// A justified waiver names the lint and carries a reason.
pub fn contractual_panic(i: usize) -> usize {
    match i {
        0 | 1 | 2 => i,
        // xtask-allow: panic-path — reason: the Index contract requires a panic on out-of-bounds
        _ => panic!("index {i} out of range"),
    }
}

/// Mentioning unsafe, HashMap or thread::spawn in strings and comments is
/// fine: the lints operate on the token stream, not on raw text.
pub fn describe() -> &'static str {
    // a comment about unsafe { } and HashMap and thread::spawn
    "this string contains unsafe, HashMap and thread::spawn"
}

/// Free functions named like the flagged methods are not method calls.
pub fn expect(unwrap: u32) -> u32 {
    unwrap
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_use_hash_and_panic() {
        let mut s = HashSet::new();
        s.insert(1);
        assert!(s.contains(&1));
        Some(0).unwrap();
    }
}
