//! Known-good fixture: pool results reduced the sanctioned ways. No lint
//! may fire anywhere in this file.

use slam_kfusion::exec;

/// The blessed helpers carry the ordered-reduction contract themselves.
pub fn blessed_sum(tracer: &Tracer, threads: usize, tasks: Vec<exec::Task<'_, f64>>) -> f64 {
    exec::sum_tasks_traced(tracer, "kernel", threads, tasks)
}

/// Folding through the helper keeps the accumulation order explicit.
pub fn blessed_fold(threads: usize, tasks: Vec<exec::Task<'_, (f64, f64)>>) -> (f64, f64) {
    exec::reduce_tasks(threads, tasks, (0.0, 0.0), |(a, b), (o, u)| (a + o, b + u))
}

/// Structured merges (not a float `.sum()`/`.fold()` chain) stay legal:
/// the per-band systems are combined via an explicit domain method.
pub fn structured_merge(threads: usize, tasks: Vec<exec::Task<'_, Partial>>) -> Partial {
    let partials = exec::run_tasks(threads, tasks);
    let mut acc = Partial::new();
    for p in &partials {
        acc.merge(p);
    }
    acc
}

/// Reductions over data that never came from the pool are untouched.
pub fn plain_iterator_sum(values: &[f64]) -> f64 {
    values.iter().sum()
}
