//! Known-bad fixture: ad-hoc threading outside the exec pool.

use std::thread;

pub fn spawns() {
    let h = thread::spawn(|| 1 + 1); //~ threading
    let _ = h.join();
}

pub fn spawns_qualified() {
    std::thread::spawn(|| ()); //~ threading
}

pub fn named_worker() {
    let _ = std::thread::Builder::new().name("w".into()); //~ threading
}

pub fn uses_rayon(v: &mut [u32]) {
    rayon::join(|| (), || ()); //~ threading
    let _ = v;
}

pub fn uses_crossbeam() {
    crossbeam::scope(|_| ()); //~ threading
}

pub fn current_thread_is_fine() -> Option<String> {
    // thread:: paths other than spawn/Builder are observability, not
    // parallelism, and stay legal
    std::thread::current().name().map(str::to_string)
}
