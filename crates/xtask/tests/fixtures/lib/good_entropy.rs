//! Known-good fixture: seeded randomness and injected time. No lint may
//! fire anywhere in this file.

use rand_chacha::ChaCha8Rng;

/// Randomness is derived from an explicit seed, so runs replay exactly.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Time is read through an injected handle, never ambiently.
pub fn stamped(clock: &dyn Clock) -> f64 {
    clock.now_secs()
}

/// Vocabulary in comments and strings never trips the lint: thread_rng,
/// OsRng, SystemTime and rand::random are all mentioned right here.
pub fn describe() -> &'static str {
    "seeded, not thread_rng / OsRng / SystemTime / rand::random"
}
