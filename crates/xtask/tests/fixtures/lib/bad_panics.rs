//! Known-bad fixture: every panic-family construct in a library path
//! must fire the `panic-path` lint, with `#[cfg(test)]` code exempt.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-path
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("present") //~ panic-path
}

pub fn panics(flag: bool) {
    if flag {
        panic!("boom"); //~ panic-path
    }
}

pub fn unreachable_arm(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(), //~ panic-path
    }
}

pub fn not_done() {
    todo!() //~ panic-path
}

pub fn also_not_done() {
    unimplemented!() //~ panic-path
}

pub fn chained(r: Result<u32, String>) -> u32 {
    r.unwrap_err().len() as u32 //~ panic-path
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
        panic!("tests may panic");
    }
}
