//! Known-bad fixture: raw socket types in a non-network library crate.
//! The campaign server (`crates/slam-serve/`) owns the workspace's
//! network surface; sockets anywhere else are untracked side channels.

use std::net::TcpListener; //~ network-boundary

pub fn sneaky_server() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?; //~ network-boundary
    let (stream, _) = listener.accept()?;
    drop(stream);
    Ok(())
}

pub fn sneaky_client(addr: &str) -> std::io::Result<()> {
    let stream = std::net::TcpStream::connect(addr)?; //~ network-boundary
    drop(stream);
    Ok(())
}

pub fn sneaky_datagram() -> std::io::Result<std::net::UdpSocket> { //~ network-boundary
    std::net::UdpSocket::bind("127.0.0.1:0") //~ network-boundary
}

// a waived site documents why it is sanctioned
pub fn waived_probe() -> bool {
    // xtask-allow: network-boundary — reason: fixture exercising the waiver path
    std::net::TcpStream::connect("127.0.0.1:1").is_ok()
}
