//! Known-bad fixture: naming KinectFusion internals outside the
//! algorithm crate and the generic driver.

use slam_kfusion::TsdfVolume;

pub fn hardwired_step(kf: &mut KinectFusion, depth: &[u16]) -> FrameResult {
    kf.process_frame(depth) //~ algorithm-boundary
}

pub fn hardwired_traced(kf: &mut KinectFusion, depth: &[u16], tracer: &Tracer) -> FrameResult {
    kf.process_frame_traced(depth, tracer) //~ algorithm-boundary
}

pub fn raw_volume() -> TsdfVolume {
    TsdfVolume::new(128, 4.0) //~ algorithm-boundary
}

pub fn waived_volume() -> TsdfVolume {
    // xtask-allow: algorithm-boundary — reason: fixture exercising a sanctioned kernel-bench construction
    TsdfVolume::new(64, 4.0)
}

pub fn mentions_are_fine(vol: &TsdfVolume) -> usize {
    // process_frame in a comment never trips the lint, and naming the
    // type without constructing it is legal (mesh extraction does):
    let _ = "process_frame";
    let process_frame_budget = vol.resolution(); // different identifier
    process_frame_budget
}
