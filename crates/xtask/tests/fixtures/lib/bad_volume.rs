//! Known-bad fixture: sizing dense `res³` voxel buffers and reaching
//! into the raw voxel arrays outside the volume backends.

pub fn dense_scratch(res: usize) -> Vec<f32> {
    vec![1.0; res * res * res] //~ volume-boundary
}

pub fn dense_scratch_pow(res: usize) -> Vec<f32> {
    Vec::with_capacity(res.pow(3)) //~ volume-boundary
}

pub fn peeks_at_fields(vol: &SomeVolume) -> (f32, usize) {
    let first = vol.tsdf[0]; //~ volume-boundary
    let observed = vol.weight.iter().filter(|&&w| w > 0.0).count(); //~ volume-boundary
    (first, observed)
}

pub fn waived_footprint_math(res: usize) -> usize {
    // xtask-allow: volume-boundary — reason: fixture exercising sanctioned non-allocating footprint math
    res * res * res * 8
}

pub fn near_misses(vol: &SomeVolume, a: usize, b: usize) -> f32 {
    // accessor *calls* named like the fields are fine, as are mixed
    // products, literal cubes and ranges ending in a field-like name
    let sampled = vol.tsdf(1, 2, 3) + vol.weight(1, 2, 3);
    let mixed = a * a * b + 512 * 512 * 512;
    let weight = 4;
    for _ in 0..weight {}
    sampled + mixed as f32
}

#[cfg(test)]
mod tests {
    // synthetic test volumes may materialize small dense grids
    #[test]
    fn builds_a_dense_reference() {
        let res = 16usize;
        let grid = vec![0.0f32; res * res * res];
        assert_eq!(grid.len(), 4096);
    }
}
