//! Strict test-panic policy fixture: in the orchestrator crates,
//! `#[cfg(test)]` items may not `.expect(…)` or `panic!` — tests assert
//! the typed failure surface; `.unwrap()`/`.unwrap_err()` stay exempt.

/// A fallible operation with a typed error, like the engine APIs.
pub fn halve(v: u32) -> Result<u32, &'static str> {
    if v % 2 == 0 {
        Ok(v / 2)
    } else {
        Err("odd")
    }
}

#[cfg(test)]
mod tests {
    use super::halve;

    #[test]
    fn unwrap_is_the_sanctioned_mechanical_assertion() {
        assert_eq!(halve(4).unwrap(), 2);
        assert_eq!(halve(3).unwrap_err(), "odd");
    }

    #[test]
    fn expect_and_prose_panics_are_flagged() {
        let v = halve(4).expect("must divide"); //~ panic-path
        if v != 2 {
            panic!("wrong answer: {v}"); //~ panic-path
        }
        match halve(3) {
            Ok(_) => unreachable!("odd input cannot halve"), //~ panic-path
            Err(e) => assert_eq!(e, "odd"),
        }
    }

    #[test]
    fn waived_test_panics_still_work() {
        // xtask-allow: panic-path — reason: fixture exercising a waived strict-test finding
        let _ = halve(6).expect("waived");
    }
}
