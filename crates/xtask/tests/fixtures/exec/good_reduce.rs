//! Known-good fixture under the exec-pool policy: the pool is the home
//! of the blessed ordered-reduction helpers, so it may reduce raw task
//! results by hand — that is where the submission-order contract lives.

pub fn sum_tasks<T: Send + std::iter::Sum<T>>(threads: usize, tasks: Vec<Task<'_, T>>) -> T {
    run_tasks(threads, tasks).into_iter().sum()
}

pub fn reduce_tasks<T: Send, A>(
    threads: usize,
    tasks: Vec<Task<'_, T>>,
    init: A,
    fold: impl FnMut(A, T) -> A,
) -> A {
    run_tasks(threads, tasks).into_iter().fold(init, fold)
}
