//! Known-good fixture under the exec-pool policy: the allowlisted file
//! may use `unsafe` and spawn threads, but panic and hash-iteration
//! rules still apply in full.

pub fn spawn_worker() {
    std::thread::Builder::new()
        .name("slam-exec-0".into())
        .spawn(|| ())
        // xtask-allow: panic-path — reason: pool construction failure is unrecoverable at startup
        .expect("failed to spawn pool worker");
}

/// The single sanctioned erasure site.
#[allow(unsafe_code)]
pub fn erase(b: Box<dyn FnOnce() + Send + '_>) -> Box<dyn FnOnce() + Send + 'static> {
    unsafe { std::mem::transmute(b) }
}
