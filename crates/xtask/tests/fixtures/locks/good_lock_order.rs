//! Known-good fixture for the global lock-order pass: every path takes
//! the locks in the same order, or narrows the first guard's scope before
//! taking the second. The pass must report nothing here.

use std::sync::{Mutex, RwLock};

pub struct Shared {
    workers: Mutex<Vec<u32>>,
    events: Mutex<Vec<u32>>,
    settings: RwLock<u32>,
}

impl Shared {
    /// The canonical order: `workers`, then `events`.
    pub fn drain(&self) -> usize {
        let w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let e = self.events.lock().unwrap_or_else(|e| e.into_inner());
        w.len() + e.len()
    }

    /// Same order on every other path keeps the graph acyclic.
    pub fn enqueue(&self, item: u32) {
        let w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let mut e = self.events.lock().unwrap_or_else(|e| e.into_inner());
        e.push(item + w.len() as u32);
    }

    /// Dropping the first guard before taking the "wrong-order" second
    /// lock is fine: the guards never overlap.
    pub fn reversed_but_scoped(&self) -> usize {
        let e = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let n = e.len();
        drop(e);
        let w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        w.len() + n
    }

    /// A reader layered under the canonical order adds no cycle.
    pub fn snapshot(&self) -> u32 {
        let s = self.settings.read().unwrap_or_else(|e| e.into_inner());
        *s
    }
}
