//! Known-bad fixture for the global lock-order pass: two code paths take
//! the same pair of locks in opposite orders — the classic deadlock shape.

use std::sync::Mutex;

pub struct Shared {
    workers: Mutex<Vec<u32>>,
    events: Mutex<Vec<u32>>,
}

impl Shared {
    /// Holds `workers` while taking `events`.
    pub fn drain(&self) -> usize {
        let w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let e = self.events.lock().unwrap_or_else(|e| e.into_inner()); //~ lock-order
        w.len() + e.len()
    }

    /// Holds `events` while taking `workers`: the inversion.
    pub fn publish(&self, item: u32) {
        let mut e = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let w = self.workers.lock().unwrap_or_else(|e| e.into_inner()); //~ lock-order
        e.push(item + w.len() as u32);
    }
}
