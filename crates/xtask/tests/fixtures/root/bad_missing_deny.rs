//! Known-bad fixture: a crate root without `#![deny(unsafe_code)]`. //~ unsafe-code

pub fn harmless() {}
