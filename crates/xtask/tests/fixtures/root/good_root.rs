//! Known-good fixture: a crate root carrying the required deny attribute.

#![deny(unsafe_code)]

pub fn harmless() {}
