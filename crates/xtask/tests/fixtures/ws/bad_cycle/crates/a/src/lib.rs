pub fn from_a() -> u32 {
    1
}
