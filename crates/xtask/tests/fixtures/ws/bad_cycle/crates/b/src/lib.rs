pub fn from_b() -> u32 {
    2
}
