//! Names exec-pool internals from outside their home crates: both the
//! protocol type and the raw submission call must be flagged.

pub fn poke(shared: &PoolShared) -> u32 {
    run_tasks(2, shared.jobs())
}
