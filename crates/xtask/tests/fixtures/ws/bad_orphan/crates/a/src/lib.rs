pub mod helper;

pub fn entry() -> u32 {
    helper::offset()
}
