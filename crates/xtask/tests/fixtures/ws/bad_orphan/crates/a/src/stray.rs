pub fn never_compiled() -> u32 {
    0
}
