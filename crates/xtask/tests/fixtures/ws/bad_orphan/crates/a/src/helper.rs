pub fn offset() -> u32 {
    7
}
