pub fn unassigned() {}
