//! A layer-0 crate reaching *up* the DAG: both the manifest dependency
//! and this import must be flagged.

use b::Thing;

pub fn lift(t: Thing) -> Thing {
    t
}
