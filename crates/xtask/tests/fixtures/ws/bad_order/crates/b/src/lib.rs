pub struct Thing;
