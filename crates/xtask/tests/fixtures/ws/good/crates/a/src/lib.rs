//! Layer-1 crate depending strictly downward.

pub mod helper;

pub fn combine(x: u32) -> u32 {
    b::base(x) + helper::offset()
}
