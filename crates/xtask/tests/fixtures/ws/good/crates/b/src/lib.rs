pub fn base(x: u32) -> u32 {
    x * 2
}
