//! Baseline gating: `lint-baseline.json` load, diff and update.
//!
//! The baseline is a checked-in list of accepted findings. A lint run
//! gated with `--baseline` fails on drift in *either* direction: a
//! finding not in the baseline is a regression, and a baseline entry no
//! finding matches is stale (the debt was paid — shrink the file so it
//! cannot mask a future regression at the same location). The intended
//! steady state, enforced since the pass landed, is an empty baseline.

use crate::json::{self, Value};
use crate::lints::Diagnostic;
use std::collections::BTreeMap;

/// One accepted finding: stable lint ID plus location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub id: String,
    pub file: String,
    pub line: u32,
}

impl Entry {
    fn of(d: &Diagnostic) -> Entry {
        Entry {
            id: d.id().to_string(),
            file: d.file.clone(),
            line: d.line,
        }
    }
}

/// Parses a baseline document.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let doc = json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_u32)
        .ok_or("baseline is missing its `version` field")?;
    if version != 1 {
        return Err(format!("unsupported baseline version {version}"));
    }
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("baseline is missing its `findings` array")?;
    findings
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let field = |k: &str| {
                f.get(k)
                    .ok_or_else(|| format!("baseline finding #{i} is missing `{k}`"))
            };
            Ok(Entry {
                id: field("id")?
                    .as_str()
                    .ok_or_else(|| format!("baseline finding #{i}: `id` must be a string"))?
                    .to_string(),
                file: field("file")?
                    .as_str()
                    .ok_or_else(|| format!("baseline finding #{i}: `file` must be a string"))?
                    .to_string(),
                line: field("line")?
                    .as_u32()
                    .ok_or_else(|| format!("baseline finding #{i}: `line` must be an integer"))?,
            })
        })
        .collect()
}

/// Serialises findings as a baseline document (sorted, byte-stable).
pub fn render(findings: &[Diagnostic]) -> String {
    let mut entries: Vec<Entry> = findings.iter().map(Entry::of).collect();
    entries.sort();
    Value::Obj(vec![
        ("version".into(), Value::Num(1.0)),
        (
            "findings".into(),
            Value::Arr(
                entries
                    .into_iter()
                    .map(|e| {
                        Value::Obj(vec![
                            ("id".into(), Value::Str(e.id)),
                            ("file".into(), Value::Str(e.file)),
                            ("line".into(), Value::Num(e.line as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty()
}

/// The two directions of baseline drift.
pub struct Drift {
    /// Findings not covered by the baseline (regressions).
    pub new: Vec<Diagnostic>,
    /// Baseline entries no current finding matches (stale debt).
    pub stale: Vec<Entry>,
}

/// Diffs current findings against the baseline, multiset-style: N
/// accepted findings at one location cover at most N current ones.
pub fn diff(findings: &[Diagnostic], baseline: &[Entry]) -> Drift {
    let mut budget: BTreeMap<Entry, usize> = BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut new = Vec::new();
    for d in findings {
        match budget.get_mut(&Entry::of(d)) {
            Some(n) if *n > 0 => *n -= 1,
            _ => new.push(d.clone()),
        }
    }
    let mut stale = Vec::new();
    for (e, n) in budget {
        for _ in 0..n {
            stale.push(e.clone());
        }
    }
    Drift { new, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint: lint.into(),
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            diag("panic-path", "crates/b/src/lib.rs", 9),
            diag("hash-iter", "crates/a/src/lib.rs", 3),
        ];
        let entries = parse(&render(&findings)).unwrap();
        assert_eq!(entries.len(), 2);
        // sorted: hash-iter (XT003) in crates/a first
        assert_eq!(entries[0].id, "XT003");
        assert_eq!(entries[0].file, "crates/a/src/lib.rs");
        assert_eq!(entries[1].id, "XT004");
    }

    #[test]
    fn drift_detects_both_directions() {
        let accepted = parse(&render(&[diag("hash-iter", "crates/a/src/lib.rs", 3)])).unwrap();
        let current = vec![diag("hash-iter", "crates/a/src/lib.rs", 3)];
        let clean = diff(&current, &accepted);
        assert!(clean.new.is_empty() && clean.stale.is_empty());

        let regressed = vec![
            diag("hash-iter", "crates/a/src/lib.rs", 3),
            diag("threading", "crates/c/src/lib.rs", 7),
        ];
        let d = diff(&regressed, &accepted);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].lint, "threading");

        let paid = diff(&[], &accepted);
        assert_eq!(d.stale.len(), 0);
        assert_eq!(paid.stale.len(), 1);
        assert_eq!(paid.stale[0].id, "XT003");
    }

    #[test]
    fn duplicate_locations_are_counted() {
        let two = vec![
            diag("hash-iter", "crates/a/src/lib.rs", 3),
            diag("hash-iter", "crates/a/src/lib.rs", 3),
        ];
        let accepted = parse(&render(&two)).unwrap();
        let d = diff(&two[..1], &accepted);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1, "one of the two accepted slots is unused");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(parse("{\"version\": 1, \"findings\": [{\"id\": 3}]}").is_err());
    }
}
