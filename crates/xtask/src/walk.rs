//! Repository traversal and per-file lint policy.

use crate::lints::LintPolicy;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe`: the single lifetime-erasure site of
/// the exec pool. Anything else must go through safe abstractions.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/slam-kfusion/src/exec/mod.rs"];

/// Files allowed to create threads: the exec pool itself and its loom
/// model (whose controlled scheduler hosts the model threads).
const THREADING_ALLOWLIST: &[&str] = &[
    "crates/slam-kfusion/src/exec/mod.rs",
    "crates/slam-kfusion/src/exec/model.rs",
    // the campaign server's structural threads: the accept loop and
    // per-connection handlers, and the executor pool that multiplexes
    // campaigns — all of which run *around* the exec pool, never inside
    // it (kernel parallelism still flows through `slam_kfusion::exec`)
    "crates/slam-serve/src/server.rs",
    "crates/slam-serve/src/scheduler.rs",
];

/// Files allowed to panic despite living under `src/`: the loom model
/// checker is compiled only under `--cfg loom` and, like any assertion
/// framework, reports failures *by* panicking the test that drives it.
const PANIC_ALLOWLIST: &[&str] = &["crates/slam-kfusion/src/exec/model.rs"];

/// Files allowed to call the raw pipeline runner: its home module and the
/// evaluation engine that wraps it. Everything else goes through
/// `slambench::engine::EvalEngine` (or carries an explicit waiver).
const ENGINE_ALLOWLIST: &[&str] = &[
    "crates/slambench/src/run.rs",
    "crates/slambench/src/engine.rs",
];

/// Files allowed to name KinectFusion internals (`process_frame*`,
/// `TsdfVolume::new`): the algorithm crate itself (trait impls live next
/// to the internals they wrap) and the generic driver that the trait
/// objects run behind. Everything else drives pipelines through the
/// `SlamAlgorithm` trait.
const ALGORITHM_ALLOWLIST_PREFIX: &str = "crates/slam-kfusion/";
const ALGORITHM_ALLOWLIST: &[&str] = &["crates/slambench/src/run.rs"];

/// Files allowed to size dense `res³` voxel buffers: the volume backends
/// themselves, where the storage layout *is* the implementation. The
/// `.tsdf`/`.weight` field-access sub-rule is wider — the whole algorithm
/// crate — since the `Volume` trait impls and fusion kernels live there.
const VOLUME_ALLOWLIST: &[&str] = &[
    "crates/slam-kfusion/src/tsdf.rs",
    "crates/slam-kfusion/src/tsdf_sparse.rs",
    "crates/slam-kfusion/src/volume.rs",
];

/// Files allowed to read the raw monotonic clock: the `WallClock` shim in
/// `slam-trace` is the single sanctioned `Instant::now()` site. Everything
/// else times through `slam_trace` spans or an injected `Clock`.
const CLOCK_ALLOWLIST: &[&str] = &["crates/slam-trace/src/clock.rs"];

/// Files allowed to name raw socket types: the campaign server crate
/// (HTTP front end + blocking client) and its loopback bench driver.
/// Test sources are additionally allowed by [`classify`] — the
/// integration suite drives the server over real loopback sockets.
const NETWORK_ALLOWLIST_PREFIX: &str = "crates/slam-serve/";
const NETWORK_ALLOWLIST: &[&str] = &["crates/bench/src/bin/bench_serve.rs"];

/// Returns every Rust source file to lint, as repo-relative paths:
/// `crates/*/{src,tests}`, the top-level `tests/` and `examples/` trees
/// and `suite_lib.rs`. Output is sorted for stable diagnostics.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let dir = entry?.path();
            if dir.file_name().is_some_and(|n| n == "xtask") {
                // the lint tool itself necessarily names the patterns it
                // searches for; it is linted by its own self-tests instead
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                collect_rs(&dir.join(sub), &mut out)?;
            }
        }
    }
    for sub in ["tests", "examples"] {
        collect_rs(&root.join(sub), &mut out)?;
    }
    let suite = root.join("suite_lib.rs");
    if suite.is_file() {
        out.push(suite);
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True for test harness sources: integration tests, benches, examples.
/// These run off the hot path, so the pool-reduction and pool-blocking
/// lints (and the global lock-order graph) skip them.
pub fn is_test_source(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.starts_with("examples/")
}

/// Derives the lint policy for a repo-relative path.
pub fn classify(rel: &Path) -> LintPolicy {
    let p = rel.to_string_lossy().replace('\\', "/");
    let is_bin = p.contains("/src/bin/");
    let is_test_source = is_test_source(rel);
    // crate roots: crates/<name>/src/lib.rs plus the workspace-root
    // integration-test library
    let is_crate_root =
        (p.starts_with("crates/") && p.ends_with("/src/lib.rs")) || p == "suite_lib.rs";
    // the orchestrator crates own the typed failure surface (EvalError,
    // RunOutcome, SuiteError); their unit tests must assert it rather
    // than panic with prose, so `.expect(…)`/`panic!` are flagged even
    // inside `#[cfg(test)]` items there
    let is_orchestrator = !is_bin
        && (p.starts_with("crates/slambench/src/") || p.starts_with("crates/slam-dse/src/"));
    LintPolicy {
        allow_threading: THREADING_ALLOWLIST.contains(&p.as_str()),
        allow_unsafe: UNSAFE_ALLOWLIST.contains(&p.as_str()),
        // panics in binaries, benches and test harnesses abort one run,
        // not a library caller; the determinism lints still apply to
        // binaries because their outputs are the recorded experiments
        allow_panics: is_bin || is_test_source || PANIC_ALLOWLIST.contains(&p.as_str()),
        allow_hash: is_test_source,
        allow_run_pipeline: ENGINE_ALLOWLIST.contains(&p.as_str()),
        allow_kfusion_internals: p.starts_with(ALGORITHM_ALLOWLIST_PREFIX)
            || ALGORITHM_ALLOWLIST.contains(&p.as_str()),
        allow_raw_clock: CLOCK_ALLOWLIST.contains(&p.as_str()),
        allow_network: is_test_source
            || p.starts_with(NETWORK_ALLOWLIST_PREFIX)
            || NETWORK_ALLOWLIST.contains(&p.as_str()),
        require_deny_unsafe: is_crate_root,
        strict_test_panics: is_orchestrator,
        allow_cubic_volume_alloc: VOLUME_ALLOWLIST.contains(&p.as_str()),
        allow_volume_fields: p.starts_with("crates/slam-kfusion/"),
        // the exec pool is the home of the blessed ordered-reduction
        // helpers and of the workers themselves; test sources re-derive
        // reductions by hand and simulate stragglers on purpose
        allow_pool_reduce: is_test_source || p.starts_with("crates/slam-kfusion/src/exec/"),
        allow_pool_blocking: is_test_source || p.starts_with("crates/slam-kfusion/src/exec/"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_pool_files_get_their_allowances() {
        let exec = classify(Path::new("crates/slam-kfusion/src/exec/mod.rs"));
        assert!(exec.allow_unsafe && exec.allow_threading);
        assert!(!exec.allow_panics && !exec.allow_hash);
        let model = classify(Path::new("crates/slam-kfusion/src/exec/model.rs"));
        assert!(model.allow_threading && !model.allow_unsafe);
        assert!(model.allow_panics, "the model checker asserts by panicking");
    }

    #[test]
    fn library_source_is_fully_strict() {
        let p = classify(Path::new("crates/slam-math/src/solve.rs"));
        assert_eq!(p, LintPolicy::lib());
    }

    #[test]
    fn crate_roots_require_deny_unsafe() {
        assert!(classify(Path::new("crates/slam-math/src/lib.rs")).require_deny_unsafe);
        assert!(classify(Path::new("suite_lib.rs")).require_deny_unsafe);
        assert!(!classify(Path::new("crates/slam-math/src/mat.rs")).require_deny_unsafe);
    }

    #[test]
    fn bins_and_tests_may_panic_but_not_thread() {
        let b = classify(Path::new("crates/bench/src/bin/bench_kernels.rs"));
        assert!(b.allow_panics && !b.allow_threading && !b.allow_hash);
        let t = classify(Path::new("crates/slam-kfusion/tests/determinism.rs"));
        assert!(t.allow_panics && t.allow_hash && !t.allow_threading);
    }

    #[test]
    fn only_run_and_engine_may_call_the_raw_runner() {
        assert!(classify(Path::new("crates/slambench/src/run.rs")).allow_run_pipeline);
        assert!(classify(Path::new("crates/slambench/src/engine.rs")).allow_run_pipeline);
        assert!(!classify(Path::new("crates/slambench/src/explore.rs")).allow_run_pipeline);
        assert!(!classify(Path::new("crates/bench/src/bin/headline.rs")).allow_run_pipeline);
        assert!(!classify(Path::new("tests/determinism.rs")).allow_run_pipeline);
    }

    #[test]
    fn only_the_algorithm_crate_and_driver_may_name_kfusion_internals() {
        assert!(classify(Path::new("crates/slam-kfusion/src/pipeline.rs")).allow_kfusion_internals);
        assert!(
            classify(Path::new("crates/slam-kfusion/tests/odometry.rs")).allow_kfusion_internals
        );
        assert!(classify(Path::new("crates/slambench/src/run.rs")).allow_kfusion_internals);
        assert!(!classify(Path::new("crates/slambench/src/engine.rs")).allow_kfusion_internals);
        assert!(!classify(Path::new("crates/bench/benches/kernels.rs")).allow_kfusion_internals);
        assert!(!classify(Path::new("tests/determinism.rs")).allow_kfusion_internals);
    }

    #[test]
    fn only_the_volume_backends_may_size_dense_buffers() {
        // cubic sizing: just the backend files, not the rest of the crate
        assert!(classify(Path::new("crates/slam-kfusion/src/tsdf.rs")).allow_cubic_volume_alloc);
        assert!(
            classify(Path::new("crates/slam-kfusion/src/tsdf_sparse.rs")).allow_cubic_volume_alloc
        );
        assert!(classify(Path::new("crates/slam-kfusion/src/volume.rs")).allow_cubic_volume_alloc);
        assert!(!classify(Path::new("crates/slam-kfusion/src/mesh.rs")).allow_cubic_volume_alloc);
        assert!(!classify(Path::new("crates/slambench/src/fleet.rs")).allow_cubic_volume_alloc);
        // raw voxel-array fields: the whole algorithm crate, nothing else
        assert!(classify(Path::new("crates/slam-kfusion/src/mesh.rs")).allow_volume_fields);
        assert!(!classify(Path::new("crates/slambench/src/engine.rs")).allow_volume_fields);
        assert!(!classify(Path::new("tests/determinism.rs")).allow_volume_fields);
    }

    #[test]
    fn orchestrator_sources_get_the_strict_test_panic_policy() {
        assert!(classify(Path::new("crates/slambench/src/engine.rs")).strict_test_panics);
        assert!(classify(Path::new("crates/slam-dse/src/active.rs")).strict_test_panics);
        // library crates outside the orchestration layer keep the plain
        // policy, as do integration tests and binaries
        assert!(!classify(Path::new("crates/slam-math/src/solve.rs")).strict_test_panics);
        assert!(!classify(Path::new("crates/slambench/tests/explore.rs")).strict_test_panics);
        assert!(!classify(Path::new("tests/fault_tolerance.rs")).strict_test_panics);
        assert!(!classify(Path::new("crates/bench/src/bin/headline.rs")).strict_test_panics);
    }

    #[test]
    fn only_the_serve_crate_and_its_drivers_may_open_sockets() {
        // the whole serving crate may name socket types…
        assert!(classify(Path::new("crates/slam-serve/src/server.rs")).allow_network);
        assert!(classify(Path::new("crates/slam-serve/src/client.rs")).allow_network);
        assert!(classify(Path::new("crates/slam-serve/src/bin/slam_serve.rs")).allow_network);
        // …plus the loopback bench driver and test sources
        assert!(classify(Path::new("crates/bench/src/bin/bench_serve.rs")).allow_network);
        assert!(classify(Path::new("tests/serve.rs")).allow_network);
        // everything else is socket-free
        assert!(!classify(Path::new("crates/slambench/src/engine.rs")).allow_network);
        assert!(!classify(Path::new("crates/bench/src/bin/headline.rs")).allow_network);
        assert!(!classify(Path::new("crates/slam-kfusion/src/pipeline.rs")).allow_network);
    }

    #[test]
    fn serve_structural_threads_are_allowlisted_narrowly() {
        // only the accept loop / connection handlers and the executor
        // pool may spawn; the rest of the crate stays thread-free
        assert!(classify(Path::new("crates/slam-serve/src/server.rs")).allow_threading);
        assert!(classify(Path::new("crates/slam-serve/src/scheduler.rs")).allow_threading);
        assert!(!classify(Path::new("crates/slam-serve/src/campaign.rs")).allow_threading);
        assert!(!classify(Path::new("crates/slam-serve/src/client.rs")).allow_threading);
    }

    #[test]
    fn only_the_wall_clock_shim_may_read_the_raw_clock() {
        assert!(classify(Path::new("crates/slam-trace/src/clock.rs")).allow_raw_clock);
        assert!(!classify(Path::new("crates/slam-trace/src/tracer.rs")).allow_raw_clock);
        assert!(!classify(Path::new("crates/bench/src/bin/bench_kernels.rs")).allow_raw_clock);
        assert!(!classify(Path::new("crates/slam-kfusion/src/pipeline.rs")).allow_raw_clock);
        assert!(!classify(Path::new("tests/trace.rs")).allow_raw_clock);
    }
}
