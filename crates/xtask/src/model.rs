//! The workspace model: crates, manifests, files, items and imports.
//!
//! Built once per lint run from the same lexer the per-file lints use,
//! the model gives the workspace-level passes ([`crate::layers`],
//! [`crate::concurrency`]) a semantic view of the repository:
//!
//! * every workspace crate with its manifest dependencies (normal and
//!   dev) and their source lines;
//! * every tracked source file, attributed to its crate, with top-level
//!   item extraction (`fn`/`struct`/`enum`/`trait`/`impl`/`mod`/…),
//!   `use`-tree and qualified-path imports of workspace crates, and
//!   `mod name;` declarations resolved to candidate files.
//!
//! The manifest parser speaks the TOML subset the workspace actually
//! uses: `[section]` headers and `key = value` / `key.workspace = true`
//! entries. That is deliberate — `xtask` stays dependency-free.

use crate::lexer::Token;
use crate::lints::SourceFile;
use crate::walk;
use std::io;
use std::path::{Path, PathBuf};

/// One dependency edge from a crate's manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// The dependency's crate name (after `package = …` renames).
    pub name: String,
    /// 1-based line in the manifest.
    pub line: u32,
    /// From `[dev-dependencies]`.
    pub dev: bool,
}

/// One workspace crate.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package]`.
    pub name: String,
    /// Repo-relative manifest path (`crates/x/Cargo.toml`, `Cargo.toml`).
    pub manifest: String,
    /// Repo-relative source prefix (`crates/x/`, `""` for the root).
    pub prefix: String,
    /// All manifest dependencies (workspace-internal and external).
    pub deps: Vec<Dep>,
}

/// One extracted top-level item.
#[derive(Debug, Clone)]
pub struct Item {
    /// `fn`, `struct`, `enum`, `trait`, `impl`, `mod`, `type`, `const`,
    /// `static` or `use`.
    pub kind: String,
    /// Item name (for `impl`: the self type; empty when unnameable).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
}

/// One tracked source file.
pub struct FileModel {
    /// Repo-relative path.
    pub rel: PathBuf,
    /// Owning crate's package name.
    pub crate_name: String,
    /// Lexed source, shared with the per-file lints.
    pub src: SourceFile,
    /// Top-level items.
    pub items: Vec<Item>,
    /// Workspace-crate imports as (crate name, line): `use slam_math::…`
    /// trees and inline `slam_math::…` qualified paths.
    pub imports: Vec<(String, u32)>,
    /// `mod name;` declarations (any nesting depth) as (name, line).
    pub mod_decls: Vec<(String, u32)>,
}

/// The whole-workspace model.
pub struct Model {
    pub crates: Vec<CrateInfo>,
    pub files: Vec<FileModel>,
}

impl Model {
    /// Builds the model for the repository at `root`. The file walk is
    /// the same one the per-file lints use ([`walk::collect_sources`]).
    pub fn build(root: &Path) -> io::Result<Model> {
        let mut crates = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .map(|e| e.map(|e| e.path()))
                .collect::<io::Result<_>>()?;
            dirs.sort();
            for dir in dirs {
                // xtask is a standalone workspace linted by its own tests
                if dir.file_name().is_some_and(|n| n == "xtask") {
                    continue;
                }
                let manifest = dir.join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let text = std::fs::read_to_string(&manifest)?;
                let rel_dir = format!(
                    "crates/{}/",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                );
                crates.push(parse_manifest(
                    &text,
                    &format!("{rel_dir}Cargo.toml"),
                    &rel_dir,
                ));
            }
        }
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let text = std::fs::read_to_string(&root_manifest)?;
            let info = parse_manifest(&text, "Cargo.toml", "");
            if !info.name.is_empty() {
                crates.push(info);
            }
        }
        let crate_names: Vec<String> = crates.iter().map(|c| c.name.clone()).collect();
        let mut files = Vec::new();
        for rel in walk::collect_sources(root)? {
            let text = std::fs::read_to_string(root.join(&rel))?;
            let src = SourceFile::new(&rel, &text);
            let rel_str = src.path.clone();
            let crate_name = crates
                .iter()
                .filter(|c| !c.prefix.is_empty() && rel_str.starts_with(&c.prefix))
                .map(|c| c.name.clone())
                .next()
                .or_else(|| {
                    crates
                        .iter()
                        .find(|c| c.prefix.is_empty())
                        .map(|c| c.name.clone())
                })
                .unwrap_or_default();
            let items = extract_items(&src.tokens);
            let imports = extract_imports(&src.tokens, &crate_names);
            let mod_decls = items
                .iter()
                .filter(|i| i.kind == "mod")
                .map(|i| (i.name.clone(), i.line))
                .collect();
            files.push(FileModel {
                rel,
                crate_name,
                src,
                items,
                imports,
                mod_decls,
            });
        }
        Ok(Model { crates, files })
    }

    /// The crate record for a package name.
    pub fn krate(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// `slam-math` ↔ `slam_math`: manifest names use dashes, paths in code
/// use underscores.
pub fn norm(name: &str) -> String {
    name.replace('-', "_")
}

/// Parses the TOML subset the workspace manifests use.
fn parse_manifest(text: &str, manifest: &str, prefix: &str) -> CrateInfo {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        match section.as_str() {
            "package" if key == "name" => {
                name = value.trim().trim_matches('"').to_string();
            }
            "dependencies" | "dev-dependencies" => {
                // `serde.workspace = true` / `rand = "0.8"` /
                // `x = { package = "y", … }`
                let dep_key = key.split('.').next().unwrap_or(key).trim();
                let dep_name = value
                    .split_once("package")
                    .and_then(|(_, rest)| rest.split('"').nth(1))
                    .unwrap_or(dep_key);
                deps.push(Dep {
                    name: dep_name.to_string(),
                    line: (i + 1) as u32,
                    dev: section == "dev-dependencies",
                });
            }
            _ => {}
        }
    }
    CrateInfo {
        name,
        manifest: manifest.to_string(),
        prefix: prefix.to_string(),
        deps,
    }
}

/// Extracts top-level items (brace depth 0) plus `mod` declarations at
/// any depth — a `#[cfg(test)] mod tests { mod helper; }` still anchors
/// file resolution.
fn extract_items(toks: &[Token]) -> Vec<Item> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        let kind = match t.ident() {
            Some(
                k @ ("fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "type" | "const"
                | "static" | "use"),
            ) => k,
            _ => {
                i += 1;
                continue;
            }
        };
        if depth > 0 && kind != "mod" {
            i += 1;
            continue;
        }
        let (name, next) = item_name(toks, i, kind);
        out.push(Item {
            kind: kind.to_string(),
            name,
            line: t.line,
        });
        i = next;
    }
    out
}

/// The name of the item whose keyword is at `kw`, and the index to
/// resume scanning from (just past the name — bodies still scan so
/// nested `mod` declarations are seen).
fn item_name(toks: &[Token], kw: usize, kind: &str) -> (String, usize) {
    let mut i = kw + 1;
    if kind == "impl" {
        // `impl<T> Ty<T>` / `impl Trait for Ty`: the self type is the
        // ident after `for` when present, else the first ident after the
        // generic parameter list
        if toks.get(i).is_some_and(|t| t.is_punct('<')) {
            i = crate::determinism::skip_balanced(toks, i, '<', '>');
        }
        let mut name = String::new();
        while let Some(t) = toks.get(i) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_ident("for") {
                name.clear();
            } else if name.is_empty() {
                if let Some(id) = t.ident() {
                    name = id.to_string();
                }
            }
            i += 1;
        }
        return (name, i);
    }
    // `use a::b::{c, d};` → record the leading segment as the name
    let name = toks
        .get(i)
        .and_then(Token::ident)
        .unwrap_or_default()
        .to_string();
    (name, i + 1)
}

/// Workspace-crate imports: `use slam_math::…` and inline qualified
/// `slam_math::…` paths, deduplicated per (crate, line).
fn extract_imports(toks: &[Token], crate_names: &[String]) -> Vec<(String, u32)> {
    let normed: Vec<(String, String)> = crate_names.iter().map(|n| (norm(n), n.clone())).collect();
    let mut out: Vec<(String, u32)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let Some((_, real)) = normed.iter().find(|(n, _)| n == ident) else {
            continue;
        };
        // require a path use: `slam_math ::` (or `use slam_math;`)
        let is_path = toks
            .get(i + 1)
            .zip(toks.get(i + 2))
            .is_some_and(|(a, b)| a.is_punct(':') && b.is_punct(':'));
        let is_use_decl = i > 0
            && toks[i - 1].is_ident("use")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(';'));
        // but not a segment of a longer path (`foo::slam_math_like`)
        let mid_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        if (is_path || is_use_decl) && !mid_path {
            let entry = (real.clone(), t.line);
            if !out.contains(&entry) {
                out.push(entry);
            }
        }
    }
    out
}

/// Resolves a `mod name;` declared in `file` to its candidate relative
/// paths (`dir/name.rs`, `dir/name/mod.rs`), following the 2018 rules.
pub fn resolve_mod(file: &Path, name: &str) -> Vec<PathBuf> {
    let dir = file.parent().unwrap_or_else(|| Path::new(""));
    let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let base = if matches!(stem, "lib" | "main" | "mod") {
        dir.to_path_buf()
    } else {
        dir.join(stem)
    };
    vec![
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_subset_parses_names_and_deps() {
        let text = "[package]\nname = \"slam-scene\"\n\n[dependencies]\n\
                    slam-math.workspace = true\nrand.workspace = true\n\n\
                    [dev-dependencies]\nproptest.workspace = true\n";
        let info = parse_manifest(text, "crates/slam-scene/Cargo.toml", "crates/slam-scene/");
        assert_eq!(info.name, "slam-scene");
        let names: Vec<(&str, bool)> = info.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("slam-math", false), ("rand", false), ("proptest", true)]
        );
        assert_eq!(info.deps[0].line, 5);
    }

    #[test]
    fn items_and_imports_are_extracted() {
        let src = "use slam_math::Mat4;\npub struct Frame;\nimpl Frame { fn new() {} }\n\
                   pub fn render(m: &slam_trace::Tracer) {}\nmod helper;\n\
                   #[cfg(test)]\nmod tests { mod fixtures; }\n";
        let toks = crate::lexer::lex(src);
        let items = extract_items(&toks);
        let kinds: Vec<(&str, &str)> = items
            .iter()
            .map(|i| (i.kind.as_str(), i.name.as_str()))
            .collect();
        assert!(kinds.contains(&("struct", "Frame")));
        assert!(kinds.contains(&("impl", "Frame")));
        assert!(kinds.contains(&("fn", "render")));
        assert!(kinds.contains(&("mod", "helper")));
        assert!(kinds.contains(&("mod", "fixtures")), "{kinds:?}");
        let names = vec!["slam-math".to_string(), "slam-trace".to_string()];
        let imports = extract_imports(&toks, &names);
        assert_eq!(
            imports,
            vec![("slam-math".into(), 1), ("slam-trace".into(), 4)]
        );
    }

    #[test]
    fn impl_trait_for_type_names_the_self_type() {
        let toks = crate::lexer::lex("impl<T: Clone> Reducer for Pool<T> { }");
        let items = extract_items(&toks);
        assert_eq!(items[0].kind, "impl");
        assert_eq!(items[0].name, "Pool");
    }

    #[test]
    fn mod_resolution_follows_2018_rules() {
        let from_root = resolve_mod(Path::new("crates/x/src/lib.rs"), "exec");
        assert_eq!(
            from_root,
            vec![
                PathBuf::from("crates/x/src/exec.rs"),
                PathBuf::from("crates/x/src/exec/mod.rs")
            ]
        );
        let from_child = resolve_mod(Path::new("crates/x/src/exec.rs"), "sync");
        assert_eq!(
            from_child,
            vec![
                PathBuf::from("crates/x/src/exec/sync.rs"),
                PathBuf::from("crates/x/src/exec/sync/mod.rs")
            ]
        );
    }
}
