//! Correctness tooling for the `slambench-rs` workspace.
//!
//! The binary front-end (`cargo xtask lint`) walks the repository and
//! enforces the project's determinism and safety invariants at the source
//! level; see [`lints`] for the individual lints and `DESIGN.md` for the
//! rationale. The crate is dependency-free by design so it builds in
//! offline and minimal environments before the main workspace resolves.

#![deny(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod walk;

use lints::{Diagnostic, SourceFile};
use std::path::Path;

/// Lints every tracked source file under `root`, returning all findings
/// sorted by file and line.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let sources = walk::collect_sources(root)?;
    // an empty walk means `root` is not the workspace (every tracked tree
    // is optional individually, so a bogus path would otherwise report a
    // clean pass) — fail loudly instead of vacuously succeeding
    if sources.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no Rust sources found under `{}`", root.display()),
        ));
    }
    let mut out = Vec::new();
    for rel in sources {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let src = SourceFile::new(&rel, &text);
        out.extend(lints::lint_file(&src, walk::classify(&rel)));
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(out)
}
