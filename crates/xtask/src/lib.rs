//! Correctness tooling for the `slambench-rs` workspace.
//!
//! The binary front-end (`cargo xtask lint`) runs a multi-pass static
//! analysis over the repository and enforces the project's determinism
//! and safety invariants at the source level:
//!
//! * per-file invariant lints ([`lints`], IDs `XT0xx`);
//! * the crate-layer pass over the [`model`] workspace model
//!   ([`layers`], `XT1xx`);
//! * the determinism taint pass ([`determinism`], `XT2xx`);
//! * the concurrency pass ([`concurrency`], `XT3xx`).
//!
//! Findings carry stable IDs from the [`registry`], can be exported as
//! SARIF 2.1 ([`sarif`]) and are gated against a checked-in
//! `lint-baseline.json` ([`baseline`]). See `DESIGN.md` § Static
//! analysis for the rationale. The crate is dependency-free by design so
//! it builds in offline and minimal environments before the main
//! workspace resolves.

#![deny(unsafe_code)]

pub mod baseline;
pub mod concurrency;
pub mod determinism;
pub mod json;
pub mod layers;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod registry;
pub mod sarif;
pub mod walk;

use lints::Diagnostic;
use std::path::Path;

/// Runs every pass over the repository at `root`, returning all findings
/// stable-sorted by (path, line, lint ID).
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let model = model::Model::build(root)?;
    // an empty walk means `root` is not the workspace (every tracked tree
    // is optional individually, so a bogus path would otherwise report a
    // clean pass) — fail loudly instead of vacuously succeeding
    if model.files.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no Rust sources found under `{}`", root.display()),
        ));
    }
    let mut out = Vec::new();
    // per-file passes (invariants, determinism taint, pool-blocking)
    for f in &model.files {
        out.extend(lints::lint_file(&f.src, walk::classify(&f.rel)));
    }
    // workspace passes: crate layers and the global lock-order graph
    layers::lint_layers(&model, layers::LAYERS, &mut out);
    layers::lint_internal(&model, layers::INTERNAL_RULES, &mut out);
    layers::lint_mod_orphans(&model, &mut out);
    let non_test: Vec<&lints::SourceFile> = model
        .files
        .iter()
        .filter(|f| !walk::is_test_source(&f.rel))
        .map(|f| &f.src)
        .collect();
    out.extend(concurrency::lint_lock_order(&non_test));
    out.sort_by(|a, b| (&a.file, a.line, a.id()).cmp(&(&b.file, b.line, b.id())));
    Ok(out)
}
