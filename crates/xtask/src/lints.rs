//! The invariant lints.
//!
//! Each lint enforces one project-wide determinism or safety invariant
//! (see the "Correctness tooling" section of `DESIGN.md`):
//!
//! * **`threading`** — no ad-hoc threading (`std::thread::spawn`,
//!   `thread::Builder`, `rayon`, `crossbeam`) outside the shared exec
//!   pool. Every parallel kernel must go through `slam_kfusion::exec`, or
//!   thread budgets and deterministic banding silently stop composing.
//! * **`unsafe-code`** — no `unsafe` outside the explicit allowlist (the
//!   single lifetime-erasure site in the exec pool), and every crate root
//!   must carry `#![deny(unsafe_code)]` so the compiler enforces the same
//!   invariant belt-and-braces.
//! * **`hash-iter`** — no `HashMap`/`HashSet` in library code: their
//!   iteration order is randomised per process, so any float accumulation
//!   or output ordering fed from one is a nondeterminism hazard. Use
//!   `BTreeMap`/`BTreeSet` (or an explicit waiver when order provably
//!   never escapes).
//! * **`panic-path`** — no `unwrap()`/`expect()`/`panic!`-family calls in
//!   library hot paths; return `Result` or use a documented-invariant
//!   `debug_assert!`. Binaries, tests and `#[cfg(test)]` modules are
//!   exempt; `assert!`-style *precondition* checks with messages are the
//!   sanctioned entry-point contract style and are not flagged. In the
//!   orchestrator crates (`slambench`, `slam-dse`) a *strict test* policy
//!   additionally flags `.expect(…)` and the `panic!` family inside
//!   `#[cfg(test)]` items: those crates own the typed failure surface
//!   (`EvalError`, `RunOutcome`, `SuiteError`), so their tests assert
//!   typed outcomes rather than burying failure semantics in prose panic
//!   messages. Bare `.unwrap()`/`.unwrap_err()` stay exempt as the
//!   mechanical "must be Ok/Some" assertion.
//! * **`engine-only`** — no direct `run_pipeline` /
//!   `run_pipeline_with_threads` / `run_pipeline_traced` calls outside
//!   `slambench::run` and `slambench::engine`. Every evaluation must
//!   flow through the `EvalEngine`, or its run cache and batch
//!   scheduling silently stop covering the workload (and duplicated
//!   orchestration loops creep back in).
//! * **`network-boundary`** — no raw socket types (`TcpListener`,
//!   `TcpStream`, `UdpSocket`) outside `crates/slam-serve/`, its loopback
//!   `bench_serve` driver and test sources. The campaign server owns the
//!   network surface; a socket anywhere else bypasses its validation
//!   boundary and never lands in the trace profile.
//! * **`trace-clock`** — no direct `Instant::now()` outside
//!   `slam_trace::clock`. Raw clock reads scattered through the code
//!   cannot be mocked, aggregated, or exported; all timing flows
//!   through `slam_trace` spans (or a `Clock` handle), so every
//!   measurement lands in the same profile and deterministic tests can
//!   inject a `MockClock`.
//!
//! A finding can be waived with an inline comment on the same or the
//! preceding line:
//!
//! ```text
//! // xtask-allow: panic-path — reason: Index contract requires a panic here
//! ```
//!
//! The `reason:` clause is mandatory; a bare waiver is itself a finding.
//! The determinism-taint and concurrency passes live in
//! [`crate::determinism`] and [`crate::concurrency`]; the crate-layer
//! pass in [`crate::layers`] over the [`crate::model`] workspace model.

use crate::lexer::{cfg_test_spans, lex, Token};
use crate::registry;
use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired (`threading`, `unsafe-code`, `hash-iter`,
    /// `panic-path`, or `waiver` for malformed waivers).
    pub lint: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The stable registry ID of the lint that fired (`XT004`, …).
    pub fn id(&self) -> &'static str {
        registry::id_for(&self.lint)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}/{}]: {}", self.id(), self.lint, self.message)?;
        write!(f, "  --> {}:{}", self.file, self.line)
    }
}

/// Per-file lint policy, derived from the file's path by
/// [`crate::walk::classify`] (or set directly by the fixture self-tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintPolicy {
    /// File may spawn threads (the exec pool itself and its loom model).
    pub allow_threading: bool,
    /// File may contain `unsafe` (the single exec-pool erasure site).
    pub allow_unsafe: bool,
    /// Panic-family calls are allowed (binaries, benches, test sources).
    pub allow_panics: bool,
    /// `HashMap`/`HashSet` are allowed (binaries and test sources, where
    /// nondeterministic iteration cannot leak into library outputs).
    pub allow_hash: bool,
    /// File may call the raw pipeline runner directly (`slambench::run`
    /// itself and the `slambench::engine` it is wrapped by).
    pub allow_run_pipeline: bool,
    /// File may name KinectFusion internals (`process_frame*`,
    /// `TsdfVolume::new`) — the algorithm crate itself and the generic
    /// driver in `slambench::run`.
    pub allow_kfusion_internals: bool,
    /// File may read the raw monotonic clock (`Instant::now()`) — only
    /// `slam_trace::clock`, where `WallClock` wraps it.
    pub allow_raw_clock: bool,
    /// File may name raw socket types (`TcpListener`, `TcpStream`,
    /// `UdpSocket`) — the campaign server crate, its loopback bench
    /// driver, and test sources.
    pub allow_network: bool,
    /// File is a crate root and must carry `#![deny(unsafe_code)]`.
    pub require_deny_unsafe: bool,
    /// `#[cfg(test)]` items are held to the orchestrator test policy:
    /// `.expect(…)` and the `panic!` family are flagged even inside
    /// tests (`.unwrap()`/`.unwrap_err()` stay exempt).
    pub strict_test_panics: bool,
    /// File may size dense `res³` voxel buffers — only the volume
    /// backends themselves (`tsdf.rs`, `tsdf_sparse.rs`, `volume.rs`),
    /// where the dense layout is the implementation.
    pub allow_cubic_volume_alloc: bool,
    /// File may access the raw `.tsdf` / `.weight` voxel arrays — the
    /// algorithm crate, where the `Volume` trait impls live.
    pub allow_volume_fields: bool,
    /// File may reduce pool results ad hoc: the exec pool itself (home of
    /// the blessed ordered-reduction helpers) and test sources, whose
    /// determinism suites deliberately re-derive reductions by hand.
    pub allow_pool_reduce: bool,
    /// File may block inside pool-task closures: the exec pool internals
    /// and test sources (simulated stragglers legitimately sleep).
    pub allow_pool_blocking: bool,
}

impl LintPolicy {
    /// The strictest policy: what applies to library source files.
    pub fn lib() -> LintPolicy {
        LintPolicy {
            allow_threading: false,
            allow_unsafe: false,
            allow_panics: false,
            allow_hash: false,
            allow_run_pipeline: false,
            allow_kfusion_internals: false,
            allow_raw_clock: false,
            allow_network: false,
            require_deny_unsafe: false,
            strict_test_panics: false,
            allow_cubic_volume_alloc: false,
            allow_volume_fields: false,
            allow_pool_reduce: false,
            allow_pool_blocking: false,
        }
    }
}

/// A lexed source file ready for linting.
pub struct SourceFile {
    /// Repo-relative path (used in diagnostics).
    pub path: String,
    /// Raw source lines (for waiver comments).
    pub(crate) lines: Vec<String>,
    /// Token stream with comments and strings stripped.
    pub(crate) tokens: Vec<Token>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` as the contents of `path`.
    pub fn new(path: &Path, text: &str) -> SourceFile {
        let tokens = lex(text);
        let test_spans = cfg_test_spans(&tokens);
        SourceFile {
            path: path.to_string_lossy().replace('\\', "/"),
            lines: text.lines().map(str::to_string).collect(),
            tokens,
            test_spans,
        }
    }

    pub(crate) fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True if `line` (or the line above it) carries a well-formed
    /// `xtask-allow:` waiver naming `lint`.
    pub(crate) fn waived(&self, line: u32, lint: &str) -> bool {
        let idx = line as usize; // 1-based
        [idx.checked_sub(1), idx.checked_sub(2)]
            .into_iter()
            .flatten()
            .filter_map(|i| self.lines.get(i))
            .filter_map(|l| parse_waiver(l))
            .any(|(names, reason)| {
                reason.is_some_and(|r| !r.is_empty()) && names.iter().any(|n| n == lint)
            })
    }
}

/// Parses an `// xtask-allow: lint-a, lint-b — reason: text` comment.
/// Returns the waived lint names and the justification after the
/// mandatory `reason:` marker (`None` when the marker is absent).
fn parse_waiver(line: &str) -> Option<(Vec<String>, Option<String>)> {
    let at = line.find("xtask-allow:")?;
    let rest = &line[at + "xtask-allow:".len()..];
    // lint names: leading comma-separated kebab-case words; everything
    // after them (conventionally set off with an em dash) must carry a
    // literal `reason:` clause with the justification
    let mut names = Vec::new();
    let mut expecting_name = true;
    for part in rest.split_whitespace() {
        let trimmed = part.trim_matches(',');
        if expecting_name && registry::by_name(trimmed).is_some() {
            names.push(trimmed.to_string());
            // a trailing comma announces another lint name
            expecting_name = part.ends_with(',');
        } else {
            break;
        }
    }
    let reason = rest
        .find("reason:")
        .map(|r| rest[r + "reason:".len()..].trim().to_string());
    Some((names, reason))
}

/// Runs every lint over one file under the given policy.
pub fn lint_file(src: &SourceFile, policy: LintPolicy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_waiver_hygiene(src, &mut out);
    if !policy.allow_threading {
        lint_threading(src, &mut out);
    }
    if !policy.allow_unsafe {
        lint_unsafe(src, &mut out);
    }
    if policy.require_deny_unsafe {
        lint_deny_unsafe_attr(src, &mut out);
    }
    if !policy.allow_hash {
        lint_hash_iter(src, &mut out);
    }
    if !policy.allow_panics {
        lint_panic_path(src, policy.strict_test_panics, &mut out);
    }
    if !policy.allow_run_pipeline {
        lint_engine_only(src, &mut out);
    }
    if !policy.allow_kfusion_internals {
        lint_algorithm_boundary(src, &mut out);
    }
    if !policy.allow_raw_clock {
        lint_trace_clock(src, &mut out);
    }
    if !policy.allow_network {
        lint_network_boundary(src, &mut out);
    }
    if !policy.allow_cubic_volume_alloc || !policy.allow_volume_fields {
        lint_volume_boundary(src, policy, &mut out);
    }
    if !policy.allow_pool_reduce {
        crate::determinism::lint_float_reduce(src, &mut out);
    }
    crate::determinism::lint_entropy_source(src, &mut out);
    if !policy.allow_pool_blocking {
        crate::concurrency::lint_pool_blocking(src, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.id()).cmp(&(b.line, b.id())));
    out
}

/// Reports malformed waivers: an `xtask-allow:` comment with no known
/// lint name or no `reason:` clause is dead weight that would silently
/// stop protecting the line it sits on.
fn lint_waiver_hygiene(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if let Some((names, reason)) = parse_waiver(line) {
            let message = if names.is_empty() {
                let known: Vec<&str> = registry::LINTS.iter().map(|l| l.name).collect();
                format!(
                    "xtask-allow waiver names no known lint (expected one of: {})",
                    known.join(", ")
                )
            } else {
                match reason {
                    Some(r) if !r.is_empty() => continue,
                    Some(_) => "xtask-allow waiver has an empty `reason:` clause; \
                                justify the exemption"
                        .into(),
                    None => "xtask-allow waiver is missing its `reason:` clause \
                             (grammar: `xtask-allow: lint-name — reason: <justification>`)"
                        .into(),
                }
            };
            out.push(Diagnostic {
                lint: "waiver".into(),
                file: src.path.clone(),
                line: (i + 1) as u32,
                message,
            });
        }
    }
}

/// `threading`: flags `thread::spawn`, `thread::Builder`, `rayon` and
/// `crossbeam` outside the exec pool. `#[cfg(test)]` items are exempt.
fn lint_threading(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let hit = match ident {
            "rayon" | "crossbeam" => Some(format!(
                "ad-hoc threading via `{ident}`: all parallelism must go through \
                 `slam_kfusion::exec` so thread budgets and deterministic banding compose"
            )),
            "thread" => {
                // `thread :: spawn` or `thread :: Builder`
                let path_target = toks
                    .get(i + 1)
                    .zip(toks.get(i + 2))
                    .filter(|(a, b)| a.is_punct(':') && b.is_punct(':'))
                    .and_then(|_| toks.get(i + 3))
                    .and_then(Token::ident);
                match path_target {
                    Some(name @ ("spawn" | "Builder")) => Some(format!(
                        "ad-hoc threading via `thread::{name}`: all parallelism must go \
                         through `slam_kfusion::exec` so thread budgets and \
                         deterministic banding compose"
                    )),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(message) = hit {
            if src.in_test_span(t.line) || src.waived(t.line, "threading") {
                continue;
            }
            out.push(Diagnostic {
                lint: "threading".into(),
                file: src.path.clone(),
                line: t.line,
                message,
            });
        }
    }
}

/// `unsafe-code`: flags any `unsafe` token outside the allowlist. No
/// `#[cfg(test)]` exemption — tests have no business being unsafe either.
fn lint_unsafe(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &src.tokens {
        if t.is_ident("unsafe") && !src.waived(t.line, "unsafe-code") {
            out.push(Diagnostic {
                lint: "unsafe-code".into(),
                file: src.path.clone(),
                line: t.line,
                message: "`unsafe` outside the exec-pool allowlist: the workspace invariant \
                          is a single machine-checked erasure site in `exec`"
                    .into(),
            });
        }
    }
}

/// `unsafe-code` (crate roots): requires a literal `#![deny(unsafe_code)]`
/// so the compiler enforces the allowlist even if this tool is not run.
fn lint_deny_unsafe_attr(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    let found = toks.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("deny")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    });
    if !found {
        out.push(Diagnostic {
            lint: "unsafe-code".into(),
            file: src.path.clone(),
            line: 1,
            message: "crate root is missing `#![deny(unsafe_code)]`: every crate must \
                      deny unsafe at the compiler level, with the single scoped allow \
                      living in `slam-kfusion/src/exec`"
                .into(),
        });
    }
}

/// `hash-iter`: flags `HashMap`/`HashSet` in library code. Iteration
/// order is randomised per process; feeding it into float accumulation or
/// output ordering silently breaks run-to-run determinism.
fn lint_hash_iter(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &src.tokens {
        let Some(ident) = t.ident() else { continue };
        if ident != "HashMap" && ident != "HashSet" {
            continue;
        }
        if src.in_test_span(t.line) || src.waived(t.line, "hash-iter") {
            continue;
        }
        out.push(Diagnostic {
            lint: "hash-iter".into(),
            file: src.path.clone(),
            line: t.line,
            message: format!(
                "`{ident}` in library code: its iteration order is nondeterministic; \
                 use `BTree{}` (or waive with a reason if iteration order provably \
                 never escapes)",
                &ident[4..]
            ),
        });
    }
}

/// `engine-only`: flags any mention of the raw pipeline runners outside
/// `slambench::run` / `slambench::engine`. No `#[cfg(test)]` exemption —
/// tests must exercise the engine path too (the raw runner's own
/// determinism tests carry explicit waivers).
fn lint_engine_only(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &src.tokens {
        let Some(ident) = t.ident() else { continue };
        if !matches!(
            ident,
            "run_pipeline"
                | "run_pipeline_with_threads"
                | "run_pipeline_traced"
                | "run_algorithm"
                | "run_algorithm_with_threads"
                | "run_algorithm_traced"
        ) {
            continue;
        }
        if src.waived(t.line, "engine-only") {
            continue;
        }
        out.push(Diagnostic {
            lint: "engine-only".into(),
            file: src.path.clone(),
            line: t.line,
            message: format!(
                "direct `{ident}` outside `slambench::run`/`slambench::engine`: route \
                 evaluation through `slambench::engine::EvalEngine` so runs are cached \
                 and batch-schedulable"
            ),
        });
    }
}

/// `algorithm-boundary`: flags KinectFusion internals — the inherent
/// `process_frame` / `process_frame_traced` methods and direct
/// `TsdfVolume::new` construction — outside the algorithm crate and the
/// generic driver. No `#[cfg(test)]` exemption: tests drive pipelines
/// through the `SlamAlgorithm` trait too, so they keep covering every
/// algorithm. Kernel microbenchmarks carry explicit waivers.
fn lint_algorithm_boundary(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let message = match ident {
            "process_frame" | "process_frame_traced" => format!(
                "KinectFusion-specific `{ident}` outside the algorithm crate: drive \
                 pipelines through the `SlamAlgorithm` trait (`AlgoId::create` + \
                 `step_frame*`) so every algorithm stays covered"
            ),
            "TsdfVolume" => {
                // `TsdfVolume :: new` — mentions of the type alone (say in
                // a mesh-extraction signature) are not constructions
                let is_new_call = toks
                    .get(i + 1)
                    .zip(toks.get(i + 2))
                    .filter(|(a, b)| a.is_punct(':') && b.is_punct(':'))
                    .and_then(|_| toks.get(i + 3))
                    .is_some_and(|n| n.is_ident("new"));
                if !is_new_call {
                    continue;
                }
                "direct `TsdfVolume::new` outside the algorithm crate: the volume is \
                 a KinectFusion internal; go through the `SlamAlgorithm` trait (or \
                 waive for kernel microbenchmarks)"
                    .into()
            }
            _ => continue,
        };
        if src.waived(t.line, "algorithm-boundary") {
            continue;
        }
        out.push(Diagnostic {
            lint: "algorithm-boundary".into(),
            file: src.path.clone(),
            line: t.line,
            message,
        });
    }
}

/// `trace-clock`: flags `Instant::now()` outside `slam_trace::clock`. No
/// `#[cfg(test)]` exemption — tests time things through a tracer (or an
/// injected `MockClock`) too, or carry an explicit waiver.
fn lint_trace_clock(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Instant") {
            continue;
        }
        // `Instant :: now` — mentions of the type alone (say in a
        // signature re-exporting `WallClock`) are not clock reads
        let is_now_call = toks
            .get(i + 1)
            .zip(toks.get(i + 2))
            .filter(|(a, b)| a.is_punct(':') && b.is_punct(':'))
            .and_then(|_| toks.get(i + 3))
            .is_some_and(|n| n.is_ident("now"));
        if !is_now_call || src.waived(t.line, "trace-clock") {
            continue;
        }
        out.push(Diagnostic {
            lint: "trace-clock".into(),
            file: src.path.clone(),
            line: t.line,
            message: "raw `Instant::now()` outside `slam_trace::clock`: time through \
                      `slam_trace` spans or a `Clock` handle so measurements are \
                      mockable and land in one profile"
                .into(),
        });
    }
}

/// `network-boundary`: flags the raw socket types outside the serving
/// crate. No `#[cfg(test)]` exemption — a unit test opening sockets in a
/// non-network crate is the same untracked side channel; loopback tests
/// live in test sources (which the walk allowlists) or in `slam-serve`.
fn lint_network_boundary(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &src.tokens {
        let Some(ident) = t.ident() else { continue };
        if !matches!(ident, "TcpListener" | "TcpStream" | "UdpSocket") {
            continue;
        }
        if src.waived(t.line, "network-boundary") {
            continue;
        }
        out.push(Diagnostic {
            lint: "network-boundary".into(),
            file: src.path.clone(),
            line: t.line,
            message: format!(
                "raw `{ident}` outside `slam-serve`: the campaign server owns the \
                 network surface — talk to evaluations through its HTTP API (or \
                 its `Client`) so requests stay validated, traced and replayable"
            ),
        });
    }
}

/// `volume-boundary`: keeps voxel storage behind the `Volume` trait.
/// Two sub-rules, each gated by its own policy flag:
///
/// * dense `res³` buffer sizing — a same-identifier triple product
///   (`res * res * res`) or a literal `.pow(3)` — outside the volume
///   backends. `#[cfg(test)]` items are exempt: synthetic test volumes
///   legitimately materialize small dense grids.
/// * `.tsdf` / `.weight` *field* access (not same-named method calls)
///   outside the algorithm crate. No test exemption, matching
///   `algorithm-boundary`: tests go through trait accessors too.
fn lint_volume_boundary(src: &SourceFile, policy: LintPolicy, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let message = if !policy.allow_cubic_volume_alloc && is_cubic_sizing(toks, i, ident) {
            if src.in_test_span(t.line) {
                continue;
            }
            format!(
                "dense `{ident}\u{b3}` buffer sizing outside the volume backends: \
                 materializing every voxel re-couples the caller to the dense layout \
                 and defeats the sparse memory win; size through the `Volume` trait \
                 (or waive non-allocating footprint math with a reason)"
            )
        } else if !policy.allow_volume_fields
            && matches!(ident, "tsdf" | "weight")
            && i > 0
            && toks[i - 1].is_punct('.')
            && (i < 2 || !toks[i - 2].is_punct('.'))
            && !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            format!(
                "direct `.{ident}` voxel-array access outside `slam-kfusion`: the \
                 storage layout is a backend internal; read through the `Volume` \
                 trait (`sample`, `gradient`, `to_bytes`) instead"
            )
        } else {
            continue;
        };
        if src.waived(t.line, "volume-boundary") {
            continue;
        }
        out.push(Diagnostic {
            lint: "volume-boundary".into(),
            file: src.path.clone(),
            line: t.line,
            message,
        });
    }
}

/// True when token `i` (identifier `ident`) starts a same-identifier
/// triple product (`res * res * res`) or a `.pow(3)` call on an
/// identifier (`res.pow(3)`).
fn is_cubic_sizing(toks: &[Token], i: usize, ident: &str) -> bool {
    // numeric literals lex as identifiers too; `512 * 512 * 512` is
    // compile-time footprint math, not a buffer sized off a runtime
    // resolution, so only flag non-numeric identifiers
    if ident.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let triple = toks.get(i + 1).is_some_and(|t| t.is_punct('*'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident(ident))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('*'))
        && toks.get(i + 4).is_some_and(|t| t.is_ident(ident));
    let pow3 = toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("pow"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("3"))
        && toks.get(i + 5).is_some_and(|t| t.is_punct(')'));
    triple || pow3
}

/// `panic-path`: flags `.unwrap()`, `.expect(…)` and the `panic!` macro
/// family in library code outside `#[cfg(test)]` items. With
/// `strict_tests` (the orchestrator crates), `#[cfg(test)]` items are
/// also checked for `.expect(…)` and the `panic!` family — their tests
/// must assert the typed failure surface, not prose panic messages —
/// while `.unwrap()`/`.unwrap_err()` remain the sanctioned mechanical
/// assertions.
fn lint_panic_path(src: &SourceFile, strict_tests: bool, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let in_test = src.in_test_span(t.line);
        let message = match ident {
            // method calls only: require a preceding `.` so definitions
            // and paths named `unwrap`/`expect` do not trip the lint
            "unwrap" | "expect" | "unwrap_err" | "expect_err" => {
                let is_method = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !is_method {
                    continue;
                }
                if in_test {
                    // tests: only `.expect(…)` is flagged, and only under
                    // the strict orchestrator policy
                    if !strict_tests || matches!(ident, "unwrap" | "unwrap_err") {
                        continue;
                    }
                    format!(
                        "`.{ident}()` in an orchestrator test: assert the typed \
                         error/outcome (or use the exempt `.unwrap()`) instead of a \
                         prose panic message"
                    )
                } else {
                    format!(
                        "`.{ident}()` in a library path: return a `Result` or use a \
                         documented-invariant `debug_assert!`"
                    )
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                // `core::panic::…` paths and `#[panic_handler]` are not calls
                if !is_macro {
                    continue;
                }
                if in_test {
                    if !strict_tests {
                        continue;
                    }
                    format!(
                        "`{ident}!` in an orchestrator test: assert the typed \
                         error/outcome (or use the exempt `.unwrap()`) instead of \
                         panicking with prose"
                    )
                } else {
                    format!(
                        "`{ident}!` in a library path: return a `Result` or use a \
                         documented-invariant `debug_assert!`"
                    )
                }
            }
            _ => continue,
        };
        if src.waived(t.line, "panic-path") {
            continue;
        }
        out.push(Diagnostic {
            lint: "panic-path".into(),
            file: src.path.clone(),
            line: t.line,
            message,
        });
    }
}
