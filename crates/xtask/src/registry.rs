//! The lint registry: one entry per lint, with a stable diagnostic ID.
//!
//! IDs are grouped by pass family and never reused or renumbered:
//!
//! * `XT0xx` — per-file invariant lints (the original regex-level checks)
//! * `XT1xx` — workspace-model / crate-layer pass
//! * `XT2xx` — determinism taint pass
//! * `XT3xx` — concurrency pass
//!
//! The registry is the single source of truth for `--list`, `--explain`,
//! SARIF rule metadata, waiver-name validation and the baseline format.

/// Metadata for one registered lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable diagnostic ID (`XT001`, …). Never renumbered.
    pub id: &'static str,
    /// Kebab-case lint name, used in diagnostics and waivers.
    pub name: &'static str,
    /// One-line description for `--list` and SARIF `shortDescription`.
    pub summary: &'static str,
    /// Long-form rationale for `--explain` and SARIF `fullDescription`.
    pub explain: &'static str,
}

/// Every registered lint, in ID order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "XT001",
        name: "threading",
        summary: "no ad-hoc threading outside the shared exec pool",
        explain: "All parallelism must go through `slam_kfusion::exec`: the pool owns \
                  thread budgets, deterministic size-only banding and panic routing. \
                  `std::thread::spawn`, `thread::Builder`, `rayon` and `crossbeam` \
                  create threads the budget cannot see, so nested parallel sections \
                  oversubscribe the machine and perf measurements stop composing. \
                  Allowlisted: the pool itself and its loom model.",
    },
    LintInfo {
        id: "XT002",
        name: "unsafe-code",
        summary: "no `unsafe` outside the exec-pool erasure site; crate roots deny it",
        explain: "The workspace invariant is a single machine-checked `unsafe` block: \
                  the lifetime-erasure site in `slam-kfusion/src/exec`, whose safety \
                  argument is the pool's structured join. Every crate root must also \
                  carry `#![deny(unsafe_code)]` so the compiler enforces the same rule \
                  even when this tool is not run.",
    },
    LintInfo {
        id: "XT003",
        name: "hash-iter",
        summary: "no HashMap/HashSet in library code (nondeterministic iteration)",
        explain: "`HashMap`/`HashSet` iteration order is randomised per process. Any \
                  float accumulation, output ordering or work scheduling fed from one \
                  silently breaks run-to-run bit-identity. Use `BTreeMap`/`BTreeSet`, \
                  or waive with a reason when iteration order provably never escapes.",
    },
    LintInfo {
        id: "XT004",
        name: "panic-path",
        summary: "no unwrap/expect/panic! in library paths; typed errors in orchestrator tests",
        explain: "Library hot paths return `Result` or use documented-invariant \
                  `debug_assert!`; panics in a kernel tear down the whole evaluation \
                  batch. Binaries, benches and tests are exempt. The orchestrator \
                  crates (`slambench`, `slam-dse`) own the typed failure surface, so \
                  their `#[cfg(test)]` items are additionally denied `.expect(…)` and \
                  the `panic!` family — tests there assert typed outcomes, with bare \
                  `.unwrap()` as the sanctioned mechanical assertion.",
    },
    LintInfo {
        id: "XT005",
        name: "engine-only",
        summary:
            "no raw run_pipeline*/run_algorithm* calls outside slambench::run / slambench::engine",
        explain: "Every evaluation flows through `slambench::engine::EvalEngine` so \
                  runs are content-addressed-cached, batch-scheduled and covered by \
                  the fault policy. Direct `run_pipeline` / `run_pipeline_with_threads` \
                  / `run_pipeline_traced` calls — and their generic `run_algorithm*` \
                  counterparts — bypass the cache and quietly duplicate orchestration \
                  loops.",
    },
    LintInfo {
        id: "XT006",
        name: "trace-clock",
        summary: "no raw Instant::now() outside slam_trace::clock",
        explain: "Raw clock reads cannot be mocked, aggregated or exported. All timing \
                  goes through `slam_trace` spans or an injected `Clock` handle so \
                  every measurement lands in one profile and deterministic tests can \
                  substitute a `MockClock`. The single sanctioned `Instant::now()` \
                  site is the `WallClock` shim in `slam-trace/src/clock.rs`.",
    },
    LintInfo {
        id: "XT007",
        name: "waiver",
        summary: "xtask-allow waivers must name a known lint and carry a `reason:` clause",
        explain: "A waiver that names no known lint, or has no `reason:` clause, is \
                  dead weight that silently stops protecting the line it sits on. The \
                  grammar is `// xtask-allow: lint-a, lint-b — reason: <justification>` \
                  on the offending line or the line above it.",
    },
    LintInfo {
        id: "XT008",
        name: "algorithm-boundary",
        summary: "no KinectFusion internals outside the algorithm crate and the generic driver",
        explain: "The evaluation stack drives pipelines through the `SlamAlgorithm` \
                  trait (`AlgoId::create`, `step_frame*`, `extract_mesh`). Naming \
                  KinectFusion internals — the inherent `process_frame` / \
                  `process_frame_traced` methods or direct `TsdfVolume::new` \
                  construction — outside `crates/slam-kfusion/` and the generic \
                  driver in `slambench::run` hard-wires one algorithm into an \
                  orchestrator, bin or test, so second algorithms silently fall out \
                  of coverage. Kernel microbenchmarks that legitimately build raw \
                  volumes carry explicit waivers.",
    },
    LintInfo {
        id: "XT009",
        name: "network-boundary",
        summary: "no raw sockets outside the slam-serve crate and its drivers",
        explain: "The campaign server owns the workspace's network surface: every \
                  `TcpListener` / `TcpStream` / `UdpSocket` lives in \
                  `crates/slam-serve/` (the HTTP front end and its blocking client), \
                  the loopback `bench_serve` driver, or a test source. A socket \
                  opened anywhere else is an untracked side channel: it bypasses the \
                  campaign API's validation boundary, its latency never lands in the \
                  trace profile, and evaluations stop being replayable from the \
                  recorded requests.",
    },
    LintInfo {
        id: "XT010",
        name: "volume-boundary",
        summary: "dense res³ buffers and tsdf/weight field access stay inside the volume backends",
        explain: "The sparse-volume work makes voxel storage an implementation detail \
                  behind the `Volume` trait. Two patterns re-couple callers to one \
                  backend's layout: materializing a dense `res³` buffer (a same-name \
                  triple product like `res * res * res`, or `.pow(3)`, used to size an \
                  allocation) outside `tsdf.rs` / `tsdf_sparse.rs` / `volume.rs`, and \
                  reaching into the `.tsdf` / `.weight` voxel arrays from outside \
                  `crates/slam-kfusion/`. Both defeat the memory win that makes ≥512³ \
                  volumes feasible and silently pin code to the dense layout. \
                  Non-allocating size arithmetic (e.g. a RAM-ladder footprint estimate) \
                  carries an explicit waiver.",
    },
    LintInfo {
        id: "XT101",
        name: "layer-cycle",
        summary: "crate dependency graph must be acyclic",
        explain: "The workspace model builds a crate dependency graph from every \
                  `Cargo.toml` plus observed imports. A cycle means the layer \
                  architecture (`slam-math`/`slam-trace` → kernels → `slambench` → \
                  orchestrators/`bench`) has collapsed; cargo would also reject it for \
                  normal deps, but the model checks dev-deps and import edges too.",
    },
    LintInfo {
        id: "XT102",
        name: "layer-order",
        summary: "crate deps and imports must point strictly down the layer DAG",
        explain: "Each workspace crate is assigned a layer: `slam-math`/`slam-trace` \
                  (0) → `slam-scene`/`slam-metrics`/`slam-dse` (1) → `slam-kfusion` \
                  (2) → `slam-power` (3) → `slambench` (4) → `slam-serve` (5) → \
                  `bench`/root suite (6). \
                  A `Cargo.toml` dependency or a `use`/qualified-path import of a \
                  same-or-higher layer from another crate is a layering violation: it \
                  lets orchestration details leak into kernels and makes the layers \
                  unbuildable in isolation. A workspace crate missing from the layer \
                  table is also reported — add it to `LAYERS` in `xtask` when a crate \
                  is introduced.",
    },
    LintInfo {
        id: "XT103",
        name: "layer-internal",
        summary: "pool protocol/submission symbols are internal to their home crates",
        explain: "The exec pool's protocol types (`TaskGroup`, `PoolShared`, `Job`, \
                  `worker_loop`, `run_tasks_on`, `erase_lifetime`) may only be named \
                  inside `crates/slam-kfusion/`; the submission surface (`run_tasks`, \
                  `run_bands`, `trace_tasks`, `run_bands_traced` and the ordered \
                  reduction helpers) additionally inside \
                  `crates/slambench/src/engine.rs`, which is the one sanctioned \
                  external submitter. Everything else drives parallelism through the \
                  kernels or the engine, so the pool's invariants stay local.",
    },
    LintInfo {
        id: "XT104",
        name: "mod-orphan",
        summary: "every src/ file must be reachable via `mod` declarations",
        explain: "Cargo silently ignores a `.rs` file under `src/` that no `mod` \
                  declaration reaches — the code (and its tests) simply stop being \
                  compiled. The workspace model resolves `mod name;` declarations from \
                  each crate root (`lib.rs`, `main.rs`, `src/bin/*.rs`) and reports \
                  unreachable files.",
    },
    LintInfo {
        id: "XT201",
        name: "float-reduce",
        summary: "reduce pool results through the ordered helpers in slam_kfusion::exec",
        explain: "Float addition is non-associative, so an accumulation over parallel \
                  results is bit-identical only if the reduction order is fixed. The \
                  pool already returns results in submission/band order; the ordered \
                  reduction helpers (`sum_tasks`, `sum_tasks_traced`, `reduce_tasks`, \
                  `reduce_tasks_traced`, `reduce_bands_traced`) make that contract \
                  explicit and keep it machine-checked. Ad-hoc `.sum()` / `.fold()` / \
                  `.reduce()` / `.product()` chains over `run_tasks` / `run_bands` / \
                  `trace_tasks` / `run_bands_traced` results — direct or via a local \
                  binding — are flagged; route them through the helpers instead.",
    },
    LintInfo {
        id: "XT202",
        name: "entropy-source",
        summary: "no ambient time or randomness; inject Clock/RunClock or a seeded RNG",
        explain: "`thread_rng`, `from_entropy`, `OsRng`, `rand::random` and \
                  `SystemTime` smuggle ambient entropy into an evaluation, so two runs \
                  of the same configuration stop being comparable. All randomness is \
                  seeded and all time is injected (`Clock`, `RunClock`, `MockClock`) \
                  so every experiment in the paper reproduction is replayable.",
    },
    LintInfo {
        id: "XT301",
        name: "lock-order",
        summary: "lock acquisition order must be globally consistent (no inversions)",
        explain: "The concurrency pass extracts every `Mutex`/`RwLock` struct field, \
                  tracks guard lifetimes (a `let`-bound guard is held to the end of \
                  its block unless `drop`ped), and builds a workspace-wide \
                  lock-acquisition-order graph. An edge A→B means A is held while B \
                  is acquired; any cycle in the graph is a potential deadlock and \
                  every edge on it is reported. Known limit: acquisitions behind \
                  helper methods on `self` (e.g. a `fn lock(&self)` wrapper) are not \
                  attributed to a field; keep helpers single-lock.",
    },
    LintInfo {
        id: "XT302",
        name: "pool-blocking",
        summary: "no blocking calls (file IO, sleep, recv) inside pool tasks",
        explain: "A closure submitted to the worker pool (as an argument to \
                  `run_tasks`-family calls, or via a `Box::new(…) as Task` cast) must \
                  not block: `sleep`, un-timed-out `recv`, file IO (`fs::…`, `File`, \
                  `read_to_string`, …) and socket work (`TcpListener` / `TcpStream` / \
                  `UdpSocket` construction, `.accept()`) park a pool worker, \
                  serialising the batch behind IO latency and deadlocking under \
                  nested submissions. Do IO outside the parallel section (the engine \
                  persists cache entries after the batch; the campaign server talks \
                  HTTP on its own connection threads) or through a dedicated \
                  non-pool path. Test sources are exempt: simulated stragglers \
                  legitimately sleep.",
    },
];

/// Looks a lint up by its kebab-case name.
pub fn by_name(name: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.name == name)
}

/// Looks a lint up by stable ID (`XT201`) or name (`float-reduce`).
pub fn by_id_or_name(key: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.id == key || l.name == key)
}

/// The stable ID for a lint name (`"XT000"` for unregistered names, which
/// only ever happens on a registry/lint mismatch caught by the self-tests).
pub fn id_for(name: &str) -> &'static str {
    by_name(name).map_or("XT000", |l| l.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_names_are_unique_and_well_formed() {
        for (i, a) in LINTS.iter().enumerate() {
            assert!(a.id.starts_with("XT") && a.id.len() == 5, "{}", a.id);
            assert!(!a.summary.is_empty() && !a.explain.is_empty());
            assert!(
                a.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}",
                a.name
            );
            for b in &LINTS[i + 1..] {
                assert_ne!(a.id, b.id);
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn registry_is_sorted_by_id() {
        let ids: Vec<_> = LINTS.iter().map(|l| l.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn lookup_by_id_and_name_agree() {
        assert_eq!(by_id_or_name("XT201").map(|l| l.name), Some("float-reduce"));
        assert_eq!(by_id_or_name("float-reduce").map(|l| l.id), Some("XT201"));
        assert!(by_id_or_name("XT999").is_none());
        assert_eq!(id_for("lock-order"), "XT301");
        assert_eq!(id_for("nonesuch"), "XT000");
    }
}
