//! `cargo xtask` — workspace correctness tooling.
//!
//! ```text
//! cargo xtask lint [--root <path>]   enforce the workspace invariants
//! ```
//!
//! Exits non-zero if any lint fires, printing rustc-style diagnostics.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--root <path>]");
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    // default: the repo root — two levels up from this crate's manifest,
    // or the current directory when invoked outside cargo
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let findings = match xtask::lint_repo(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xtask lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        eprintln!("xtask lint: no findings — all workspace invariants hold");
        return ExitCode::SUCCESS;
    }
    for d in &findings {
        eprintln!("{d}\n");
    }
    eprintln!(
        "xtask lint: {} finding{} — see DESIGN.md § Correctness tooling",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
