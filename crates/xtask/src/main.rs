//! `cargo xtask` — workspace correctness tooling.
//!
//! ```text
//! cargo xtask lint [--root <path>]            enforce the workspace invariants
//!                  [--list]                   print every lint id + summary
//!                  [--explain <id|name>]      long-form rationale for one lint
//!                  [--baseline <file>]        gate against accepted findings
//!                  [--update-baseline]        rewrite the baseline from findings
//!                  [--sarif <file>]           export findings as SARIF 2.1
//! ```
//!
//! Without `--baseline`, exits non-zero if any lint fires. With it, exits
//! non-zero on drift in either direction: findings missing from the
//! baseline (regressions) or baseline entries nothing matches (stale).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [--root <path>] [--list] [--explain <id|name>]\n\
         \u{20}                       [--baseline <file>] [--update-baseline] [--sarif <file>]"
    );
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => return list(),
            "--explain" => {
                return match it.next() {
                    Some(key) => explain(key),
                    None => {
                        eprintln!("--explain requires a lint id or name (try --list)");
                        ExitCode::FAILURE
                    }
                };
            }
            "--root" | "--baseline" | "--sarif" => {
                let Some(p) = it.next() else {
                    eprintln!("{arg} requires a path");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--root" => root = Some(PathBuf::from(p)),
                    "--baseline" => baseline_path = Some(PathBuf::from(p)),
                    _ => sarif_path = Some(PathBuf::from(p)),
                }
            }
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown lint option `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    // default: the repo root — two levels up from this crate's manifest,
    // or the current directory when invoked outside cargo
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let findings = match xtask::lint_repo(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xtask lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, xtask::sarif::render(&findings)) {
            eprintln!(
                "xtask lint: failed to write SARIF to {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: SARIF written to {}", path.display());
    }
    if update_baseline {
        let path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
        if let Err(e) = std::fs::write(&path, xtask::baseline::render(&findings)) {
            eprintln!(
                "xtask lint: failed to write baseline to {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask lint: baseline updated ({} accepted finding{}) at {}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    match baseline_path {
        Some(path) => gate_against_baseline(&findings, &path),
        None => report_all(&findings),
    }
}

fn report_all(findings: &[xtask::lints::Diagnostic]) -> ExitCode {
    if findings.is_empty() {
        eprintln!("xtask lint: no findings — all workspace invariants hold");
        return ExitCode::SUCCESS;
    }
    for d in findings {
        eprintln!("{d}\n");
    }
    eprintln!(
        "xtask lint: {} finding{} — see DESIGN.md § Static analysis, or \
         `cargo xtask lint --explain <id>`",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn gate_against_baseline(findings: &[xtask::lints::Diagnostic], path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint: cannot read baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let accepted = match xtask::baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask lint: malformed baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let drift = xtask::baseline::diff(findings, &accepted);
    if drift.new.is_empty() && drift.stale.is_empty() {
        eprintln!(
            "xtask lint: no drift against {} ({} finding{}, {} accepted)",
            path.display(),
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            accepted.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &drift.new {
        eprintln!("{d}\n");
    }
    for e in &drift.stale {
        eprintln!(
            "stale baseline entry: {} at {}:{} no longer fires — remove it from {}\n",
            e.id,
            e.file,
            e.line,
            path.display()
        );
    }
    eprintln!(
        "xtask lint: baseline drift — {} new finding{}, {} stale entr{}",
        drift.new.len(),
        if drift.new.len() == 1 { "" } else { "s" },
        drift.stale.len(),
        if drift.stale.len() == 1 { "y" } else { "ies" }
    );
    ExitCode::FAILURE
}

fn list() -> ExitCode {
    for l in xtask::registry::LINTS {
        println!("{}  {:<15} {}", l.id, l.name, l.summary);
    }
    ExitCode::SUCCESS
}

fn explain(key: &str) -> ExitCode {
    match xtask::registry::by_id_or_name(key) {
        Some(l) => {
            println!("{} / {}\n\n{}\n\n{}", l.id, l.name, l.summary, l.explain);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown lint `{key}` — `cargo xtask lint --list` shows all lints");
            ExitCode::FAILURE
        }
    }
}
