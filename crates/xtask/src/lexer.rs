//! A minimal Rust lexer for source-level lints.
//!
//! This is deliberately *not* a full parser (the tooling must build with
//! zero dependencies, so `syn` is out): it tokenises a source file into
//! identifiers and punctuation with line numbers, stripping comments,
//! strings, char literals and lifetimes, which is exactly the level of
//! fidelity the invariant lints need. Doc comments and string contents can
//! therefore never produce false positives, and `#[cfg(test)]` item spans
//! can be computed by brace matching over the token stream.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier, keyword or numeric literal.
    Ident(String),
    /// A single punctuation character (`.`, `:`, `#`, `(`, `{`, …).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Tokenises `text`, stripping comments, string/char literals and
/// lifetimes. Unterminated constructs simply end at EOF — a linter must
/// be robust to files that do not parse.
pub fn lex(text: &str) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // nested block comments
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(&chars, i, &mut line);
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let start_line = line;
                let mut ident = String::new();
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    ident.push(chars[i]);
                    i += 1;
                }
                // string-literal prefixes: r"", r#""#, b"", br"", b'x'
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                    // count hashes, then require an opening quote
                    let mut j = i;
                    let mut hashes = 0usize;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        i = skip_raw_string(&chars, j, hashes, &mut line);
                        continue;
                    }
                    if hashes > 0 {
                        // `r#ident`: a raw identifier — consume the hashes
                        // and keep collecting the identifier
                        i = j;
                        ident.clear();
                        while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            ident.push(chars[i]);
                            i += 1;
                        }
                    }
                } else if is_str_prefix && ident == "b" && i < n && chars[i] == '\'' {
                    i = skip_char_or_lifetime(&chars, i, &mut line);
                    continue;
                }
                out.push(Token {
                    tok: Tok::Ident(ident),
                    line: start_line,
                });
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string `"…"##` body starting at the opening quote, with
/// `hashes` trailing hashes required to close it.
fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Disambiguates a `'` into a char literal (skipped entirely) or a
/// lifetime (only the quote is skipped; the identifier lexes normally,
/// which is harmless for the lints).
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    if i + 1 < n && chars[i + 1] == '\\' {
        // escaped char literal: scan to the closing quote
        let mut j = i + 2;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return j + 1,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        return j;
    }
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        return i + 3; // plain one-char literal like 'a'
    }
    i + 1 // lifetime (or stray quote)
}

/// Returns the set of 1-based lines covered by `#[cfg(test)]` items
/// (typically the trailing `mod tests { … }` block), as an ordered list
/// of inclusive line ranges.
pub fn cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let end = item_end(tokens, after_attr);
            let end_line = if end > 0 && end <= tokens.len() {
                tokens[end - 1].line
            } else {
                start_line
            };
            spans.push((start_line, end_line));
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    spans
}

/// If `tokens[i..]` starts with an attribute `#[cfg(…test…)]`, returns
/// the index just past the closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    if !tokens.get(i + 2)?.is_ident("cfg") {
        return None;
    }
    if !tokens.get(i + 3)?.is_punct('(') {
        return None;
    }
    // scan the balanced (...) for a bare `test` identifier
    let mut depth = 1usize;
    let mut j = i + 4;
    let mut has_test = false;
    while j < tokens.len() && depth > 0 {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
        } else if tokens[j].is_ident("test") {
            has_test = true;
        }
        j += 1;
    }
    if !has_test {
        return None;
    }
    if tokens.get(j)?.is_punct(']') {
        Some(j + 1)
    } else {
        None
    }
}

/// Given the index of the first token of an item (after its `#[cfg(test)]`
/// attribute), returns the index just past the item: past the `;` for a
/// declaration, or past the matching `}` of its first brace block.
/// Any further attributes on the item are skipped first.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // skip additional attributes
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        i = j;
    }
    // find the first `{` or `;` at angle/paren-agnostic brace depth zero
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(';') {
            return j + 1;
        }
        if tokens[j].is_punct('{') {
            let mut depth = 1usize;
            let mut k = j + 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            return k;
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        lex(text)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r###"
            // unsafe in a line comment
            /* unsafe in /* a nested */ block */
            let s = "unsafe in a string";
            let r = r#"unsafe in a raw string"#;
            let c = 'u';
            fn real() {}
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_tokens() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { unsafe_marker(x) }");
        assert!(ids.contains(&"unsafe_marker".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "line_one\n\"multi\nline\nstring\"\nlast_ident";
        let toks = lex(src);
        let last = toks.last().unwrap();
        assert!(last.is_ident("last_ident"));
        assert_eq!(last.line, 5);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#type = 1; let b = r#match;");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"match".to_string()));
    }

    #[test]
    fn cfg_test_mod_span_covers_block() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let toks = lex(src);
        let spans = cfg_test_spans(&toks);
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_with_extra_attrs_and_decl() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests;\nfn after() {}\n";
        let toks = lex(src);
        let spans = cfg_test_spans(&toks);
        assert_eq!(spans, vec![(1, 3)]);
    }

    #[test]
    fn cfg_all_test_is_recognised() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\n";
        let spans = cfg_test_spans(&lex(src));
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn cfg_not_mentioning_test_is_ignored() {
        let src = "#[cfg(feature = \"x\")]\nmod m { fn f() {} }\n";
        assert!(cfg_test_spans(&lex(src)).is_empty());
    }
}
