//! The concurrency pass: `lock-order` (XT301) and `pool-blocking`
//! (XT302).
//!
//! `lock-order` extracts every `Mutex`/`RwLock` struct field in the
//! workspace, tracks guard lifetimes lexically (a `let`-bound guard is
//! held to the end of its enclosing block unless `drop`ped; a temporary
//! to the end of its statement), and builds a global
//! lock-acquisition-order graph: an edge A→B means A was held while B
//! was acquired. Any edge that lies on a cycle is reported — two code
//! paths taking the same pair of locks in opposite orders is the classic
//! deadlock shape. Acquisitions are recognised as `field.lock()`,
//! `field.read()`, `field.write()` and the poison-recovering free-helper
//! idiom `lock(&self.field)`. Known limit: a helper method on `self`
//! (e.g. `fn lock(&self) -> MutexGuard<…>`) hides the field it locks;
//! keep such helpers single-lock.
//!
//! `pool-blocking` scans closures submitted to the worker pool — the
//! argument list of a `run_tasks`-family call, or a `Box::new(…) as
//! …Task` cast — for calls that park the worker: `sleep`, `.recv()`
//! without a timeout, file IO (`fs::…`, `File`, `read_to_string`, …)
//! and socket work (`TcpListener` / `TcpStream` / `UdpSocket`
//! construction, `.accept()`). A blocked worker serialises the whole
//! batch behind IO latency and can deadlock nested submissions; a
//! worker parked in `accept()` never returns at all.

use crate::determinism::skip_balanced;
use crate::lexer::Token;
use crate::lints::{Diagnostic, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Calls whose argument closures run on pool workers.
const POOL_SUBMITTERS: &[&str] = &[
    "run_tasks",
    "run_bands",
    "trace_tasks",
    "run_bands_traced",
    "sum_tasks",
    "sum_tasks_traced",
    "reduce_tasks",
    "reduce_tasks_traced",
    "reduce_bands_traced",
];

/// Identifiers that block the calling thread. `recv` and `accept` are
/// matched only as method calls (`.recv()` / `.accept()`);
/// `recv_timeout`/`try_recv` are distinct identifiers and stay allowed.
const BLOCKING_IDENTS: &[&str] = &[
    "sleep",
    "File",
    "OpenOptions",
    "read_to_string",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    // socket types: connect/bind block on the network, and a worker
    // parked in accept() never comes back
    "TcpListener",
    "TcpStream",
    "UdpSocket",
];

/// `pool-blocking`: blocking calls inside pool-task closures.
pub fn lint_pool_blocking(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    // (start, end) token ranges that execute on pool workers
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Some(ident) = t.ident() {
            if POOL_SUBMITTERS.contains(&ident) && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                regions.push((i + 2, skip_balanced(toks, i + 1, '(', ')')));
            }
            // `Box :: new ( … ) as [path ::]* Task`
            if ident == "Box"
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident("new"))
                && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
            {
                let close = skip_balanced(toks, i + 4, '(', ')');
                if cast_to_task(toks, close) {
                    regions.push((i + 5, close));
                }
            }
        }
    }
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (start, end) in regions {
        for j in start..end.min(toks.len()) {
            let Some(ident) = toks[j].ident() else {
                continue;
            };
            let hit = if BLOCKING_IDENTS.contains(&ident) {
                Some(ident)
            } else if matches!(ident, "recv" | "accept")
                && j > 0
                && toks[j - 1].is_punct('.')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                Some(ident)
            } else if ident == "fs"
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
            {
                Some("fs::")
            } else {
                None
            };
            let Some(name) = hit else { continue };
            let line = toks[j].line;
            if !flagged.insert(j) || src.in_test_span(line) || src.waived(line, "pool-blocking") {
                continue;
            }
            out.push(Diagnostic {
                lint: "pool-blocking".into(),
                file: src.path.clone(),
                line,
                message: format!(
                    "blocking `{name}` inside a pool task: a parked worker serialises \
                     the batch and can deadlock nested submissions — do IO/waiting \
                     outside the parallel section"
                ),
            });
        }
    }
}

/// True if `toks[i..]` is `as [ident ::]* Task`.
fn cast_to_task(toks: &[Token], mut i: usize) -> bool {
    if !toks.get(i).is_some_and(|t| t.is_ident("as")) {
        return false;
    }
    i += 1;
    let mut last = None;
    while let Some(t) = toks.get(i) {
        if let Some(id) = t.ident() {
            last = Some(id);
            i += 1;
        } else if t.is_punct(':') {
            i += 1;
        } else {
            break;
        }
    }
    last == Some("Task")
}

/// One lock acquisition site.
struct Acquire {
    tok: usize,
    field: String,
    line: u32,
}

/// One "held A while acquiring B" observation.
struct Edge {
    from: String,
    to: String,
    file_idx: usize,
    line: u32,
}

/// `lock-order`: builds the global acquisition-order graph over all
/// `files` and reports every edge that lies on a cycle.
pub fn lint_lock_order(files: &[&SourceFile]) -> Vec<Diagnostic> {
    // pass 1: every Mutex/RwLock field declared anywhere, name → kind
    let mut fields: BTreeMap<String, &'static str> = BTreeMap::new();
    for src in files {
        collect_lock_fields(src, &mut fields);
    }
    if fields.is_empty() {
        return Vec::new();
    }
    // pass 2: acquisition sites and guard scopes → edges
    let mut edges: Vec<Edge> = Vec::new();
    for (file_idx, src) in files.iter().enumerate() {
        let acquires = find_acquires(src, &fields);
        let braces = brace_spans(&src.tokens);
        for (ai, a) in acquires.iter().enumerate() {
            let end = guard_scope_end(&src.tokens, a, &braces);
            for b in &acquires[ai + 1..] {
                if b.tok > end {
                    break;
                }
                edges.push(Edge {
                    from: a.field.clone(),
                    to: b.field.clone(),
                    file_idx,
                    line: b.line,
                });
            }
        }
    }
    // pass 3: report edges on cycles
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, u32, String, String)> = BTreeSet::new();
    for e in &edges {
        if !reaches(&adj, &e.to, &e.from) {
            continue;
        }
        let src = files[e.file_idx];
        if src.waived(e.line, "lock-order") {
            continue;
        }
        if !seen.insert((e.file_idx, e.line, e.from.clone(), e.to.clone())) {
            continue;
        }
        out.push(Diagnostic {
            lint: "lock-order".into(),
            file: src.path.clone(),
            line: e.line,
            message: format!(
                "acquiring `{}` while `{}` is held closes an acquisition-order cycle \
                 (`{}` is also held when `{}` is taken elsewhere): order locks \
                 consistently or narrow the guard's scope",
                e.to, e.from, e.to, e.from
            ),
        });
    }
    out
}

/// Records `name: [Arc<]Mutex<…>` / `RwLock<…>` field declarations.
fn collect_lock_fields(src: &SourceFile, fields: &mut BTreeMap<String, &'static str>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let kind = match t.ident() {
            Some("Mutex") => "Mutex",
            Some("RwLock") => "RwLock",
            _ => continue,
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) || i == 0 {
            continue;
        }
        // walk back over `Arc <` wrappers to the `name :` introducer
        let mut k = i - 1;
        while k > 0 && (toks[k].is_punct('<') || toks[k].is_ident("Arc")) {
            k -= 1;
        }
        if toks[k].is_punct(':') && k >= 1 && !toks[k - 1].is_punct(':')
        // a `::` path, not a field
        {
            if let Some(name) = toks[k - 1].ident() {
                fields.insert(name.to_string(), kind);
            }
        }
    }
}

/// Finds lock acquisitions attributable to a known field.
fn find_acquires(src: &SourceFile, fields: &BTreeMap<String, &'static str>) -> Vec<Acquire> {
    let toks = &src.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) || src.in_test_span(t.line) {
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let candidate: Option<String> = match (ident, is_method) {
            ("lock" | "read" | "write", true) => (i >= 2)
                .then(|| toks[i - 2].ident())
                .flatten()
                .map(String::from),
            // the poison-recovering free helper: `lock(&self.field)`
            ("lock", false) => {
                let close = skip_balanced(toks, i + 1, '(', ')');
                toks[i + 2..close.saturating_sub(1)]
                    .iter()
                    .rev()
                    .find_map(Token::ident)
                    .map(String::from)
            }
            _ => continue,
        };
        let Some(name) = candidate else { continue };
        let compatible = match fields.get(&name) {
            Some(&"Mutex") => ident == "lock",
            Some(&"RwLock") => ident == "read" || ident == "write",
            _ => false,
        };
        if compatible {
            out.push(Acquire {
                tok: i,
                field: name,
                line: t.line,
            });
        }
    }
    out
}

/// All `{ … }` spans as (open, close) token indexes.
fn brace_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                spans.push((open, i));
            }
        }
    }
    spans
}

/// The last token index at which the guard taken at `a` is still held.
fn guard_scope_end(toks: &[Token], a: &Acquire, braces: &[(usize, usize)]) -> usize {
    // innermost enclosing block
    let block_end = braces
        .iter()
        .filter(|&&(o, c)| o < a.tok && a.tok < c)
        .map(|&(_, c)| c)
        .min()
        .unwrap_or(toks.len());
    // bound to a `let`? scan back to the statement start
    let mut j = a.tok;
    while j > 0 {
        j -= 1;
        if toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}') {
            break;
        }
        if toks[j].is_ident("let") {
            let mut n = j + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            // bound: held to end of block, unless dropped earlier
            return match toks.get(n).and_then(Token::ident) {
                Some(g) => drop_site(toks, a.tok, block_end, g).unwrap_or(block_end),
                None => block_end,
            };
        }
    }
    // temporary: held to the end of its statement (capped by the block)
    let stmt_end = toks[a.tok..]
        .iter()
        .position(|t| t.is_punct(';'))
        .map_or(toks.len(), |p| a.tok + p);
    stmt_end.min(block_end)
}

/// The token index of a `drop ( guard )` call between `from` and `to`.
fn drop_site(toks: &[Token], from: usize, to: usize, guard: &str) -> Option<usize> {
    (from..to.min(toks.len())).find(|&i| {
        toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(guard))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
    })
}

/// DFS reachability in the acquisition-order graph.
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(next) = adj.get(node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}
