//! The determinism taint pass: `float-reduce` (XT201) and
//! `entropy-source` (XT202).
//!
//! `float-reduce` flags ad-hoc reductions over worker-pool results. The
//! pool returns results in submission/band order precisely so that float
//! accumulation is bit-identical run to run, but that contract lives in
//! the callee; the blessed ordered-reduction helpers in
//! `slam_kfusion::exec` (`sum_tasks`, `sum_tasks_traced`, `reduce_tasks`,
//! `reduce_tasks_traced`, `reduce_bands_traced`) make it explicit at the
//! call site and keep it machine-checked. Two shapes are detected:
//!
//! * direct chains: `exec::trace_tasks(…).into_iter().sum()`
//! * via a local binding: `let r = exec::run_tasks(…); … r.iter().fold(…)`
//!
//! `entropy-source` flags ambient time/randomness (`thread_rng`,
//! `from_entropy`, `OsRng`, `rand::random`, `SystemTime`): every
//! experiment must be replayable from its seed and injected clock.

use crate::lints::{Diagnostic, SourceFile};

/// The raw pool primitives whose results must be reduced through the
/// blessed helpers.
const POOL_CALLS: &[&str] = &["run_tasks", "run_bands", "trace_tasks", "run_bands_traced"];

/// Reduction adapters that fold many values into one.
const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

/// `float-reduce`: ad-hoc reductions over pool results.
pub fn lint_float_reduce(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    // pass 1: direct method chains off a pool call, plus recording of
    // `let name = [exec::]pool_call(…)` bindings
    let mut bindings: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        if !POOL_CALLS.contains(&ident) || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let close = skip_balanced(toks, i + 1, '(', ')');
        if let Some((line, method)) = chain_reducer(toks, close) {
            report(src, out, line, method);
        }
        if let Some(name) = binding_name(toks, i) {
            bindings.push(name);
        }
    }
    // pass 2: reductions reached through a recorded binding
    if bindings.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        if !bindings.iter().any(|b| b == ident) {
            continue;
        }
        // skip the binding site itself (`let name = …`)
        if i > 0 && (toks[i - 1].is_ident("let") || toks[i - 1].is_ident("mut")) {
            continue;
        }
        if let Some((line, method)) = chain_reducer(toks, i + 1) {
            report(src, out, line, method);
        }
    }
}

fn report(src: &SourceFile, out: &mut Vec<Diagnostic>, line: u32, method: &str) {
    if src.in_test_span(line) || src.waived(line, "float-reduce") {
        return;
    }
    out.push(Diagnostic {
        lint: "float-reduce".into(),
        file: src.path.clone(),
        line,
        message: format!(
            "ad-hoc `.{method}(…)` over pool results: route the reduction through the \
             ordered helpers in `slam_kfusion::exec` (`sum_tasks_traced`, \
             `reduce_tasks_traced`, `reduce_bands_traced`, …) so the accumulation \
             order stays explicit and bit-identical"
        ),
    });
}

/// If `toks[from..]` is a method chain (`. ident [::<…>] ( … )` repeated),
/// returns the line and name of the first reducing method in it.
fn chain_reducer(toks: &[crate::lexer::Token], mut i: usize) -> Option<(u32, &'static str)> {
    while toks.get(i).is_some_and(|t| t.is_punct('.')) {
        let t = toks.get(i + 1)?;
        let method = t.ident()?;
        if let Some(r) = REDUCERS.iter().find(|r| **r == method) {
            return Some((t.line, r));
        }
        i += 2;
        // turbofish: `::<f64>`
        if toks.get(i).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('<'))
        {
            i = skip_balanced(toks, i + 2, '<', '>');
        }
        if toks.get(i).is_some_and(|t| t.is_punct('(')) {
            i = skip_balanced(toks, i, '(', ')');
        }
    }
    None
}

/// If the pool call at token `call` is the initialiser of a `let`
/// binding, returns the bound name. Looks back across an optional
/// `exec ::`-style path prefix for the pattern `let [mut] name = …`.
fn binding_name(toks: &[crate::lexer::Token], call: usize) -> Option<String> {
    let mut i = call;
    // skip the path prefix: `slam_kfusion :: exec ::`
    while i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        i -= 2;
        if i >= 1 && toks[i - 1].ident().is_some() {
            i -= 1;
        } else {
            return None;
        }
    }
    if i < 2 || !toks[i - 1].is_punct('=') {
        return None;
    }
    // `let name =` or `let name : Ty =` — scan back over an optional type
    // ascription to the `let`
    let mut j = i - 1;
    while j > 0 && !toks[j - 1].is_ident("let") {
        j -= 1;
        // a statement/block boundary means this `=` is plain assignment
        if toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}') {
            return None;
        }
    }
    if j == 0 {
        return None;
    }
    let mut name_at = j;
    if toks.get(name_at).is_some_and(|t| t.is_ident("mut")) {
        name_at += 1;
    }
    toks.get(name_at)?.ident().map(str::to_string)
}

/// Skips from an opening delimiter at `open` to just past its match.
pub(crate) fn skip_balanced(toks: &[crate::lexer::Token], open: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(o) {
            depth += 1;
        } else if toks[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// `entropy-source`: ambient randomness and wall-clock time.
pub fn lint_entropy_source(src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let hit = match ident {
            "thread_rng" | "from_entropy" | "OsRng" | "SystemTime" => Some(ident),
            // `rand::random` only as a qualified path — a bare `random`
            // identifier is too common to flag
            "random"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("rand") =>
            {
                Some("rand::random")
            }
            _ => None,
        };
        let Some(name) = hit else { continue };
        if src.waived(t.line, "entropy-source") {
            continue;
        }
        out.push(Diagnostic {
            lint: "entropy-source".into(),
            file: src.path.clone(),
            line: t.line,
            message: format!(
                "ambient entropy via `{name}`: inject a seeded RNG (`ChaCha…::seed_from_u64`) \
                 or a `Clock`/`RunClock` handle so the run is replayable"
            ),
        });
    }
}
