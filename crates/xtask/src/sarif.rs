//! SARIF 2.1.0 export.
//!
//! One run, one driver (`xtask-lint`), with a rule entry per registered
//! lint (so viewers can show `--explain`-grade docs) and one result per
//! finding. The output is deliberately a small, stable subset of SARIF —
//! enough for GitHub code scanning and the usual viewers.

use crate::json::Value;
use crate::lints::Diagnostic;
use crate::registry;

/// Serialises findings as a SARIF 2.1.0 document.
pub fn render(findings: &[Diagnostic]) -> String {
    let rules: Vec<Value> = registry::LINTS
        .iter()
        .map(|l| {
            Value::Obj(vec![
                ("id".into(), Value::Str(l.id.into())),
                ("name".into(), Value::Str(l.name.into())),
                (
                    "shortDescription".into(),
                    Value::Obj(vec![("text".into(), Value::Str(l.summary.into()))]),
                ),
                (
                    "fullDescription".into(),
                    Value::Obj(vec![("text".into(), Value::Str(l.explain.into()))]),
                ),
                (
                    "defaultConfiguration".into(),
                    Value::Obj(vec![("level".into(), Value::Str("error".into()))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = findings
        .iter()
        .map(|d| {
            let rule_index = registry::LINTS
                .iter()
                .position(|l| l.id == d.id())
                .unwrap_or(0);
            Value::Obj(vec![
                ("ruleId".into(), Value::Str(d.id().into())),
                ("ruleIndex".into(), Value::Num(rule_index as f64)),
                ("level".into(), Value::Str("error".into())),
                (
                    "message".into(),
                    Value::Obj(vec![("text".into(), Value::Str(d.message.clone()))]),
                ),
                (
                    "locations".into(),
                    Value::Arr(vec![Value::Obj(vec![(
                        "physicalLocation".into(),
                        Value::Obj(vec![
                            (
                                "artifactLocation".into(),
                                Value::Obj(vec![
                                    ("uri".into(), Value::Str(d.file.clone())),
                                    ("uriBaseId".into(), Value::Str("SRCROOT".into())),
                                ]),
                            ),
                            (
                                "region".into(),
                                Value::Obj(vec![("startLine".into(), Value::Num(d.line as f64))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        (
            "$schema".into(),
            Value::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .into(),
            ),
        ),
        ("version".into(), Value::Str("2.1.0".into())),
        (
            "runs".into(),
            Value::Arr(vec![Value::Obj(vec![
                (
                    "tool".into(),
                    Value::Obj(vec![(
                        "driver".into(),
                        Value::Obj(vec![
                            ("name".into(), Value::Str("xtask-lint".into())),
                            (
                                "informationUri".into(),
                                Value::Str("https://example.org/slambench-rs".into()),
                            ),
                            ("version".into(), Value::Str("0.1.0".into())),
                            ("rules".into(), Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), Value::Arr(results)),
            ])]),
        ),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn sarif_parses_and_carries_rule_metadata_for_every_lint() {
        let findings = vec![Diagnostic {
            lint: "lock-order".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 41,
            message: "inversion".into(),
        }];
        let doc = json::parse(&render(&findings)).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = &doc.get("runs").and_then(Value::as_arr).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(rules.len(), registry::LINTS.len());
        for (rule, info) in rules.iter().zip(registry::LINTS) {
            assert_eq!(rule.get("id").and_then(Value::as_str), Some(info.id));
            assert!(rule
                .get("fullDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some_and(|t| !t.is_empty()));
        }
        let results = run.get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("XT301")
        );
        let line = results[0]
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_u32);
        assert_eq!(line, Some(41));
    }
}
