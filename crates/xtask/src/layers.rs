//! The crate-layer pass: `layer-cycle` (XT101), `layer-order` (XT102),
//! `layer-internal` (XT103) and `mod-orphan` (XT104).
//!
//! The workspace is a strict layer DAG:
//!
//! ```text
//! 0  slam-math, slam-trace          (leaf utilities)
//! 1  slam-scene, slam-metrics, slam-dse
//! 2  slam-kfusion                   (kernels + exec pool)
//! 3  slam-power
//! 4  slambench                      (engine / orchestration)
//! 5  slam-serve                     (campaign server over the engine)
//! 6  bench, slambench-suite         (binaries, integration tests)
//! ```
//!
//! Every `Cargo.toml` dependency and every observed import must point
//! strictly *down* this table (same-crate imports from a crate's own
//! `tests/` are fine). On top of the graph checks, the pass enforces
//! internal-module boundaries — the exec pool's protocol and submission
//! symbols stay inside their home crates — and flags `src/` files no
//! `mod` declaration reaches (cargo silently stops compiling those).

use crate::lints::Diagnostic;
use crate::model::{resolve_mod, Model};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// The enforced layer assignment. New workspace crates must be added
/// here (the pass reports any that are missing).
pub const LAYERS: &[(&str, u32)] = &[
    ("slam-math", 0),
    ("slam-trace", 0),
    ("slam-scene", 1),
    ("slam-metrics", 1),
    ("slam-dse", 1),
    ("slam-kfusion", 2),
    ("slam-power", 3),
    ("slambench", 4),
    ("slam-serve", 5),
    ("bench", 6),
    ("slambench-suite", 6),
];

/// One internal-module rule: `symbols` may only be named in files whose
/// repo-relative path starts with one of `allowed`.
pub struct InternalRule {
    pub symbols: &'static [&'static str],
    pub allowed: &'static [&'static str],
    pub what: &'static str,
}

/// The enforced internal-module boundaries.
pub const INTERNAL_RULES: &[InternalRule] = &[
    InternalRule {
        symbols: &[
            "TaskGroup",
            "PoolShared",
            "WorkerPool",
            "Job",
            "worker_loop",
            "run_tasks_on",
            "erase_lifetime",
        ],
        allowed: &["crates/slam-kfusion/"],
        what: "exec pool protocol",
    },
    InternalRule {
        symbols: &[
            "run_tasks",
            "run_bands",
            "trace_tasks",
            "run_bands_traced",
            "sum_tasks",
            "sum_tasks_traced",
            "reduce_tasks",
            "reduce_tasks_traced",
            "reduce_bands_traced",
        ],
        allowed: &["crates/slam-kfusion/", "crates/slambench/src/engine.rs"],
        what: "exec pool submission surface",
    },
];

/// Runs all four layer-pass checks over the model with the given layer
/// table (the production table is [`LAYERS`]; fixtures pass their own).
pub fn lint_layers(model: &Model, table: &[(&str, u32)], out: &mut Vec<Diagnostic>) {
    let rank: BTreeMap<&str, u32> = table.iter().copied().collect();
    // unknown crates
    for c in &model.crates {
        if !rank.contains_key(c.name.as_str()) {
            out.push(Diagnostic {
                lint: "layer-order".into(),
                file: c.manifest.clone(),
                line: 1,
                message: format!(
                    "workspace crate `{}` has no layer assignment; add it to `LAYERS` \
                     in `crates/xtask/src/layers.rs` so the dependency DAG stays enforced",
                    c.name
                ),
            });
        }
    }
    // manifest dependency edges
    let workspace: BTreeSet<&str> = model.crates.iter().map(|c| c.name.as_str()).collect();
    for c in &model.crates {
        let Some(&cr) = rank.get(c.name.as_str()) else {
            continue;
        };
        for d in &c.deps {
            if !workspace.contains(d.name.as_str()) {
                continue;
            }
            let Some(&dr) = rank.get(d.name.as_str()) else {
                continue;
            };
            if dr >= cr {
                out.push(Diagnostic {
                    lint: "layer-order".into(),
                    file: c.manifest.clone(),
                    line: d.line,
                    message: format!(
                        "`{}` (layer {cr}) must not depend on `{}` (layer {dr}): \
                         dependencies point strictly down the layer DAG \
                         ({})",
                        c.name,
                        d.name,
                        layer_summary(table),
                    ),
                });
            }
        }
    }
    // import edges
    for f in &model.files {
        let Some(&fr) = rank.get(f.crate_name.as_str()) else {
            continue;
        };
        for (target, line) in &f.imports {
            if *target == f.crate_name {
                continue; // a crate's own tests import it by name
            }
            let Some(&tr) = rank.get(target.as_str()) else {
                continue;
            };
            if tr >= fr && !f.src.waived(*line, "layer-order") {
                out.push(Diagnostic {
                    lint: "layer-order".into(),
                    file: f.src.path.clone(),
                    line: *line,
                    message: format!(
                        "`{}` (layer {fr}) imports `{}` (layer {tr}): imports point \
                         strictly down the layer DAG — route through a lower layer \
                         or move the shared code down",
                        f.crate_name, target
                    ),
                });
            }
        }
    }
    lint_cycles(model, out);
}

fn layer_summary(table: &[(&str, u32)]) -> String {
    let mut by_rank: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for &(name, r) in table {
        by_rank.entry(r).or_default().push(name);
    }
    by_rank
        .values()
        .map(|names| names.join("/"))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// `layer-cycle`: reports every manifest dependency edge that lies on a
/// cycle of the workspace crate graph.
fn lint_cycles(model: &Model, out: &mut Vec<Diagnostic>) {
    let workspace: BTreeSet<&str> = model.crates.iter().map(|c| c.name.as_str()).collect();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for c in &model.crates {
        for d in &c.deps {
            if workspace.contains(d.name.as_str()) {
                adj.entry(c.name.as_str()).or_default().insert(&d.name);
            }
        }
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for c in &model.crates {
        for d in &c.deps {
            if workspace.contains(d.name.as_str()) && reaches(&d.name, &c.name) {
                out.push(Diagnostic {
                    lint: "layer-cycle".into(),
                    file: c.manifest.clone(),
                    line: d.line,
                    message: format!(
                        "dependency `{}` → `{}` closes a cycle in the workspace crate \
                         graph: the layer architecture requires a DAG",
                        c.name, d.name
                    ),
                });
            }
        }
    }
}

/// `layer-internal`: internal symbols named outside their home crates.
pub fn lint_internal(model: &Model, rules: &[InternalRule], out: &mut Vec<Diagnostic>) {
    for f in &model.files {
        let path = &f.src.path;
        for rule in rules {
            if rule.allowed.iter().any(|a| path.starts_with(a)) {
                continue;
            }
            for t in &f.src.tokens {
                let Some(ident) = t.ident() else { continue };
                if !rule.symbols.contains(&ident) || f.src.waived(t.line, "layer-internal") {
                    continue;
                }
                out.push(Diagnostic {
                    lint: "layer-internal".into(),
                    file: path.clone(),
                    line: t.line,
                    message: format!(
                        "`{ident}` is {} — internal to {}; drive parallelism through \
                         the kernels or `slambench::engine` instead",
                        rule.what,
                        rule.allowed.join(", "),
                    ),
                });
            }
        }
    }
}

/// `mod-orphan`: `src/` files not reachable from any crate root via
/// `mod` declarations. Cargo ignores such files silently.
pub fn lint_mod_orphans(model: &Model, out: &mut Vec<Diagnostic>) {
    for c in &model.crates {
        if c.prefix.is_empty() {
            continue; // the root package's lib is named explicitly in Cargo.toml
        }
        let src_prefix = format!("{}src/", c.prefix);
        let in_src: Vec<usize> = model
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.src.path.starts_with(&src_prefix))
            .map(|(i, _)| i)
            .collect();
        let by_rel: BTreeMap<&PathBuf, usize> =
            in_src.iter().map(|&i| (&model.files[i].rel, i)).collect();
        let mut reached: BTreeSet<usize> = in_src
            .iter()
            .copied()
            .filter(|&i| {
                let p = &model.files[i].src.path;
                p == &format!("{src_prefix}lib.rs")
                    || p == &format!("{src_prefix}main.rs")
                    || p.starts_with(&format!("{src_prefix}bin/"))
            })
            .collect();
        let mut queue: Vec<usize> = reached.iter().copied().collect();
        while let Some(i) = queue.pop() {
            let file = &model.files[i];
            for (name, _) in &file.mod_decls {
                for cand in resolve_mod(&file.rel, name) {
                    if let Some(&j) = by_rel.get(&cand) {
                        if reached.insert(j) {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        for &i in &in_src {
            if reached.contains(&i) {
                continue;
            }
            let f = &model.files[i];
            if f.src.waived(1, "mod-orphan") {
                continue;
            }
            out.push(Diagnostic {
                lint: "mod-orphan".into(),
                file: f.src.path.clone(),
                line: 1,
                message: format!(
                    "no `mod` declaration reaches this file from `{}`'s crate roots: \
                     cargo is silently not compiling it — declare it or delete it",
                    c.name
                ),
            });
        }
    }
}
