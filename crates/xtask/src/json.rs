//! A minimal JSON reader/writer.
//!
//! `xtask` is dependency-free by design, and the two formats it speaks —
//! the `lint-baseline.json` gate file and SARIF 2.1 export — need only a
//! small, strict JSON subset: objects, arrays, strings, integers, bools
//! and null. Object key order is preserved (objects are association
//! lists) so emitted documents are byte-stable.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Numbers are kept as `f64`; the formats we speak only use integers
    /// that fit exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Association list: preserves insertion order for stable output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `u32`, if this is an exact small integer.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// Serialises with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{c}` at offset {pos} (found {:?})",
            chars.get(*pos)
        ))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                expect(chars, pos, ':')?;
                let value = parse_value(chars, pos)?;
                members.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, found {other:?}")),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(chars, pos)?)),
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while *pos < chars.len()
                && (chars[*pos].is_ascii_digit()
                    || matches!(chars[*pos], '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    '"' | '\\' | '/' => out.push(esc),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = chars.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        if hex.len() != 4 {
                            return Err("truncated \\u escape".into());
                        }
                        *pos += 4;
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        // surrogate pairs are not needed by our formats;
                        // map them to the replacement character
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let doc = Value::Obj(vec![
            ("version".into(), Value::Num(1.0)),
            (
                "findings".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("id".into(), Value::Str("XT004".into())),
                    ("file".into(), Value::Str("crates/x/src/lib.rs".into())),
                    ("line".into(), Value::Num(12.0)),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("findings").unwrap().as_arr().unwrap()[0]
                .get("line")
                .unwrap()
                .as_u32(),
            Some(12)
        );
    }

    #[test]
    fn escapes_are_handled_both_ways() {
        let doc = Value::Str("a \"quote\"\nnewline\ttab \\ backslash".into());
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn empty_containers_render_inline() {
        assert_eq!(Value::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Value::Obj(vec![]).pretty(), "{}\n");
    }
}
