//! Fault-tolerance policy for the evaluation engine: per-run deadlines,
//! a deterministic retry policy, quarantine records for persistently
//! failing configurations, and the seeded [`FaultPlan`] that injects
//! faults for the `tests/fault_tolerance.rs` suite.
//!
//! The paper's design-space exploration spends thousands of KinectFusion
//! evaluations per device, and the 83-phone fleet study only works
//! because one bad run cannot take down the campaign. This module holds
//! the *policy* side of that robustness: [`Deadline`] bounds how long a
//! single run may take (in frames or injected-clock nanoseconds),
//! [`RetryPolicy`] decides how often a failed run is re-attempted, and
//! [`QuarantinedConfig`] is the typed record the orchestrators surface
//! when a configuration keeps failing.
//!
//! # Determinism contract
//!
//! Every decision made here is a pure function of the policy, the seed
//! and the run's identity. Deadlines read time only through the injected
//! [`Clock`](slam_trace::Clock) (a
//! [`MockClock`](slam_trace::MockClock) in tests makes them exactly
//! reproducible), retry attempts are counted — never timed — and the
//! [`FaultPlan`] derives each injected fault from an FNV hash of
//! `(seed, domain, key, attempt)`. Two engines given the same plan and
//! the same requests produce bit-identical outcomes at any thread count.

use serde::{Deserialize, Serialize};
use slam_kfusion::KFusionConfig;
use slam_trace::{Clock, MockClock, WallClock};
use std::fmt;

/// Source of per-run clocks.
///
/// Each guarded evaluation measures its wall deadline on its **own**
/// fresh clock: a shared clock read from concurrently executing runs
/// would interleave nondeterministically, but a per-run clock makes the
/// truncation point a pure function of the run — bit-identical at any
/// thread count.
pub trait RunClock: Send + Sync + fmt::Debug {
    /// A fresh clock whose origin is the start of one run.
    fn start(&self) -> Box<dyn Clock>;
}

/// Real time: each run gets a [`WallClock`] started at the run's first
/// frame. The production default.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallRunClock;

impl RunClock for WallRunClock {
    fn start(&self) -> Box<dyn Clock> {
        Box::new(WallClock::new())
    }
}

/// Deterministic per-run time for tests: each run gets a fresh
/// [`MockClock`] advancing `step_ns` per reading, so wall deadlines fire
/// at exactly the same frame in every execution.
#[derive(Debug, Clone, Copy)]
pub struct MockRunClock {
    /// Nanoseconds each clock reading advances by.
    pub step_ns: u64,
}

impl RunClock for MockRunClock {
    fn start(&self) -> Box<dyn Clock> {
        Box::new(MockClock::new(self.step_ns))
    }
}

/// A per-run budget: how many frames a run may process and/or how many
/// wall-clock nanoseconds it may consume before it is stopped with a
/// [`TimedOut`](crate::engine::RunOutcome::TimedOut) degraded outcome.
///
/// The default is unlimited, which is also the zero-overhead path: with
/// no wall budget the guarded runner never reads the clock, so default
/// engines behave bit-identically to the pre-deadline code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deadline {
    /// Maximum frames a single run may process (`None` = all frames).
    pub max_frames: Option<usize>,
    /// Maximum wall-clock nanoseconds a single run may consume, measured
    /// on the engine's injected [`Clock`](slam_trace::Clock) (`None` =
    /// unlimited).
    pub max_wall_ns: Option<u64>,
}

impl Deadline {
    /// No budget: runs always complete (the default).
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// A frame-count budget.
    pub fn frames(max_frames: usize) -> Deadline {
        Deadline {
            max_frames: Some(max_frames),
            max_wall_ns: None,
        }
    }

    /// A wall-clock budget in nanoseconds on the engine's clock.
    pub fn wall_ns(max_wall_ns: u64) -> Deadline {
        Deadline {
            max_frames: None,
            max_wall_ns: Some(max_wall_ns),
        }
    }

    /// Whether this deadline can never fire.
    pub fn is_unlimited(&self) -> bool {
        self.max_frames.is_none() && self.max_wall_ns.is_none()
    }
}

/// How often the engine re-attempts a run whose execution panicked.
///
/// Retries are meant for *transient* faults (the injected kind in the
/// fault-tolerance suite, or flaky IO in a real deployment); a
/// configuration that fails every attempt is quarantined instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per run, including the first (at least 1).
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 1 }
    }
}

impl RetryPolicy {
    /// `extra` retries on top of the first attempt.
    pub fn retries(extra: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: extra + 1,
        }
    }

    /// Total attempts, never less than one.
    pub fn attempts(&self) -> usize {
        self.max_attempts.max(1)
    }
}

/// The engine's complete fault-tolerance policy: deadline + retry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Per-run budget.
    pub deadline: Deadline,
    /// Re-attempt policy for panicking runs.
    pub retry: RetryPolicy,
}

/// The typed record of a configuration the engine gave up on: every
/// attempt panicked, so the configuration is quarantined and later
/// requests for it fail fast instead of re-running it.
///
/// Orchestrators collect these into their summaries
/// ([`ExploreOutcome::quarantined`](crate::explore::ExploreOutcome),
/// fleet skips, suite failures) so a campaign report always says *which*
/// configurations were dropped and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedConfig {
    /// The configuration that kept failing.
    pub config: KFusionConfig,
    /// Attempts consumed before giving up.
    pub attempts: usize,
    /// The panic message of the last attempt.
    pub cause: String,
}

impl fmt::Display for QuarantinedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantined after {} attempt(s): {}",
            self.attempts, self.cause
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a_words(words: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// A seeded, deterministic fault-injection plan.
///
/// The plan is consulted by the engine at three points: before each run
/// attempt (injected panics and injected slowness) and around each disk
/// cache access (injected IO errors). Every decision is a pure function
/// of `(seed, fault domain, run key, attempt)`, so a plan reproduces the
/// exact same fault pattern across processes and thread counts — which
/// is what lets `tests/fault_tolerance.rs` assert bit-identical
/// recovery behaviour.
///
/// The default plan injects nothing and is free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Probability that a given `(run, attempt)` pair panics — a
    /// *transient* fault: the next attempt rolls a fresh decision, so a
    /// retry policy usually recovers it.
    pub transient_panic_rate: f64,
    /// Volume resolutions whose runs panic on *every* attempt — a
    /// targeted *persistent* fault that exhausts any retry policy and
    /// drives the configuration into quarantine.
    pub panic_on_volume: Vec<usize>,
    /// Volume resolutions whose runs are slowed down: each processed
    /// frame charges [`FaultPlan::slow_frame_penalty_ns`] extra
    /// nanoseconds against the wall deadline.
    pub slow_on_volume: Vec<usize>,
    /// Injected per-frame penalty for slow runs, nanoseconds.
    pub slow_frame_penalty_ns: u64,
    /// Probability that a single disk-cache access (load or store) fails
    /// as if the IO errored; the engine must degrade it to a cache miss.
    pub disk_error_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan can ever inject anything.
    pub fn is_inert(&self) -> bool {
        self.transient_panic_rate <= 0.0
            && self.panic_on_volume.is_empty()
            && self.slow_on_volume.is_empty()
            && self.disk_error_rate <= 0.0
    }

    /// Deterministic uniform draw in `[0, 1)` for one decision site.
    fn draw(&self, domain: u64, key: u64, attempt: u64) -> f64 {
        let h = fnv1a_words(&[self.seed, domain, key, attempt]);
        // use the top 53 bits for an unbiased double in [0, 1)
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns the cause string when `(run key, attempt)` should panic.
    pub fn injected_panic(
        &self,
        config: &KFusionConfig,
        key: u64,
        attempt: usize,
    ) -> Option<String> {
        if self.panic_on_volume.contains(&config.volume_resolution) {
            return Some(format!(
                "injected persistent fault (volume {})",
                config.volume_resolution
            ));
        }
        if self.transient_panic_rate > 0.0
            && self.draw(1, key, attempt as u64) < self.transient_panic_rate
        {
            return Some(format!("injected transient fault (attempt {attempt})"));
        }
        None
    }

    /// The injected per-frame wall-clock penalty for this run, if any.
    pub fn injected_slow_ns(&self, config: &KFusionConfig) -> u64 {
        if self.slow_on_volume.contains(&config.volume_resolution) {
            self.slow_frame_penalty_ns
        } else {
            0
        }
    }

    /// Whether one disk-cache access should fail as an IO error.
    /// `access` disambiguates the load/store sites of one key.
    pub fn injected_disk_error(&self, key: u64, access: u64) -> bool {
        self.disk_error_rate > 0.0 && self.draw(2, key, access) < self.disk_error_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_unlimited_single_attempt() {
        let policy = FaultPolicy::default();
        assert!(policy.deadline.is_unlimited());
        assert_eq!(policy.retry.attempts(), 1);
        assert!(FaultPlan::none().is_inert());
    }

    #[test]
    fn retry_policy_counts_total_attempts() {
        assert_eq!(RetryPolicy::retries(2).attempts(), 3);
        assert_eq!(RetryPolicy { max_attempts: 0 }.attempts(), 1);
    }

    #[test]
    fn plan_decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            transient_panic_rate: 0.5,
            ..FaultPlan::default()
        };
        let config = KFusionConfig::fast_test();
        for key in 0..64u64 {
            for attempt in 0..4usize {
                assert_eq!(
                    plan.injected_panic(&config, key, attempt),
                    plan.injected_panic(&config, key, attempt)
                );
            }
        }
        // the rate is roughly honoured over many draws
        let hits = (0..1000u64)
            .filter(|&k| plan.injected_panic(&config, k, 0).is_some())
            .count();
        assert!((350..650).contains(&hits), "hit rate {hits}/1000");
    }

    #[test]
    fn transient_faults_vary_by_attempt_but_persistent_do_not() {
        let plan = FaultPlan {
            seed: 7,
            transient_panic_rate: 0.5,
            panic_on_volume: vec![96],
            ..FaultPlan::default()
        };
        let config = KFusionConfig::fast_test();
        // some key must fail on attempt 0 and pass on a later attempt
        let recovers = (0..200u64).any(|k| {
            plan.injected_panic(&config, k, 0).is_some()
                && plan.injected_panic(&config, k, 1).is_none()
        });
        assert!(recovers, "transient faults must be retryable");
        let mut cursed = config.clone();
        cursed.volume_resolution = 96;
        for attempt in 0..5 {
            assert!(plan.injected_panic(&cursed, 0, attempt).is_some());
        }
    }

    #[test]
    fn slow_injection_targets_volumes() {
        let plan = FaultPlan {
            slow_on_volume: vec![64],
            slow_frame_penalty_ns: 1_000,
            ..FaultPlan::default()
        };
        let mut config = KFusionConfig::fast_test();
        config.volume_resolution = 64;
        assert_eq!(plan.injected_slow_ns(&config), 1_000);
        config.volume_resolution = 128;
        assert_eq!(plan.injected_slow_ns(&config), 0);
    }

    #[test]
    fn disk_errors_are_deterministic_and_rate_bound() {
        let plan = FaultPlan {
            seed: 3,
            disk_error_rate: 1.0,
            ..FaultPlan::default()
        };
        assert!(plan.injected_disk_error(11, 0));
        let none = FaultPlan {
            seed: 3,
            disk_error_rate: 0.0,
            ..FaultPlan::default()
        };
        assert!(!none.injected_disk_error(11, 0));
    }
}
