//! Design-space exploration of the KinectFusion configuration on a device
//! model — the machinery behind the paper's Figure 2 and headline result.

use crate::config_space::{decode_config, encode_config, slambench_space};
use crate::engine::{self, EvalEngine};
use crate::run::PipelineRun;
use serde::{Deserialize, Serialize};
use slam_dse::active::{ActiveLearner, ActiveLearnerOptions};
use slam_dse::Evaluation;
use slam_kfusion::KFusionConfig;
use slam_power::DeviceModel;
use slam_scene::dataset::SyntheticDataset;

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total pipeline evaluations to spend.
    pub budget: usize,
    /// Active-learner settings (seed, batch sizes, forest).
    pub learner: ActiveLearnerOptions,
    /// The paper's accuracy constraint: max ATE must stay below this
    /// (metres) for a configuration to count as feasible.
    pub accuracy_limit: f64,
    /// Worker threads for the pipeline kernels during each evaluation
    /// (`0` = all available). Outputs are identical for any value.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            budget: 120,
            learner: ActiveLearnerOptions::default(),
            accuracy_limit: 0.05,
            threads: 0,
        }
    }
}

impl ExploreOptions {
    /// A tiny exploration for tests.
    pub fn fast() -> ExploreOptions {
        ExploreOptions {
            budget: 12,
            learner: ActiveLearnerOptions::fast(),
            accuracy_limit: 0.05,
            threads: 0,
        }
    }
}

/// One configuration with its measured objectives on the target device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredConfig {
    /// Encoded parameter vector.
    pub x: Vec<f64>,
    /// Decoded configuration.
    pub config: KFusionConfig,
    /// Modelled mean seconds per frame on the device (the paper's
    /// "Runtime (sec)" axis).
    pub runtime_s: f64,
    /// Maximum ATE over the sequence, metres (the "Max ATE (m)" axis).
    pub max_ate_m: f64,
    /// Modelled average power, watts.
    pub watts: f64,
    /// Convenience: `1 / runtime_s`.
    pub fps: f64,
}

impl MeasuredConfig {
    /// Whether the configuration meets the accuracy constraint.
    pub fn is_accurate(&self, limit: f64) -> bool {
        self.max_ate_m <= limit
    }

    fn objectives(&self) -> Vec<f64> {
        vec![self.runtime_s, self.max_ate_m, self.watts]
    }
}

/// The outcome of an exploration (Figure 2's data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreOutcome {
    /// Everything evaluated, in evaluation order.
    pub measured: Vec<MeasuredConfig>,
    /// How many of `measured` came from the initial random design.
    pub initial_count: usize,
    /// The measured default configuration (the baseline point in the
    /// figure).
    pub default_config: MeasuredConfig,
    /// The accuracy constraint used.
    pub accuracy_limit: f64,
}

impl ExploreOutcome {
    /// The feasible (accurate-enough) configuration with the lowest
    /// runtime — the "best configuration" the paper deploys on the XU3
    /// and the phones.
    pub fn best_feasible(&self) -> Option<&MeasuredConfig> {
        self.measured
            .iter()
            .filter(|m| m.is_accurate(self.accuracy_limit))
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
    }

    /// The non-dominated subset over (runtime, maxATE, watts).
    pub fn pareto(&self) -> Vec<&MeasuredConfig> {
        let evals: Vec<Evaluation> = self
            .measured
            .iter()
            .map(|m| Evaluation::new(m.x.clone(), m.objectives()))
            .collect();
        let front = slam_dse::pareto::pareto_front(&evals);
        front
            .iter()
            .filter_map(|f| self.measured.iter().find(|m| m.x == f.x))
            .collect()
    }
}

/// Builds a [`MeasuredConfig`] by replaying a pipeline run's workload
/// trace on the device model.
fn measured_from_run(
    x: &[f64],
    config: KFusionConfig,
    run: &PipelineRun,
    device: &DeviceModel,
) -> MeasuredConfig {
    let report = run.cost_on(device);
    let runtime_s = report.timing.mean_frame_time();
    // a run that lost tracking for good is useless regardless of its ATE
    // numbers mid-run; penalise by reporting the worst-case error bound
    let max_ate_m = if run.lost_frames > run.frames.len() / 2 {
        f64::from(config.volume_size)
    } else {
        run.ate.max
    };
    MeasuredConfig {
        x: x.to_vec(),
        config,
        runtime_s,
        max_ate_m,
        watts: report.run_cost.average_watts(),
        fps: if runtime_s > 0.0 {
            1.0 / runtime_s
        } else {
            0.0
        },
    }
}

/// Measures one encoded configuration on `(dataset, device)` using the
/// kernel thread count decoded from the configuration (auto).
///
/// Always executes the pipeline (no caching) — callers amortising
/// repeated evaluations use an [`EvalEngine`] via [`measure_with_engine`].
pub fn measure(dataset: &SyntheticDataset, device: &DeviceModel, x: &[f64]) -> MeasuredConfig {
    measure_with_threads(dataset, device, x, 0)
}

/// Like [`measure`] but overriding the kernel thread count (`0` = all
/// available). The measured objectives are identical for any value.
pub fn measure_with_threads(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    x: &[f64],
    threads: usize,
) -> MeasuredConfig {
    let mut config = decode_config(x);
    config.threads = threads;
    let run = engine::evaluate_once(dataset, &config);
    measured_from_run(x, config, &run, device)
}

/// [`measure`] through an [`EvalEngine`]: a repeated configuration is
/// served from the cache instead of re-running the pipeline.
pub fn measure_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    x: &[f64],
    threads: usize,
) -> MeasuredConfig {
    let mut config = decode_config(x);
    config.threads = threads;
    let run = eval.evaluate(dataset, &config);
    measured_from_run(x, config, &run, device)
}

/// Measures a batch of encoded configurations through an [`EvalEngine`],
/// scheduling the cache misses concurrently on the shared worker pool.
/// Results are returned in request order and are bit-identical to
/// serial [`measure`] calls (any batch order, any thread count).
pub fn measure_batch_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    xs: &[Vec<f64>],
    threads: usize,
) -> Vec<MeasuredConfig> {
    let configs: Vec<KFusionConfig> = xs
        .iter()
        .map(|x| {
            let mut config = decode_config(x);
            config.threads = threads;
            config
        })
        .collect();
    let runs = eval.evaluate_batch(dataset, &configs);
    xs.iter()
        .zip(configs)
        .zip(&runs)
        .map(|((x, config), run)| measured_from_run(x, config, run, device))
        .collect()
}

/// Runs the HyperMapper-style active exploration (Figure 2's "Active
/// learning" series) on a fresh in-memory [`EvalEngine`]. Deterministic
/// in `options.learner.seed`.
pub fn explore(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
) -> ExploreOutcome {
    explore_with_engine(&EvalEngine::new(), dataset, device, options)
}

/// [`explore`] on a caller-provided [`EvalEngine`] (e.g. one with a
/// warm disk cache shared across bench bins). Each proposal batch from
/// the active learner is evaluated concurrently through the engine; the
/// outcome is identical to evaluating serially.
pub fn explore_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
) -> ExploreOutcome {
    let space = slambench_space();
    let mut learner = ActiveLearner::new(space, 3, options.learner);
    let mut measured: Vec<MeasuredConfig> = Vec::new();
    let result = learner.run_batched(options.budget, |xs| {
        let batch = measure_batch_with_engine(eval, dataset, device, xs, options.threads);
        batch
            .into_iter()
            .map(|m| {
                let obj = m.objectives();
                measured.push(m);
                obj
            })
            .collect()
    });
    let default_config = measure_with_engine(
        eval,
        dataset,
        device,
        &encode_config(&KFusionConfig::default()),
        options.threads,
    );
    ExploreOutcome {
        measured,
        initial_count: result.initial_count,
        default_config,
        accuracy_limit: options.accuracy_limit,
    }
}

/// Evaluates `n` uniform random configurations in parallel (Figure 2's
/// "Random sampling" baseline) on a fresh in-memory [`EvalEngine`].
/// Deterministic in `seed`; results are returned in draw order.
pub fn random_sweep(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
) -> Vec<MeasuredConfig> {
    random_sweep_with_engine(&EvalEngine::new(), dataset, device, n, seed)
}

/// [`random_sweep`] on a caller-provided [`EvalEngine`]. The draws are
/// evaluated as one engine batch: misses run concurrently on the shared
/// worker pool, each under an inner kernel-thread budget so sweep-level
/// and kernel-level parallelism never multiply past the machine.
pub fn random_sweep_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
) -> Vec<MeasuredConfig> {
    use rand::SeedableRng;
    let space = slambench_space();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let samples = slam_dse::sampler::random_samples(&space, n, &mut rng);
    measure_batch_with_engine(eval, dataset, device, &samples, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_power::devices::odroid_xu3;
    use slam_scene::dataset::DatasetConfig;
    use slam_scene::noise::DepthNoiseModel;

    fn tiny_dataset(frames: usize) -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = frames;
        dc.noise = DepthNoiseModel::ideal();
        SyntheticDataset::generate(&dc)
    }

    #[test]
    fn measure_default_config() {
        let dataset = tiny_dataset(4);
        let m = measure(
            &dataset,
            &odroid_xu3(),
            &encode_config(&KFusionConfig::fast_test()),
        );
        assert!(m.runtime_s > 0.0);
        assert!(m.watts > 0.0);
        assert!(m.fps > 0.0);
        assert!(m.max_ate_m < 1.0);
    }

    #[test]
    fn smaller_volume_is_faster() {
        let dataset = tiny_dataset(4);
        let dev = odroid_xu3();
        let mut small = KFusionConfig::fast_test();
        small.volume_resolution = 32;
        let mut large = KFusionConfig::fast_test();
        large.volume_resolution = 192;
        let ms = measure(&dataset, &dev, &encode_config(&small));
        let ml = measure(&dataset, &dev, &encode_config(&large));
        assert!(
            ms.runtime_s < ml.runtime_s,
            "{} !< {}",
            ms.runtime_s,
            ml.runtime_s
        );
    }

    #[test]
    fn explore_runs_within_budget_and_finds_feasible() {
        let dataset = tiny_dataset(4);
        let outcome = explore(&dataset, &odroid_xu3(), &ExploreOptions::fast());
        assert!(outcome.measured.len() <= 12);
        assert!(outcome.initial_count <= outcome.measured.len());
        assert!(outcome.default_config.runtime_s > 0.0);
        // the tiny scene tracks easily: something feasible must exist
        assert!(outcome.best_feasible().is_some());
        let pareto = outcome.pareto();
        assert!(!pareto.is_empty());
        assert!(pareto.len() <= outcome.measured.len());
    }

    #[test]
    fn random_sweep_is_deterministic_and_parallel_safe() {
        let dataset = tiny_dataset(3);
        let dev = odroid_xu3();
        let a = random_sweep(&dataset, &dev, 6, 99);
        let b = random_sweep(&dataset, &dev, 6, 99);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.x, y.x);
            assert!((x.runtime_s - y.runtime_s).abs() < 1e-12);
            assert!((x.max_ate_m - y.max_ate_m).abs() < 1e-12);
        }
    }

    #[test]
    fn explore_through_warm_engine_is_identical_and_cached() {
        let dataset = tiny_dataset(4);
        let dev = odroid_xu3();
        let opts = ExploreOptions::fast();
        let cold = explore(&dataset, &dev, &opts);
        let eval = EvalEngine::new();
        let warm_first = explore_with_engine(&eval, &dataset, &dev, &opts);
        let misses_after_first = eval.stats().misses;
        let warm_second = explore_with_engine(&eval, &dataset, &dev, &opts);
        assert_eq!(
            eval.stats().misses,
            misses_after_first,
            "re-exploring on a warm engine must be pure cache hits"
        );
        // ExploreOutcome holds no wall-clock fields: byte-identical
        let json = |o: &ExploreOutcome| serde_json::to_string(o).unwrap();
        assert_eq!(json(&cold), json(&warm_first));
        assert_eq!(json(&cold), json(&warm_second));
    }

    #[test]
    fn best_feasible_respects_limit() {
        let dataset = tiny_dataset(4);
        let outcome = explore(&dataset, &odroid_xu3(), &ExploreOptions::fast());
        if let Some(best) = outcome.best_feasible() {
            assert!(best.max_ate_m <= outcome.accuracy_limit);
            // nothing feasible is faster
            for m in &outcome.measured {
                if m.is_accurate(outcome.accuracy_limit) {
                    assert!(m.runtime_s >= best.runtime_s - 1e-12);
                }
            }
        }
    }
}
