//! Design-space exploration of a SLAM algorithm's configuration on a
//! device model — the machinery behind the paper's Figure 2 and headline
//! result.
//!
//! The [`EvalEngine`] is the algorithm handle: every `*_with_engine`
//! entry point explores the space of [`EvalEngine::algorithm`] (built
//! from the algorithm's own parameter descriptor), and the convenience
//! wrappers take an explicit [`AlgoId`]. The historical KinectFusion
//! functions are thin shims over the generic ones.

use crate::checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointOptions, RecordedEval, SweepCheckpoint,
    SweepProgress,
};
use crate::config_space::{decode_for, encode_for, space_for};
use crate::engine::{self, EvalEngine, RunOutcome};
use crate::fault::QuarantinedConfig;
use crate::run::PipelineRun;
use serde::{Deserialize, Serialize};
use slam_dse::active::{ActiveLearner, ActiveLearnerOptions, BatchEval};
use slam_dse::Evaluation;
use slam_kfusion::{AlgoId, KFusionConfig};
use slam_power::DeviceModel;
use slam_scene::dataset::SyntheticDataset;
use std::collections::VecDeque;

/// Objectives fed to the learner for a quarantined evaluation: a point
/// so bad the optimiser steers away from the region without ever
/// treating the failure as a measurement.
pub(crate) const FAILED_OBJECTIVES: [f64; 3] = [1e9, 1e9, 1e9];

/// Options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total pipeline evaluations to spend.
    pub budget: usize,
    /// Active-learner settings (seed, batch sizes, forest).
    pub learner: ActiveLearnerOptions,
    /// The paper's accuracy constraint: max ATE must stay below this
    /// (metres) for a configuration to count as feasible.
    pub accuracy_limit: f64,
    /// Worker threads for the pipeline kernels during each evaluation
    /// (`0` = all available). Outputs are identical for any value.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            budget: 120,
            learner: ActiveLearnerOptions::default(),
            accuracy_limit: 0.05,
            threads: 0,
        }
    }
}

impl ExploreOptions {
    /// A tiny exploration for tests.
    pub fn fast() -> ExploreOptions {
        ExploreOptions {
            budget: 12,
            learner: ActiveLearnerOptions::fast(),
            accuracy_limit: 0.05,
            threads: 0,
        }
    }
}

/// One configuration with its measured objectives on the target device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredConfig {
    /// Encoded parameter vector.
    pub x: Vec<f64>,
    /// Decoded configuration.
    pub config: KFusionConfig,
    /// Modelled mean seconds per frame on the device (the paper's
    /// "Runtime (sec)" axis).
    pub runtime_s: f64,
    /// Maximum ATE over the sequence, metres (the "Max ATE (m)" axis).
    pub max_ate_m: f64,
    /// Modelled average power, watts.
    pub watts: f64,
    /// Convenience: `1 / runtime_s`.
    pub fps: f64,
}

impl MeasuredConfig {
    /// Whether the configuration meets the accuracy constraint.
    pub fn is_accurate(&self, limit: f64) -> bool {
        self.max_ate_m <= limit
    }

    pub(crate) fn objectives(&self) -> Vec<f64> {
        vec![self.runtime_s, self.max_ate_m, self.watts]
    }
}

/// The outcome of an exploration (Figure 2's data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreOutcome {
    /// Everything evaluated, in evaluation order.
    pub measured: Vec<MeasuredConfig>,
    /// How many of `measured` came from the initial random design.
    pub initial_count: usize,
    /// The measured default configuration (the baseline point in the
    /// figure).
    pub default_config: MeasuredConfig,
    /// The accuracy constraint used.
    pub accuracy_limit: f64,
    /// Configurations the engine quarantined during this exploration
    /// (every attempt panicked): dropped from `measured`, reported here.
    #[serde(default)]
    pub quarantined: Vec<QuarantinedConfig>,
}

impl ExploreOutcome {
    /// The feasible (accurate-enough) configuration with the lowest
    /// runtime — the "best configuration" the paper deploys on the XU3
    /// and the phones.
    pub fn best_feasible(&self) -> Option<&MeasuredConfig> {
        self.measured
            .iter()
            .filter(|m| m.is_accurate(self.accuracy_limit))
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
    }

    /// The non-dominated subset over (runtime, maxATE, watts).
    pub fn pareto(&self) -> Vec<&MeasuredConfig> {
        let evals: Vec<Evaluation> = self
            .measured
            .iter()
            .map(|m| Evaluation::new(m.x.clone(), m.objectives()))
            .collect();
        let front = slam_dse::pareto::pareto_front(&evals);
        front
            .iter()
            .filter_map(|f| self.measured.iter().find(|m| m.x == f.x))
            .collect()
    }
}

/// Builds a [`MeasuredConfig`] by replaying a pipeline run's workload
/// trace on the device model. `degraded` marks a run the engine cut
/// short at its deadline: like losing tracking, it is penalised with the
/// worst-case error bound so the optimiser steers away from it.
fn measured_from_run(
    x: &[f64],
    config: KFusionConfig,
    run: &PipelineRun,
    device: &DeviceModel,
    degraded: bool,
) -> MeasuredConfig {
    let report = run.cost_on(device);
    let runtime_s = report.timing.mean_frame_time();
    // a run that lost tracking for good is useless regardless of its ATE
    // numbers mid-run; penalise by reporting the worst-case error bound
    let max_ate_m = if degraded || run.lost_frames > run.frames.len() / 2 {
        f64::from(config.volume_size)
    } else {
        run.ate.max
    };
    MeasuredConfig {
        x: x.to_vec(),
        config,
        runtime_s,
        max_ate_m,
        watts: report.run_cost.average_watts(),
        fps: if runtime_s > 0.0 {
            1.0 / runtime_s
        } else {
            0.0
        },
    }
}

/// Measures one encoded configuration on `(dataset, device)` using the
/// kernel thread count decoded from the configuration (auto).
///
/// Always executes the pipeline (no caching) — callers amortising
/// repeated evaluations use an [`EvalEngine`] via [`measure_with_engine`].
pub fn measure(dataset: &SyntheticDataset, device: &DeviceModel, x: &[f64]) -> MeasuredConfig {
    measure_with_threads(dataset, device, x, 0)
}

/// Like [`measure`] but overriding the kernel thread count (`0` = all
/// available). The measured objectives are identical for any value.
pub fn measure_with_threads(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    x: &[f64],
    threads: usize,
) -> MeasuredConfig {
    let mut config = decode_for(AlgoId::KinectFusion, x);
    config.threads = threads;
    let run = engine::evaluate_once(dataset, &config);
    measured_from_run(x, config, &run, device, false)
}

/// [`measure`] through an [`EvalEngine`]: a repeated configuration is
/// served from the cache instead of re-running the pipeline.
pub fn measure_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    x: &[f64],
    threads: usize,
) -> MeasuredConfig {
    let mut config = decode_for(eval.algorithm(), x);
    config.threads = threads;
    let run = eval.evaluate(dataset, &config);
    measured_from_run(x, config, &run, device, false)
}

/// Measures a batch of encoded configurations through an [`EvalEngine`],
/// scheduling the cache misses concurrently on the shared worker pool.
/// Results are returned in request order and are bit-identical to
/// serial [`measure`] calls (any batch order, any thread count).
pub fn measure_batch_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    xs: &[Vec<f64>],
    threads: usize,
) -> Vec<MeasuredConfig> {
    let configs: Vec<KFusionConfig> = xs
        .iter()
        .map(|x| {
            let mut config = decode_for(eval.algorithm(), x);
            config.threads = threads;
            config
        })
        .collect();
    let runs = eval.evaluate_batch(dataset, &configs);
    xs.iter()
        .zip(configs)
        .zip(&runs)
        .map(|((x, config), run)| measured_from_run(x, config, run, device, false))
        .collect()
}

/// One evaluation slot of a fault-tolerant measurement batch.
struct SlotMeasure {
    /// The measurement, absent when the slot was quarantined.
    measured: Option<MeasuredConfig>,
    /// The quarantine record, present only for a failed slot.
    quarantined: Option<QuarantinedConfig>,
    /// What the active learner is told about this slot.
    objectives: Vec<f64>,
}

/// [`measure_batch_with_engine`] with per-slot fault tolerance: a
/// quarantined slot becomes a [`FAILED_OBJECTIVES`] dummy point instead
/// of aborting the sweep; a deadline-truncated run becomes a degraded
/// (worst-case-ATE) measurement.
fn measure_slots(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    xs: &[Vec<f64>],
    threads: usize,
) -> Vec<SlotMeasure> {
    let configs: Vec<KFusionConfig> = xs
        .iter()
        .map(|x| {
            let mut config = decode_for(eval.algorithm(), x);
            config.threads = threads;
            config
        })
        .collect();
    let outcomes = match eval.try_evaluate_batch_outcomes(dataset, &configs) {
        Ok(outcomes) => outcomes,
        // xtask-allow: panic-path — reason: empty datasets / invalid decoded configs violate explore's documented precondition (run_pipeline's historical contract); per-slot failures never reach this arm
        Err(e) => panic!("exploration batch failed: {e}"),
    };
    xs.iter()
        .zip(configs)
        .zip(outcomes)
        .map(|((x, config), outcome)| match outcome {
            RunOutcome::Done(run) => {
                let m = measured_from_run(x, config, &run, device, false);
                SlotMeasure {
                    objectives: m.objectives(),
                    measured: Some(m),
                    quarantined: None,
                }
            }
            RunOutcome::TimedOut(run) => {
                let m = measured_from_run(x, config, &run, device, true);
                SlotMeasure {
                    objectives: m.objectives(),
                    measured: Some(m),
                    quarantined: None,
                }
            }
            RunOutcome::Failed(q) => SlotMeasure {
                measured: None,
                quarantined: Some(q),
                objectives: FAILED_OBJECTIVES.to_vec(),
            },
        })
        .collect()
}

/// Records a quarantined configuration once per distinct configuration.
pub(crate) fn push_quarantine(list: &mut Vec<QuarantinedConfig>, q: QuarantinedConfig) {
    if !list.iter().any(|seen| seen.config == q.config) {
        list.push(q);
    }
}

/// Runs the HyperMapper-style active exploration (Figure 2's "Active
/// learning" series) on a fresh in-memory [`EvalEngine`]. Deterministic
/// in `options.learner.seed`.
pub fn explore(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
) -> ExploreOutcome {
    explore_algorithm(AlgoId::KinectFusion, dataset, device, options)
}

/// [`explore`] for any registered algorithm, on a fresh in-memory
/// [`EvalEngine`] bound to it: the learner sweeps that algorithm's own
/// parameter space.
pub fn explore_algorithm(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
) -> ExploreOutcome {
    explore_with_engine(
        &EvalEngine::new().with_algorithm(algorithm),
        dataset,
        device,
        options,
    )
}

/// [`explore`] on a caller-provided [`EvalEngine`] (e.g. one with a
/// warm disk cache shared across bench bins). Each proposal batch from
/// the active learner is evaluated concurrently through the engine; the
/// outcome is identical to evaluating serially.
pub fn explore_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
) -> ExploreOutcome {
    let space = space_for(eval.algorithm());
    let mut learner = ActiveLearner::new(space, 3, options.learner);
    let mut measured: Vec<MeasuredConfig> = Vec::new();
    let mut quarantined: Vec<QuarantinedConfig> = Vec::new();
    let result = learner.run_batched(options.budget, |xs| {
        measure_slots(eval, dataset, device, xs, options.threads)
            .into_iter()
            .map(|slot| {
                if let Some(m) = slot.measured {
                    measured.push(m);
                }
                if let Some(q) = slot.quarantined {
                    push_quarantine(&mut quarantined, q);
                }
                slot.objectives
            })
            .collect()
    });
    let default_config = measure_with_engine(
        eval,
        dataset,
        device,
        &encode_for(eval.algorithm(), &KFusionConfig::default()),
        options.threads,
    );
    ExploreOutcome {
        measured,
        initial_count: result.initial_count,
        default_config,
        accuracy_limit: options.accuracy_limit,
        quarantined,
    }
}

/// [`explore_with_engine`] with atomic JSON checkpoints every
/// [`CheckpointOptions::every`] evaluations and resume support.
///
/// The checkpoint records every evaluation (measurements *and*
/// quarantined failures) in order; resuming replays that record through
/// the same deterministic learner loop, verifying each proposal vector
/// bitwise against the record, so a resumed sweep reaches a final
/// outcome bit-identical to an uninterrupted one — given the same seed,
/// at any thread count. A checkpoint whose metadata (seed, budget,
/// dataset, device, threads) does not match is ignored, and a stale
/// record tail (e.g. from a different engine policy) falls back to
/// fresh evaluation.
pub fn explore_checkpointed(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &ExploreOptions,
    ckpt: &CheckpointOptions,
) -> SweepProgress<ExploreOutcome> {
    let meta = SweepCheckpoint {
        kind: "explore".to_string(),
        algorithm: eval.algorithm().id().to_string(),
        seed: options.learner.seed,
        budget: options.budget,
        dataset_fingerprint: engine::dataset_fingerprint(dataset),
        device: device.name.clone(),
        threads: options.threads,
        completed: Vec::new(),
    };
    let mut replay: VecDeque<RecordedEval> = if ckpt.resume {
        load_checkpoint(&ckpt.path())
            .filter(|cp| cp.matches(&meta))
            .map(|cp| cp.completed.into())
            .unwrap_or_default()
    } else {
        VecDeque::new()
    };
    let mut record: Vec<RecordedEval> = Vec::new();
    let mut evals_done = 0usize;
    let mut since_save = 0usize;
    let every = ckpt.every.max(1);
    let space = space_for(eval.algorithm());
    let mut learner = ActiveLearner::new(space, 3, options.learner);
    let (result, suspended) = learner.run_batched_resumable(options.budget, |xs| {
        if ckpt.stop_after.is_some_and(|limit| evals_done >= limit) {
            return BatchEval::Suspend;
        }
        let mut objectives: Vec<Vec<f64>> = Vec::with_capacity(xs.len());
        // replay the recorded prefix of this batch, verifying the
        // learner re-proposed exactly what the record says it did
        let mut fresh_from = 0;
        while fresh_from < xs.len() && !replay.is_empty() {
            let matches = replay
                .front()
                .is_some_and(|r| r.x() == xs[fresh_from].as_slice());
            if !matches {
                // the record diverged (stale checkpoint): drop the tail
                // and evaluate the rest fresh
                replay.clear();
                break;
            }
            if let Some(r) = replay.pop_front() {
                objectives.push(r.objectives());
                record.push(r);
                evals_done += 1;
                fresh_from += 1;
            }
        }
        if fresh_from < xs.len() {
            for (x, slot) in xs[fresh_from..].iter().zip(measure_slots(
                eval,
                dataset,
                device,
                &xs[fresh_from..],
                options.threads,
            )) {
                objectives.push(slot.objectives.clone());
                record.push(match (slot.measured, slot.quarantined) {
                    (Some(m), _) => RecordedEval::Measured(m),
                    (None, Some(q)) => RecordedEval::Failed {
                        x: x.clone(),
                        quarantined: q,
                    },
                    (None, None) => unreachable_slot(x),
                });
                evals_done += 1;
                since_save += 1;
            }
        }
        if since_save >= every {
            save_checkpoint(&ckpt.path(), &meta.with_completed(record.clone()));
            since_save = 0;
        }
        BatchEval::Evaluated(objectives)
    });
    save_checkpoint(&ckpt.path(), &meta.with_completed(record.clone()));
    if suspended {
        return SweepProgress::Suspended {
            completed: evals_done,
            path: ckpt.path(),
        };
    }
    let mut measured = Vec::new();
    let mut quarantined = Vec::new();
    for r in record {
        match r {
            RecordedEval::Measured(m) => measured.push(m),
            RecordedEval::Failed { quarantined: q, .. } => push_quarantine(&mut quarantined, q),
        }
    }
    let default_config = measure_with_engine(
        eval,
        dataset,
        device,
        &encode_for(eval.algorithm(), &KFusionConfig::default()),
        options.threads,
    );
    SweepProgress::Complete(ExploreOutcome {
        measured,
        initial_count: result.initial_count,
        default_config,
        accuracy_limit: options.accuracy_limit,
        quarantined,
    })
}

/// A slot with neither a measurement nor a quarantine record cannot be
/// constructed by [`measure_slots`]; keeping the panic in one audited
/// place lets the match stay exhaustive without unsafe defaults.
fn unreachable_slot(x: &[f64]) -> RecordedEval {
    // xtask-allow: panic-path — reason: measure_slots returns Some(measured) xor Some(quarantined) by construction
    unreachable!("slot for {x:?} has neither measurement nor quarantine record")
}

/// Evaluates `n` uniform random configurations in parallel (Figure 2's
/// "Random sampling" baseline) on a fresh in-memory [`EvalEngine`].
/// Deterministic in `seed`; results are returned in draw order.
pub fn random_sweep(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
) -> Vec<MeasuredConfig> {
    random_sweep_with_engine(&EvalEngine::new(), dataset, device, n, seed)
}

/// [`random_sweep`] for any registered algorithm, on a fresh in-memory
/// [`EvalEngine`] bound to it.
pub fn random_sweep_algorithm(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
) -> Vec<MeasuredConfig> {
    random_sweep_with_engine(
        &EvalEngine::new().with_algorithm(algorithm),
        dataset,
        device,
        n,
        seed,
    )
}

/// [`random_sweep`] on a caller-provided [`EvalEngine`]. The draws are
/// evaluated as one engine batch: misses run concurrently on the shared
/// worker pool, each under an inner kernel-thread budget so sweep-level
/// and kernel-level parallelism never multiply past the machine.
pub fn random_sweep_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
) -> Vec<MeasuredConfig> {
    use rand::SeedableRng;
    let space = space_for(eval.algorithm());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let samples = slam_dse::sampler::random_samples(&space, n, &mut rng);
    measure_batch_with_engine(eval, dataset, device, &samples, 0)
}

/// The result of a fault-tolerant random sweep: successful measurements
/// in draw order plus the quarantined configurations that were dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomSweepOutcome {
    /// Measurements for every draw that ran (complete or degraded), in
    /// draw order.
    pub measured: Vec<MeasuredConfig>,
    /// Draws whose runs were quarantined.
    pub quarantined: Vec<QuarantinedConfig>,
}

/// [`random_sweep_with_engine`] with per-slot fault tolerance, atomic
/// JSON checkpoints every [`CheckpointOptions::every`] evaluations, and
/// resume support. The draws are fixed by the seed up front, so a
/// resumed sweep replays the checkpointed prefix (validated against the
/// re-drawn samples) and evaluates only the remainder — the final
/// outcome is bit-identical to an uninterrupted sweep.
pub fn random_sweep_checkpointed(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    n: usize,
    seed: u64,
    ckpt: &CheckpointOptions,
) -> SweepProgress<RandomSweepOutcome> {
    use rand::SeedableRng;
    let space = space_for(eval.algorithm());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let samples = slam_dse::sampler::random_samples(&space, n, &mut rng);
    let meta = SweepCheckpoint {
        kind: "random_sweep".to_string(),
        algorithm: eval.algorithm().id().to_string(),
        seed,
        budget: n,
        dataset_fingerprint: engine::dataset_fingerprint(dataset),
        device: device.name.clone(),
        threads: 0,
        completed: Vec::new(),
    };
    let mut record: Vec<RecordedEval> = if ckpt.resume {
        load_checkpoint(&ckpt.path())
            .filter(|cp| cp.matches(&meta))
            .map(|cp| cp.completed)
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    // validate the replayed prefix against the (re-drawn) samples
    record.truncate(samples.len());
    if record
        .iter()
        .zip(&samples)
        .any(|(r, x)| r.x() != x.as_slice())
    {
        record.clear();
    }
    let every = ckpt.every.max(1);
    let mut done = record.len();
    while done < samples.len() {
        if ckpt.stop_after.is_some_and(|limit| done >= limit) {
            save_checkpoint(&ckpt.path(), &meta.with_completed(record));
            return SweepProgress::Suspended {
                completed: done,
                path: ckpt.path(),
            };
        }
        let end = (done + every).min(samples.len());
        for (x, slot) in samples[done..end].iter().zip(measure_slots(
            eval,
            dataset,
            device,
            &samples[done..end],
            0,
        )) {
            record.push(match (slot.measured, slot.quarantined) {
                (Some(m), _) => RecordedEval::Measured(m),
                (None, Some(q)) => RecordedEval::Failed {
                    x: x.clone(),
                    quarantined: q,
                },
                (None, None) => unreachable_slot(x),
            });
        }
        done = end;
        save_checkpoint(&ckpt.path(), &meta.with_completed(record.clone()));
    }
    let mut measured = Vec::new();
    let mut quarantined = Vec::new();
    for r in record {
        match r {
            RecordedEval::Measured(m) => measured.push(m),
            RecordedEval::Failed { quarantined: q, .. } => push_quarantine(&mut quarantined, q),
        }
    }
    SweepProgress::Complete(RandomSweepOutcome {
        measured,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_space::encode_config;
    use slam_power::devices::odroid_xu3;
    use slam_scene::dataset::DatasetConfig;
    use slam_scene::noise::DepthNoiseModel;

    fn tiny_dataset(frames: usize) -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = frames;
        dc.noise = DepthNoiseModel::ideal();
        SyntheticDataset::generate(&dc)
    }

    #[test]
    fn measure_default_config() {
        let dataset = tiny_dataset(4);
        let m = measure(
            &dataset,
            &odroid_xu3(),
            &encode_config(&KFusionConfig::fast_test()),
        );
        assert!(m.runtime_s > 0.0);
        assert!(m.watts > 0.0);
        assert!(m.fps > 0.0);
        assert!(m.max_ate_m < 1.0);
    }

    #[test]
    fn smaller_volume_is_faster() {
        let dataset = tiny_dataset(4);
        let dev = odroid_xu3();
        let mut small = KFusionConfig::fast_test();
        small.volume_resolution = 32;
        let mut large = KFusionConfig::fast_test();
        large.volume_resolution = 192;
        let ms = measure(&dataset, &dev, &encode_config(&small));
        let ml = measure(&dataset, &dev, &encode_config(&large));
        assert!(
            ms.runtime_s < ml.runtime_s,
            "{} !< {}",
            ms.runtime_s,
            ml.runtime_s
        );
    }

    #[test]
    fn explore_runs_within_budget_and_finds_feasible() {
        let dataset = tiny_dataset(4);
        let outcome = explore(&dataset, &odroid_xu3(), &ExploreOptions::fast());
        assert!(outcome.measured.len() <= 12);
        assert!(outcome.initial_count <= outcome.measured.len());
        assert!(outcome.default_config.runtime_s > 0.0);
        // the tiny scene tracks easily: something feasible must exist
        assert!(outcome.best_feasible().is_some());
        let pareto = outcome.pareto();
        assert!(!pareto.is_empty());
        assert!(pareto.len() <= outcome.measured.len());
    }

    #[test]
    fn random_sweep_is_deterministic_and_parallel_safe() {
        let dataset = tiny_dataset(3);
        let dev = odroid_xu3();
        let a = random_sweep(&dataset, &dev, 6, 99);
        let b = random_sweep(&dataset, &dev, 6, 99);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.x, y.x);
            assert!((x.runtime_s - y.runtime_s).abs() < 1e-12);
            assert!((x.max_ate_m - y.max_ate_m).abs() < 1e-12);
        }
    }

    #[test]
    fn explore_through_warm_engine_is_identical_and_cached() {
        let dataset = tiny_dataset(4);
        let dev = odroid_xu3();
        let opts = ExploreOptions::fast();
        let cold = explore(&dataset, &dev, &opts);
        let eval = EvalEngine::new();
        let warm_first = explore_with_engine(&eval, &dataset, &dev, &opts);
        let misses_after_first = eval.stats().misses;
        let warm_second = explore_with_engine(&eval, &dataset, &dev, &opts);
        assert_eq!(
            eval.stats().misses,
            misses_after_first,
            "re-exploring on a warm engine must be pure cache hits"
        );
        // ExploreOutcome holds no wall-clock fields: byte-identical
        let json = |o: &ExploreOutcome| serde_json::to_string(o).unwrap();
        assert_eq!(json(&cold), json(&warm_first));
        assert_eq!(json(&cold), json(&warm_second));
    }

    #[test]
    fn best_feasible_respects_limit() {
        let dataset = tiny_dataset(4);
        let outcome = explore(&dataset, &odroid_xu3(), &ExploreOptions::fast());
        if let Some(best) = outcome.best_feasible() {
            assert!(best.max_ate_m <= outcome.accuracy_limit);
            // nothing feasible is faster
            for m in &outcome.measured {
                if m.is_accurate(outcome.accuracy_limit) {
                    assert!(m.runtime_s >= best.runtime_s - 1e-12);
                }
            }
        }
    }
}
