//! Checkpoint/resume for long evaluation sweeps.
//!
//! A multi-hour design-space exploration killed at evaluation 900 of
//! 1000 should not restart from zero. The checkpointed sweep drivers
//! ([`explore_checkpointed`](crate::explore::explore_checkpointed),
//! [`random_sweep_checkpointed`](crate::explore::random_sweep_checkpointed))
//! atomically write a JSON [`SweepCheckpoint`] under
//! `results/checkpoints/` every N evaluations; on resume the recorded
//! evaluations are replayed through the same deterministic loop —
//! verified bitwise against what the loop re-proposes — so the final
//! outcome is bit-identical to an uninterrupted sweep with the same
//! seed, at any thread count.
//!
//! Checkpoint IO is best-effort in the same spirit as the engine's disk
//! cache: a missing, corrupt, truncated, or metadata-mismatched
//! checkpoint is ignored and the sweep starts fresh; a failed save only
//! costs resume granularity. Writes go through a temp-file + rename so
//! a crash mid-write can never leave a half-written checkpoint under
//! the final name.

use crate::explore::{MeasuredConfig, FAILED_OBJECTIVES};
use crate::fault::QuarantinedConfig;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Where, how often, and whether to resume a checkpointed sweep.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding checkpoint files (default
    /// `results/checkpoints`).
    pub dir: PathBuf,
    /// File stem for this sweep's checkpoint (one sweep = one file).
    pub label: String,
    /// Checkpoint every N completed evaluations (minimum 1).
    pub every: usize,
    /// Whether to load an existing checkpoint before starting.
    pub resume: bool,
    /// Stop cleanly once at least this many evaluations are recorded
    /// (checked at batch boundaries) — the test hook that simulates a
    /// killed sweep without killing the process. `None` runs to
    /// completion.
    pub stop_after: Option<usize>,
}

impl CheckpointOptions {
    /// Defaults: `results/checkpoints/<label>.json`, checkpoint every 8
    /// evaluations, resume enabled, no stop.
    pub fn new(label: impl Into<String>) -> CheckpointOptions {
        CheckpointOptions {
            dir: PathBuf::from("results/checkpoints"),
            label: label.into(),
            every: 8,
            resume: true,
            stop_after: None,
        }
    }

    /// The checkpoint file path for this sweep.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("{}.json", self.label))
    }
}

/// One recorded evaluation, in evaluation order. Failures are recorded
/// too: replay must feed the learner exactly what the original loop fed
/// it, including the dummy objectives of quarantined slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecordedEval {
    /// A successful (possibly deadline-degraded) measurement.
    Measured(MeasuredConfig),
    /// A quarantined evaluation; the learner saw
    /// [`FAILED_OBJECTIVES`](crate::explore)-style dummy objectives.
    Failed {
        /// The encoded parameter vector that was proposed.
        x: Vec<f64>,
        /// Why the engine gave up on it.
        quarantined: QuarantinedConfig,
    },
}

impl RecordedEval {
    /// The proposal vector this evaluation answered.
    pub fn x(&self) -> &[f64] {
        match self {
            RecordedEval::Measured(m) => &m.x,
            RecordedEval::Failed { x, .. } => x,
        }
    }

    /// The objectives the learner was fed for this evaluation.
    pub fn objectives(&self) -> Vec<f64> {
        match self {
            RecordedEval::Measured(m) => m.objectives(),
            RecordedEval::Failed { .. } => FAILED_OBJECTIVES.to_vec(),
        }
    }
}

/// The persisted state of one sweep: identifying metadata plus every
/// completed evaluation. Resume validates the metadata before trusting
/// the record — a checkpoint from a different seed, budget, dataset,
/// device, or thread knob is silently ignored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Which sweep driver wrote this (`"explore"`, `"random_sweep"`).
    pub kind: String,
    /// Stable id of the algorithm swept
    /// ([`AlgoId::id`](slam_kfusion::AlgoId::id)). Defaults to the
    /// KinectFusion id so pre-algorithm checkpoints keep resuming
    /// KinectFusion sweeps and are rejected by any other algorithm.
    #[serde(default = "default_algorithm")]
    pub algorithm: String,
    /// The sweep's RNG seed.
    pub seed: u64,
    /// Total evaluation budget of the sweep.
    pub budget: usize,
    /// [`dataset_fingerprint`](crate::engine::dataset_fingerprint) of
    /// the dataset swept over.
    pub dataset_fingerprint: u64,
    /// Target device name.
    pub device: String,
    /// Kernel thread knob the sweep measures with.
    pub threads: usize,
    /// Evaluations completed so far, in evaluation order.
    pub completed: Vec<RecordedEval>,
}

fn default_algorithm() -> String {
    slam_kfusion::AlgoId::KinectFusion.id().to_string()
}

impl SweepCheckpoint {
    /// Whether this checkpoint's identifying metadata matches `meta`
    /// (everything except `completed`).
    pub fn matches(&self, meta: &SweepCheckpoint) -> bool {
        self.kind == meta.kind
            && self.algorithm == meta.algorithm
            && self.seed == meta.seed
            && self.budget == meta.budget
            && self.dataset_fingerprint == meta.dataset_fingerprint
            && self.device == meta.device
            && self.threads == meta.threads
    }

    /// A copy of this checkpoint's metadata carrying `completed`.
    pub fn with_completed(&self, completed: Vec<RecordedEval>) -> SweepCheckpoint {
        SweepCheckpoint {
            completed,
            ..self.clone()
        }
    }
}

/// Loads any JSON-persisted state, tolerantly: any IO or parse failure
/// reads as "no state". The generic primitive under
/// [`load_checkpoint`]; other persistence layers (the `slam-serve`
/// campaign store) build on it so every resume path shares one
/// tolerance policy.
pub fn load_json<T: serde::Deserialize>(path: &Path) -> Option<T> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Atomically persists any serialisable state (write temp file, then
/// rename). Best-effort: returns whether the save landed; a failed
/// save is not an error, it only costs resume granularity. The generic
/// primitive under [`save_checkpoint`].
pub fn save_json_atomic<T: Serialize>(path: &Path, value: &T) -> bool {
    let Ok(text) = serde_json::to_string(value) else {
        return false;
    };
    let Some(dir) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, text).is_err() {
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Loads a checkpoint, tolerantly: any IO or parse failure reads as "no
/// checkpoint".
pub fn load_checkpoint(path: &Path) -> Option<SweepCheckpoint> {
    load_json(path)
}

/// Atomically persists a checkpoint (write temp file, then rename).
/// Best-effort: returns whether the save landed; a failed save is not
/// an error, it only costs resume granularity.
pub fn save_checkpoint(path: &Path, checkpoint: &SweepCheckpoint) -> bool {
    save_json_atomic(path, checkpoint)
}

/// How a checkpointed sweep session ended.
#[derive(Debug)]
pub enum SweepProgress<T> {
    /// The sweep ran to completion.
    Complete(T),
    /// The session stopped at a batch boundary (the
    /// [`CheckpointOptions::stop_after`] hook); the checkpoint at
    /// `path` holds `completed` evaluations and a later session with
    /// `resume: true` continues from it.
    Suspended {
        /// Evaluations recorded so far.
        completed: usize,
        /// The checkpoint file to resume from.
        path: PathBuf,
    },
}

impl<T> SweepProgress<T> {
    /// The completed outcome, if the sweep finished.
    pub fn complete(self) -> Option<T> {
        match self {
            SweepProgress::Complete(outcome) => Some(outcome),
            SweepProgress::Suspended { .. } => None,
        }
    }

    /// Whether the sweep finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, SweepProgress::Complete(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SweepCheckpoint {
        SweepCheckpoint {
            kind: "explore".to_string(),
            algorithm: slam_kfusion::AlgoId::KinectFusion.id().to_string(),
            seed: 7,
            budget: 12,
            dataset_fingerprint: 0xfeed,
            device: "xu3".to_string(),
            threads: 0,
            completed: Vec::new(),
        }
    }

    #[test]
    fn metadata_match_ignores_completed() {
        let mut a = meta();
        a.completed = Vec::new();
        let b = meta().with_completed(vec![RecordedEval::Failed {
            x: vec![1.0],
            quarantined: QuarantinedConfig {
                config: slam_kfusion::KFusionConfig::fast_test(),
                attempts: 1,
                cause: "injected".to_string(),
            },
        }]);
        assert!(a.matches(&b));
        let mut c = meta();
        c.seed = 8;
        assert!(!a.matches(&c));
        let mut d = meta();
        d.device = "pi2".to_string();
        assert!(!a.matches(&d));
        let mut e = meta();
        e.algorithm = slam_kfusion::AlgoId::PointOdometry.id().to_string();
        assert!(!a.matches(&e));
    }

    #[test]
    fn pre_algorithm_checkpoints_default_to_kfusion() {
        // a v1 checkpoint JSON has no `algorithm` field
        let cp = meta().with_completed(Vec::new());
        let json = serde_json::to_string(&cp).unwrap();
        let v1 = json.replace("\"algorithm\":\"kfusion\",", "");
        assert_ne!(json, v1, "test must actually strip the field");
        let back: SweepCheckpoint = serde_json::from_str(&v1).unwrap();
        assert_eq!(back.algorithm, "kfusion");
        assert!(back.matches(&meta()));
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let dir = std::env::temp_dir().join(format!("slambench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("unit.json");
        assert!(load_checkpoint(&path).is_none());
        let cp = meta().with_completed(Vec::new());
        assert!(save_checkpoint(&path, &cp));
        let back = load_checkpoint(&path);
        assert!(back.is_some_and(|b| b.matches(&meta())));
        // corrupt file reads as no checkpoint
        std::fs::write(&path, "{ not json").ok();
        assert!(load_checkpoint(&path).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_evals_replay_dummy_objectives() {
        let r = RecordedEval::Failed {
            x: vec![0.5, 0.25],
            quarantined: QuarantinedConfig {
                config: slam_kfusion::KFusionConfig::fast_test(),
                attempts: 2,
                cause: "injected".to_string(),
            },
        };
        assert_eq!(r.x(), &[0.5, 0.25]);
        assert_eq!(r.objectives(), FAILED_OBJECTIVES.to_vec());
    }
}
