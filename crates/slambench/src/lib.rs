//! SLAMBench in Rust: a performance, accuracy and energy benchmarking
//! framework for dense SLAM, reproducing
//! *"Algorithmic Performance-Accuracy Trade-off in 3D Vision
//! Applications"* (Bodin et al., ISPASS 2018).
//!
//! The framework composes the workspace's substrates:
//!
//! * [`slam_scene`] — synthetic RGB-D datasets with exact ground truth
//!   (the ICL-NUIM stand-in),
//! * [`slam_kfusion`] — the KinectFusion pipeline with SLAMBench's
//!   algorithmic parameters,
//! * [`slam_metrics`] — ATE/RPE accuracy and timing metrics,
//! * [`slam_power`] — analytic device models (ODROID XU3, phone fleet),
//! * [`slam_dse`] — the HyperMapper-style design-space explorer.
//!
//! The central abstraction is the split between a device-independent
//! [`run::PipelineRun`] (trajectory + per-frame workload trace) and
//! device costing ([`run::PipelineRun::cost_on`]): one pipeline execution
//! can be "replayed" onto any number of device models, which is what
//! makes exploring 83 phones (Figure 3) or hundreds of DSE
//! configurations (Figure 2) tractable.
//!
//! # Quickstart
//!
//! ```
//! use slambench::run::run_pipeline;
//! use slam_kfusion::KFusionConfig;
//! use slam_power::devices::odroid_xu3;
//! use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
//!
//! let mut dc = DatasetConfig::tiny_test();
//! dc.frame_count = 5;
//! let dataset = SyntheticDataset::generate(&dc);
//! let run = run_pipeline(&dataset, &KFusionConfig::fast_test());
//! let on_xu3 = run.cost_on(&odroid_xu3());
//! println!("ATE {:.3} m at {:.1} FPS, {:.2} W",
//!          run.ate.max, on_xu3.run_cost.mean_fps(), on_xu3.run_cost.average_watts());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod codesign;
pub mod config_space;
pub mod explore;
pub mod fleet;
pub mod run;
pub mod suite;

pub use codesign::{codesign_explore, CoDesignOptions, CoDesignOutcome};
pub use config_space::{decode_config, encode_config, slambench_space};
pub use explore::{
    explore, measure, measure_with_threads, random_sweep, ExploreOptions, ExploreOutcome,
    MeasuredConfig,
};
pub use fleet::{fleet_speedups, FleetEntry};
pub use run::{run_pipeline, run_pipeline_with_threads, DeviceRunReport, FrameRecord, PipelineRun};
pub use suite::{run_suite, standard_suite, Sequence, SuiteCell};
