//! SLAMBench in Rust: a performance, accuracy and energy benchmarking
//! framework for dense SLAM, reproducing
//! *"Algorithmic Performance-Accuracy Trade-off in 3D Vision
//! Applications"* (Bodin et al., ISPASS 2018).
//!
//! The framework composes the workspace's substrates:
//!
//! * [`slam_scene`] — synthetic RGB-D datasets with exact ground truth
//!   (the ICL-NUIM stand-in),
//! * [`slam_kfusion`] — the KinectFusion pipeline with SLAMBench's
//!   algorithmic parameters,
//! * [`slam_metrics`] — ATE/RPE accuracy and timing metrics,
//! * [`slam_power`] — analytic device models (ODROID XU3, phone fleet),
//! * [`slam_dse`] — the HyperMapper-style design-space explorer.
//!
//! The central abstraction is the split between a device-independent
//! [`run::PipelineRun`] (trajectory + per-frame workload trace) and
//! device costing ([`run::PipelineRun::cost_on`]): one pipeline execution
//! can be "replayed" onto any number of device models, which is what
//! makes exploring 83 phones (Figure 3) or hundreds of DSE
//! configurations (Figure 2) tractable.
//!
//! All evaluation flows through the [`engine::EvalEngine`]: a
//! content-addressed run cache (keyed by dataset identity and the
//! algorithmic configuration bits) whose [`engine::EvalEngine::evaluate_batch`]
//! schedules independent pipeline runs concurrently on the shared worker
//! pool while staying bit-identical to serial evaluation.
//!
//! # Quickstart
//!
//! ```
//! use slambench::engine::EvalEngine;
//! use slam_kfusion::KFusionConfig;
//! use slam_power::devices::odroid_xu3;
//! use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
//!
//! let mut dc = DatasetConfig::tiny_test();
//! dc.frame_count = 5;
//! let dataset = SyntheticDataset::generate(&dc);
//!
//! let engine = EvalEngine::new();
//! let mut small = KFusionConfig::fast_test();
//! small.volume_resolution = 32;
//! let runs = engine.evaluate_batch(&dataset, &[KFusionConfig::fast_test(), small]);
//! for run in &runs {
//!     let on_xu3 = run.cost_on(&odroid_xu3());
//!     println!("ATE {:.3} m at {:.1} FPS, {:.2} W",
//!              run.ate.max, on_xu3.run_cost.mean_fps(), on_xu3.run_cost.average_watts());
//! }
//!
//! // a repeated request is a cache hit — no pipeline re-execution
//! let again = engine.evaluate(&dataset, &KFusionConfig::fast_test());
//! assert_eq!(again.ate.max, runs[0].ate.max);
//! assert_eq!(engine.stats().hits, 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod codesign;
pub mod config_space;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod fleet;
pub mod run;
pub mod suite;

pub use checkpoint::{
    load_checkpoint, load_json, save_checkpoint, save_json_atomic, CheckpointOptions, RecordedEval,
    SweepCheckpoint, SweepProgress,
};
pub use codesign::{
    codesign_explore, codesign_explore_algorithm, codesign_explore_with_engine, codesign_space,
    codesign_space_for, decode_codesign, decode_codesign_for, CoDesignOptions, CoDesignOutcome,
};
pub use config_space::{
    decode_config, decode_for, encode_config, encode_for, slambench_space, space_for,
};
pub use engine::{
    dataset_fingerprint, evaluate_algorithm_once, evaluate_once, evaluate_once_traced,
    run_fingerprint, EngineStats, EvalEngine, EvalError, RunOutcome,
};
pub use explore::{
    explore, explore_algorithm, explore_checkpointed, explore_with_engine, measure,
    measure_batch_with_engine, measure_with_engine, measure_with_threads, random_sweep,
    random_sweep_algorithm, random_sweep_checkpointed, random_sweep_with_engine, ExploreOptions,
    ExploreOutcome, MeasuredConfig, RandomSweepOutcome,
};
pub use fault::{Deadline, FaultPlan, FaultPolicy, MockRunClock, QuarantinedConfig, RetryPolicy};
pub use fleet::{
    fleet_speedups, fleet_speedups_algorithm, fleet_speedups_with_engine, FleetEntry, FleetOutcome,
    FleetSkip,
};
pub use run::{DeviceRunReport, FrameRecord, GuardedRun, PipelineRun, RunStatus};
// xtask-allow: engine-only — reason: re-export of the raw runners; callers should prefer the engine
pub use run::{run_algorithm, run_algorithm_traced, run_algorithm_with_threads};
// xtask-allow: engine-only — reason: re-export of the raw runners; callers should prefer the engine
pub use run::{run_pipeline, run_pipeline_traced, run_pipeline_with_threads};
pub use suite::{
    adversarial_suite, run_suite, run_suite_algorithm, run_suite_with_engine, standard_suite,
    Sequence, SuiteCell, SuiteError, SuiteFailure, SuiteReport,
};
