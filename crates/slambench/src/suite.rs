//! Multi-sequence benchmark suites: run a set of (sequence ×
//! configuration) pairs and tabulate speed/accuracy/power per cell —
//! the shape of the original SLAMBench result tables.

use crate::engine::EvalEngine;
use serde::{Deserialize, Serialize};
use slam_kfusion::KFusionConfig;
use slam_math::camera::PinholeCamera;
use slam_power::DeviceModel;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;
use slam_scene::presets;

/// A named benchmark sequence (dataset recipe).
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Sequence name (e.g. `"living_room/kt2"`).
    pub name: String,
    /// The dataset recipe.
    pub config: DatasetConfig,
}

/// The standard sequence suite: the four living-room trajectories plus
/// the office and corridor scenes, at the given camera and length.
pub fn standard_suite(camera: PinholeCamera, frames: usize) -> Vec<Sequence> {
    let mut suite = Vec::new();
    for k in 0..4 {
        let mut dc = DatasetConfig::living_room();
        dc.name = format!("living_room/kt{k}");
        dc.trajectory = presets::living_room_kt(k);
        dc.camera = camera;
        dc.frame_count = frames;
        suite.push(Sequence {
            name: dc.name.clone(),
            config: dc,
        });
    }
    let mut office = DatasetConfig::office();
    office.camera = camera;
    office.frame_count = frames;
    suite.push(Sequence {
        name: "office/wobble".into(),
        config: office,
    });
    let corridor = DatasetConfig {
        name: "corridor/walk".into(),
        scene: presets::corridor(),
        trajectory: presets::corridor_trajectory(),
        camera,
        frame_count: frames,
        fps: 30.0,
        noise: DepthNoiseModel {
            max_range: 6.0,
            ..DepthNoiseModel::kinect()
        },
        seed: 0xC0441D04,
        time_step: 0.0101,
    };
    suite.push(Sequence {
        name: corridor.name.clone(),
        config: corridor,
    });
    suite
}

/// One suite cell: a configuration's result on a sequence, costed on a
/// device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteCell {
    /// Sequence name.
    pub sequence: String,
    /// Configuration label.
    pub config: String,
    /// Max ATE, metres.
    pub max_ate_m: f64,
    /// Mean ATE, metres.
    pub mean_ate_m: f64,
    /// Tracking failures.
    pub lost_frames: usize,
    /// Modelled FPS on the device.
    pub fps: f64,
    /// Modelled average power on the device, watts.
    pub watts: f64,
}

/// Runs every configuration over every sequence, costing on `device`,
/// on a fresh in-memory [`EvalEngine`].
///
/// Returns cells in `(sequence-major, configuration-minor)` order.
pub fn run_suite(
    sequences: &[Sequence],
    configs: &[(String, KFusionConfig)],
    device: &DeviceModel,
) -> Vec<SuiteCell> {
    run_suite_with_engine(&EvalEngine::new(), sequences, configs, device)
}

/// [`run_suite`] on a caller-provided [`EvalEngine`]. Each sequence's
/// configurations are evaluated as one concurrent engine batch; the
/// cell grid is identical to serial evaluation.
pub fn run_suite_with_engine(
    eval: &EvalEngine,
    sequences: &[Sequence],
    configs: &[(String, KFusionConfig)],
    device: &DeviceModel,
) -> Vec<SuiteCell> {
    let mut cells = Vec::with_capacity(sequences.len() * configs.len());
    let batch: Vec<KFusionConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    for seq in sequences {
        let dataset = SyntheticDataset::generate(&seq.config);
        let runs = eval.evaluate_batch(&dataset, &batch);
        for ((label, _), run) in configs.iter().zip(&runs) {
            let report = run.cost_on(device);
            cells.push(SuiteCell {
                sequence: seq.name.clone(),
                config: label.clone(),
                max_ate_m: run.ate.max,
                mean_ate_m: run.ate.mean,
                lost_frames: run.lost_frames,
                fps: report.run_cost.mean_fps(),
                watts: report.run_cost.average_watts(),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_power::devices::odroid_xu3;

    fn tiny_camera() -> PinholeCamera {
        PinholeCamera::tiny()
    }

    #[test]
    fn standard_suite_contains_six_distinct_sequences() {
        let suite = standard_suite(tiny_camera(), 10);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<_> = suite.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert!(names.iter().any(|n| n.contains("corridor")));
    }

    #[test]
    fn run_suite_produces_full_grid() {
        let suite = &standard_suite(tiny_camera(), 5)[..2];
        let configs = vec![
            ("fast".to_string(), KFusionConfig::fast_test()),
            ("tiny".to_string(), {
                let mut c = KFusionConfig::fast_test();
                c.volume_resolution = 32;
                c
            }),
        ];
        let cells = run_suite(suite, &configs, &odroid_xu3());
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(cell.fps > 0.0);
            assert!(cell.watts > 0.0);
            assert!(cell.max_ate_m >= cell.mean_ate_m);
        }
        // grid order: sequence-major
        assert_eq!(cells[0].sequence, cells[1].sequence);
        assert_ne!(cells[1].sequence, cells[2].sequence);
    }

    #[test]
    fn corridor_is_harder_than_living_room() {
        let camera = tiny_camera();
        let suite = standard_suite(camera, 12);
        let configs = vec![("fast".to_string(), {
            let mut c = KFusionConfig::fast_test();
            c.volume_resolution = 128;
            c
        })];
        let cells = run_suite(&suite, &configs, &odroid_xu3());
        let kt2 = cells
            .iter()
            .find(|c| c.sequence == "living_room/kt2")
            .expect("kt2 present");
        let corridor = cells
            .iter()
            .find(|c| c.sequence == "corridor/walk")
            .expect("corridor present");
        assert!(
            corridor.max_ate_m > kt2.max_ate_m * 0.8,
            "the aperture-problem corridor ({:.4} m) should not be easier than the \
             feature-rich living room ({:.4} m)",
            corridor.max_ate_m,
            kt2.max_ate_m
        );
    }
}
