//! Multi-sequence benchmark suites: run a set of (sequence ×
//! configuration) pairs and tabulate speed/accuracy/power per cell —
//! the shape of the original SLAMBench result tables.

use crate::engine::EvalEngine;
use serde::{Deserialize, Serialize};
use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_power::DeviceModel;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;
use slam_scene::presets;
use std::fmt;

/// A named benchmark sequence (dataset recipe).
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Sequence name (e.g. `"living_room/kt2"`).
    pub name: String,
    /// The dataset recipe.
    pub config: DatasetConfig,
}

/// The standard sequence suite: the four living-room trajectories plus
/// the office and corridor scenes, at the given camera and length.
pub fn standard_suite(camera: PinholeCamera, frames: usize) -> Vec<Sequence> {
    let mut suite = Vec::new();
    for k in 0..4 {
        let mut dc = DatasetConfig::living_room();
        dc.name = format!("living_room/kt{k}");
        dc.trajectory = presets::living_room_kt(k);
        dc.camera = camera;
        dc.frame_count = frames;
        suite.push(Sequence {
            name: dc.name.clone(),
            config: dc,
        });
    }
    let mut office = DatasetConfig::office();
    office.camera = camera;
    office.frame_count = frames;
    suite.push(Sequence {
        name: "office/wobble".into(),
        config: office,
    });
    let corridor = DatasetConfig {
        name: "corridor/walk".into(),
        scene: presets::corridor(),
        trajectory: presets::corridor_trajectory(),
        camera,
        frame_count: frames,
        fps: 30.0,
        noise: DepthNoiseModel {
            max_range: 6.0,
            ..DepthNoiseModel::kinect()
        },
        seed: 0xC0441D04,
        time_step: 0.0101,
    };
    suite.push(Sequence {
        name: corridor.name.clone(),
        config: corridor,
    });
    suite
}

/// The adversarial suite: sequences built to separate algorithms, not
/// configurations. Each sequence attacks a structural assumption —
/// frame-to-model trackers coast on the accumulated TSDF where
/// frame-to-frame odometry has only the previous (degraded) frame, and
/// vice versa — so algorithms that tie on [`standard_suite`] diverge
/// measurably here in ATE or lost frames.
///
/// * `blank_corridor/dropout` — the featureless hallway under 35 % depth
///   dropout: the aperture problem with most of the evidence removed.
/// * `warehouse/aisle` — a regular grid of identical pillars: aliased
///   geometry where a drifted tracker re-converges onto the wrong
///   pillar.
/// * `corridor/dropout` — the landmarked corridor under the same heavy
///   dropout, the control pairing for `blank_corridor/dropout`.
///
/// One attack cannot ride this suite's millimetre wire format: NaN/Inf
/// laced sensor frames (`u16` has no NaN). Those are built with
/// [`slam_scene::noise::lace_non_finite`] and fed through the pipeline's
/// float-depth entry point instead; the `non_finite` integration suite
/// asserts nothing escapes into the model, the poses or the ATE.
pub fn adversarial_suite(camera: PinholeCamera, frames: usize) -> Vec<Sequence> {
    let heavy_dropout = DepthNoiseModel {
        dropout: 0.35,
        max_range: 6.0,
        ..DepthNoiseModel::kinect()
    };
    let blank = DatasetConfig {
        name: "blank_corridor/dropout".into(),
        scene: presets::blank_corridor(),
        trajectory: presets::corridor_trajectory(),
        camera,
        frame_count: frames,
        fps: 30.0,
        noise: heavy_dropout,
        seed: 0xAD5E_0001,
        time_step: 0.0101,
    };
    let warehouse = DatasetConfig {
        name: "warehouse/aisle".into(),
        scene: presets::warehouse(),
        trajectory: presets::warehouse_trajectory(),
        camera,
        frame_count: frames,
        fps: 30.0,
        noise: DepthNoiseModel {
            max_range: 6.0,
            ..DepthNoiseModel::kinect()
        },
        seed: 0xAD5E_0002,
        time_step: 0.0101,
    };
    let corridor = DatasetConfig {
        name: "corridor/dropout".into(),
        scene: presets::corridor(),
        trajectory: presets::corridor_trajectory(),
        camera,
        frame_count: frames,
        fps: 30.0,
        noise: heavy_dropout,
        seed: 0xAD5E_0003,
        time_step: 0.0101,
    };
    [blank, warehouse, corridor]
        .into_iter()
        .map(|config| Sequence {
            name: config.name.clone(),
            config,
        })
        .collect()
}

/// One suite cell: a configuration's result on a sequence, costed on a
/// device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteCell {
    /// Sequence name.
    pub sequence: String,
    /// Configuration label.
    pub config: String,
    /// Max ATE, metres.
    pub max_ate_m: f64,
    /// Mean ATE, metres.
    pub mean_ate_m: f64,
    /// Tracking failures.
    pub lost_frames: usize,
    /// Modelled FPS on the device.
    pub fps: f64,
    /// Modelled average power on the device, watts.
    pub watts: f64,
}

/// One grid cell the suite could not fill: the configuration was
/// quarantined on that sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteFailure {
    /// Sequence name.
    pub sequence: String,
    /// Configuration label.
    pub config: String,
    /// Why the engine gave up
    /// ([`QuarantinedConfig::cause`](crate::fault::QuarantinedConfig)).
    pub cause: String,
}

/// The suite's result: the filled cells plus the cells that failed.
/// Look cells up by `(sequence, config)` id with [`SuiteReport::cell`]
/// instead of positional indexing — a failed cell shifts positions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Stable id of the algorithm that filled the grid
    /// ([`AlgoId::id`]); empty in reports serialised before the
    /// algorithm abstraction (those were all KinectFusion).
    #[serde(default)]
    pub algorithm: String,
    /// Filled cells, `(sequence-major, configuration-minor)` order,
    /// failed cells omitted.
    pub cells: Vec<SuiteCell>,
    /// Cells with no result, with the reported cause.
    pub failures: Vec<SuiteFailure>,
}

/// Why a [`SuiteReport::cell`] lookup found no filled cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// The cell was attempted but its run was quarantined.
    CellFailed {
        /// Sequence name.
        sequence: String,
        /// Configuration label.
        config: String,
        /// Why the engine gave up on the run.
        cause: String,
    },
    /// No such `(sequence, config)` pair exists in the report at all —
    /// the id is wrong, not the run.
    NoSuchCell {
        /// Sequence name looked up.
        sequence: String,
        /// Configuration label looked up.
        config: String,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::CellFailed {
                sequence,
                config,
                cause,
            } => write!(f, "suite cell ({sequence}, {config}) failed: {cause}"),
            SuiteError::NoSuchCell { sequence, config } => {
                write!(f, "no suite cell ({sequence}, {config})")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

impl SuiteReport {
    /// Resolves a cell by `(sequence, config)` id. Distinguishes a cell
    /// whose run failed ([`SuiteError::CellFailed`], with the cause)
    /// from an id that was never part of the grid
    /// ([`SuiteError::NoSuchCell`]).
    pub fn cell(&self, sequence: &str, config: &str) -> Result<&SuiteCell, SuiteError> {
        if let Some(cell) = self
            .cells
            .iter()
            .find(|c| c.sequence == sequence && c.config == config)
        {
            return Ok(cell);
        }
        if let Some(failure) = self
            .failures
            .iter()
            .find(|f| f.sequence == sequence && f.config == config)
        {
            return Err(SuiteError::CellFailed {
                sequence: failure.sequence.clone(),
                config: failure.config.clone(),
                cause: failure.cause.clone(),
            });
        }
        Err(SuiteError::NoSuchCell {
            sequence: sequence.to_string(),
            config: config.to_string(),
        })
    }
}

/// Runs every configuration over every sequence, costing on `device`,
/// on a fresh in-memory [`EvalEngine`].
///
/// Cells land in `(sequence-major, configuration-minor)` order. A
/// quarantined run does not abort the suite: the affected cell moves to
/// [`SuiteReport::failures`] and the rest of the grid fills normally.
pub fn run_suite(
    sequences: &[Sequence],
    configs: &[(String, KFusionConfig)],
    device: &DeviceModel,
) -> SuiteReport {
    run_suite_with_engine(&EvalEngine::new(), sequences, configs, device)
}

/// [`run_suite`] with an explicit algorithm: the head-to-head entry
/// point. Each algorithm gets its own fresh in-memory engine, so two
/// reports over the same grid never share cached runs.
pub fn run_suite_algorithm(
    algorithm: AlgoId,
    sequences: &[Sequence],
    configs: &[(String, KFusionConfig)],
    device: &DeviceModel,
) -> SuiteReport {
    run_suite_with_engine(
        &EvalEngine::new().with_algorithm(algorithm),
        sequences,
        configs,
        device,
    )
}

/// [`run_suite`] on a caller-provided [`EvalEngine`]. The engine is the
/// algorithm handle: the grid runs whatever algorithm the engine
/// carries. Each sequence's configurations are evaluated as one
/// concurrent engine batch; the cell grid is identical to serial
/// evaluation.
pub fn run_suite_with_engine(
    eval: &EvalEngine,
    sequences: &[Sequence],
    configs: &[(String, KFusionConfig)],
    device: &DeviceModel,
) -> SuiteReport {
    let mut report = SuiteReport {
        algorithm: eval.algorithm().id().to_string(),
        ..SuiteReport::default()
    };
    let batch: Vec<KFusionConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    for seq in sequences {
        let dataset = SyntheticDataset::generate(&seq.config);
        let outcomes = match eval.try_evaluate_batch_outcomes(&dataset, &batch) {
            Ok(outcomes) => outcomes,
            // xtask-allow: panic-path — reason: empty datasets / invalid configs violate run_suite's documented precondition; per-slot failures never reach this arm
            Err(e) => panic!("suite evaluation failed: {e}"),
        };
        for ((label, _), outcome) in configs.iter().zip(&outcomes) {
            // a deadline-truncated run still yields a (degraded) cell
            let Some(run) = outcome.run() else {
                let cause = outcome
                    .failure()
                    .map(|q| q.cause.clone())
                    .unwrap_or_else(|| "run failed".to_string());
                report.failures.push(SuiteFailure {
                    sequence: seq.name.clone(),
                    config: label.clone(),
                    cause,
                });
                continue;
            };
            let cost = run.cost_on(device);
            report.cells.push(SuiteCell {
                sequence: seq.name.clone(),
                config: label.clone(),
                max_ate_m: run.ate.max,
                mean_ate_m: run.ate.mean,
                lost_frames: run.lost_frames,
                fps: cost.run_cost.mean_fps(),
                watts: cost.run_cost.average_watts(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_power::devices::odroid_xu3;

    fn tiny_camera() -> PinholeCamera {
        PinholeCamera::tiny()
    }

    #[test]
    fn standard_suite_contains_six_distinct_sequences() {
        let suite = standard_suite(tiny_camera(), 10);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<_> = suite.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert!(names.iter().any(|n| n.contains("corridor")));
    }

    #[test]
    fn run_suite_produces_full_grid() {
        let suite = &standard_suite(tiny_camera(), 5)[..2];
        let configs = vec![
            ("fast".to_string(), KFusionConfig::fast_test()),
            ("tiny".to_string(), {
                let mut c = KFusionConfig::fast_test();
                c.volume_resolution = 32;
                c
            }),
        ];
        let report = run_suite(suite, &configs, &odroid_xu3());
        assert!(
            report.failures.is_empty(),
            "no faults injected, no failures"
        );
        let cells = report.cells;
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(cell.fps > 0.0);
            assert!(cell.watts > 0.0);
            assert!(cell.max_ate_m >= cell.mean_ate_m);
        }
        // grid order: sequence-major
        assert_eq!(cells[0].sequence, cells[1].sequence);
        assert_ne!(cells[1].sequence, cells[2].sequence);
    }

    #[test]
    fn adversarial_suite_names_three_hostile_sequences() {
        let suite = adversarial_suite(tiny_camera(), 8);
        assert_eq!(suite.len(), 3);
        let names: Vec<_> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"blank_corridor/dropout"));
        assert!(names.contains(&"warehouse/aisle"));
        // the blank corridor really is the heavy-dropout variant
        let blank = &suite[0].config;
        assert!(blank.noise.dropout > 0.3, "got {}", blank.noise.dropout);
    }

    #[test]
    fn report_records_the_algorithm_that_ran() {
        let suite = &standard_suite(tiny_camera(), 4)[..1];
        let configs = vec![("fast".to_string(), KFusionConfig::fast_test())];
        let kf = run_suite(suite, &configs, &odroid_xu3());
        assert_eq!(kf.algorithm, AlgoId::KinectFusion.id());
        let odo = run_suite_algorithm(AlgoId::PointOdometry, suite, &configs, &odroid_xu3());
        assert_eq!(odo.algorithm, AlgoId::PointOdometry.id());
        assert_eq!(odo.cells.len(), 1);
    }

    #[test]
    fn corridor_is_harder_than_living_room() {
        let camera = tiny_camera();
        let suite = standard_suite(camera, 12);
        let configs = vec![("fast".to_string(), {
            let mut c = KFusionConfig::fast_test();
            c.volume_resolution = 128;
            c
        })];
        let report = run_suite(&suite, &configs, &odroid_xu3());
        let kt2 = report.cell("living_room/kt2", "fast").unwrap();
        let corridor = report.cell("corridor/walk", "fast").unwrap();
        let err = report.cell("corridor/walk", "no-such-config").unwrap_err();
        assert_eq!(
            err,
            SuiteError::NoSuchCell {
                sequence: "corridor/walk".to_string(),
                config: "no-such-config".to_string(),
            }
        );
        assert!(
            corridor.max_ate_m > kt2.max_ate_m * 0.8,
            "the aperture-problem corridor ({:.4} m) should not be easier than the \
             feature-rich living room ({:.4} m)",
            corridor.max_ate_m,
            kt2.max_ate_m
        );
    }
}
