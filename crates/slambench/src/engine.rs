//! The unified evaluation engine: one memoising, batch-parallel service
//! behind every orchestrator.
//!
//! The paper's expensive half is not one KinectFusion run but *hundreds*
//! of them: the HyperMapper active-learning loop (Figure 2), the
//! incremental co-design step, and the 83-phone fleet replay (Figure 3)
//! all re-evaluate configurations. [`EvalEngine`] centralises that cost:
//!
//! * **Content-addressed run cache.** Every [`PipelineRun`] is keyed by
//!   `(algorithm id, dataset id, config bits)` — the algorithm id is the
//!   stable [`AlgoId::id`] string, the dataset id is a hash of the full
//!   serialised [`DatasetConfig`](slam_scene::dataset::DatasetConfig),
//!   the config bits are the serialised [`KFusionConfig`] with the
//!   `threads` knob normalised to `0`. The `threads` knob is excluded
//!   because kernel outputs are bit-identical across thread counts (see
//!   [`slam_kfusion::exec`]): it changes host wall time only, so two
//!   configurations differing only in `threads` share one cache entry.
//!   Two algorithms sharing dataset and config bits never share an
//!   entry.
//! * **Optional on-disk persistence.** [`EvalEngine::with_disk_cache`]
//!   spills every entry to one JSON file per run under the given
//!   directory (the bench bins use `results/cache/`), giving warm starts
//!   across process invocations. Disk entries are verified against the
//!   full key on load; a corrupt, truncated, or mismatched file is
//!   silently treated as a miss and re-evaluated — the disk cache can
//!   never produce a wrong result or a panic.
//! * **Batch-parallel evaluation.** [`EvalEngine::evaluate_batch`]
//!   schedules the batch's cache misses concurrently on the shared
//!   worker pool, capping the kernels underneath each run with
//!   [`with_thread_budget`](slam_kfusion::exec::with_thread_budget) so
//!   outer × inner parallelism never oversubscribes the machine.
//!
//! # Determinism
//!
//! Batch evaluation returns bit-identical [`PipelineRun`]s versus serial
//! evaluation, in any batch order, at any thread count, because each run
//! is already thread-count-invariant (size-only banding in
//! [`slam_kfusion::exec`]) and runs share no mutable state: the cache is
//! only read before and written after the parallel section. The single
//! exception is [`FrameRecord::wall_time`](crate::run::FrameRecord):
//! host wall-clock is inherently nondeterministic and is pinned by
//! `tests/engine.rs` to be the *only* field that may differ.

use crate::fault::{FaultPlan, FaultPolicy, QuarantinedConfig, RunClock, WallRunClock};
use crate::run::{
    run_algorithm, run_algorithm_guarded, run_algorithm_traced, GuardOptions, PipelineRun,
    RunStatus,
};
use serde::{Deserialize, Serialize};
use slam_kfusion::config::ConfigError;
use slam_kfusion::{exec, AlgoId, KFusionConfig};
use slam_scene::dataset::SyntheticDataset;
use slam_trace::Tracer;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Why the engine refused to evaluate a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The configuration failed [`KFusionConfig::validate`].
    InvalidConfig(ConfigError),
    /// The dataset has no frames to run over.
    EmptyDataset,
    /// The run for this configuration panicked (every attempt allowed by
    /// the retry policy) and was quarantined. Only that slot failed: the
    /// engine and the rest of the batch are unaffected.
    RunFailed {
        /// The configuration whose run failed.
        config: Box<KFusionConfig>,
        /// The panic message of the last attempt.
        cause: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            EvalError::EmptyDataset => write!(f, "cannot evaluate on an empty dataset"),
            EvalError::RunFailed { cause, .. } => write!(f, "run failed: {cause}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::InvalidConfig(e) => Some(e),
            EvalError::EmptyDataset | EvalError::RunFailed { .. } => None,
        }
    }
}

impl From<ConfigError> for EvalError {
    fn from(e: ConfigError) -> EvalError {
        EvalError::InvalidConfig(e)
    }
}

/// Per-slot result of a fault-tolerant batch evaluation.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run completed within its budget.
    Done(PipelineRun),
    /// The per-run [`Deadline`](crate::fault::Deadline) fired: the run
    /// holds the completed prefix and is *not* cached (a future request
    /// under a looser policy re-evaluates it).
    TimedOut(PipelineRun),
    /// Every attempt panicked; the configuration is quarantined and this
    /// record says why. Later requests for it fail fast.
    Failed(QuarantinedConfig),
}

impl RunOutcome {
    /// The run, when one exists (complete or deadline-truncated).
    pub fn run(&self) -> Option<&PipelineRun> {
        match self {
            RunOutcome::Done(run) | RunOutcome::TimedOut(run) => Some(run),
            RunOutcome::Failed(_) => None,
        }
    }

    /// The quarantine record, when the slot failed.
    pub fn failure(&self) -> Option<&QuarantinedConfig> {
        match self {
            RunOutcome::Failed(q) => Some(q),
            _ => None,
        }
    }

    /// Whether the run completed within budget.
    pub fn is_done(&self) -> bool {
        matches!(self, RunOutcome::Done(_))
    }
}

/// Cache traffic counters, one increment per requested evaluation, plus
/// fault-tolerance outcome counters. Serialisable so stats surfaces
/// (the `slam-serve` `/stats` endpoint, bench reports) can ship them
/// as JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests answered from the in-memory cache (including duplicates
    /// within one batch, which share the batch's single execution).
    pub hits: usize,
    /// Requests answered by loading a persisted run from disk.
    pub disk_hits: usize,
    /// Requests that executed the pipeline.
    pub misses: usize,
    /// Requests answered by a quarantine record (fail-fast, no
    /// execution).
    pub quarantined: usize,
    /// Extra attempts executed by the retry policy.
    pub retries: usize,
    /// Executions cut short by the per-run deadline.
    pub timed_out: usize,
    /// Executions that exhausted every attempt and created a quarantine
    /// record.
    pub failed: usize,
}

impl EngineStats {
    /// Total evaluations requested.
    pub fn requests(&self) -> usize {
        self.hits + self.disk_hits + self.misses + self.quarantined
    }

    /// Element-wise sum of a set of per-engine counters — the aggregation
    /// used wherever several engines serve one logical workload (the
    /// sharded server core, fleet summaries). Summing is exact: each
    /// counter counts disjoint per-engine events.
    pub fn merge(stats: &[EngineStats]) -> EngineStats {
        let mut total = EngineStats::default();
        for s in stats {
            total.hits += s.hits;
            total.disk_hits += s.disk_hits;
            total.misses += s.misses;
            total.quarantined += s.quarantined;
            total.retries += s.retries;
            total.timed_out += s.timed_out;
            total.failed += s.failed;
        }
        total
    }
}

/// Version of the on-disk cache entry layout. Bumped to 2 when the
/// algorithm id joined the key: every entry now records which algorithm
/// produced it, and version-1 files (no `version`/`algorithm` fields)
/// fail deserialisation and read as misses — never as aliased hits.
const CACHE_SCHEMA_VERSION: u32 = 2;

/// The content address of one pipeline run: algorithm + dataset id +
/// config bits (with the pure-performance `threads` knob normalised
/// away).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RunKey {
    algorithm: AlgoId,
    dataset: u64,
    config: String,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn dataset_id(dataset: &SyntheticDataset) -> u64 {
    // DatasetConfig is a plain data struct; serialisation cannot fail,
    // and the empty fallback would only merge caches of datasets that
    // both failed to serialise
    let bytes = serde_json::to_vec(dataset.config()).unwrap_or_default();
    fnv1a(&bytes)
}

fn config_bits(config: &KFusionConfig) -> String {
    let mut canonical = config.clone();
    canonical.threads = 0; // bit-identical outputs across thread counts
    serde_json::to_string(&canonical).unwrap_or_default()
}

/// Stable 64-bit digest of a run key — the identity fed to the fault
/// plan and the disk-cache file name, so injected fault decisions are a
/// pure function of *what* is being evaluated.
fn key_hash(key: &RunKey) -> u64 {
    let mut bytes = key.algorithm.id().as_bytes().to_vec();
    bytes.push(0); // separator: id strings never contain NUL
    bytes.extend_from_slice(&key.dataset.to_le_bytes());
    bytes.extend_from_slice(key.config.as_bytes());
    fnv1a(&bytes)
}

/// The content-address of a dataset as used by the engine's cache and
/// the sweep checkpoints: resuming validates the checkpoint was taken
/// against the same dataset.
pub fn dataset_fingerprint(dataset: &SyntheticDataset) -> u64 {
    dataset_id(dataset)
}

/// The stable 64-bit content address of one evaluation request — the
/// same digest the engine uses for its cache keys and disk-cache file
/// names. Exposed so shard routers can place a request on the shard
/// that owns its cache entry: `run_fingerprint(...) % shard_count` is
/// stable across processes, thread counts, and the `threads` knob
/// (which is normalised out of the key).
pub fn run_fingerprint(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
) -> u64 {
    key_hash(&RunKey {
        algorithm,
        dataset: dataset_id(dataset),
        config: config_bits(config),
    })
}

/// Per-miss execution result, before cache bookkeeping.
enum MissResult {
    Done { run: PipelineRun, retries: usize },
    TimedOut { run: PipelineRun, retries: usize },
    Failed(QuarantinedConfig),
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One persisted cache entry: the full key is stored alongside the run
/// so a load can verify it got the file it asked for (hash collisions,
/// truncation, stale schema all fail the check and fall back to a miss).
/// The `version` and `algorithm` fields are deliberately *not*
/// defaulted: a pre-versioning (v1) file is missing both, fails to
/// deserialise, and falls back to a safe miss.
#[derive(Serialize, Deserialize)]
struct DiskEntry {
    version: u32,
    algorithm: String,
    dataset: u64,
    config: String,
    run: PipelineRun,
}

struct EngineState {
    cache: BTreeMap<RunKey, PipelineRun>,
    quarantine: BTreeMap<RunKey, QuarantinedConfig>,
    stats: EngineStats,
}

impl EngineState {
    fn new() -> EngineState {
        EngineState {
            cache: BTreeMap::new(),
            quarantine: BTreeMap::new(),
            stats: EngineStats::default(),
        }
    }
}

/// The evaluation service: a content-addressed [`PipelineRun`] cache
/// with batch-parallel miss execution. See the [module docs](self) for
/// the cache keying and determinism arguments.
///
/// # Examples
///
/// ```
/// use slambench::engine::EvalEngine;
/// use slam_kfusion::KFusionConfig;
/// use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
///
/// let mut dc = DatasetConfig::tiny_test();
/// dc.frame_count = 4;
/// let dataset = SyntheticDataset::generate(&dc);
/// let engine = EvalEngine::new();
/// let run = engine.evaluate(&dataset, &KFusionConfig::fast_test());
/// // the second request is a cache hit: no pipeline execution
/// let again = engine.evaluate(&dataset, &KFusionConfig::fast_test());
/// assert_eq!(run.ate.max, again.ate.max);
/// assert_eq!(engine.stats().misses, 1);
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct EvalEngine {
    state: Mutex<EngineState>,
    algorithm: AlgoId,
    disk_dir: Option<PathBuf>,
    tracer: Tracer,
    policy: FaultPolicy,
    plan: FaultPlan,
    run_clock: Arc<dyn RunClock>,
}

impl Default for EvalEngine {
    fn default() -> EvalEngine {
        EvalEngine::new()
    }
}

impl EvalEngine {
    /// An engine with an in-memory cache only.
    pub fn new() -> EvalEngine {
        EvalEngine {
            state: Mutex::new(EngineState::new()),
            algorithm: AlgoId::default(),
            disk_dir: None,
            tracer: Tracer::disabled(),
            policy: FaultPolicy::default(),
            plan: FaultPlan::none(),
            run_clock: Arc::new(WallRunClock),
        }
    }

    /// An engine that additionally persists every run under `dir` (one
    /// JSON file per entry) and consults those files on a memory miss —
    /// warm starts across bench-bin invocations. The directory is
    /// created lazily on first write; all disk I/O is best-effort and
    /// can only ever fall back to re-evaluation.
    pub fn with_disk_cache(dir: impl Into<PathBuf>) -> EvalEngine {
        EvalEngine {
            disk_dir: Some(dir.into()),
            ..EvalEngine::new()
        }
    }

    /// Sets the algorithm this engine evaluates (builder style). The
    /// default is [`AlgoId::KinectFusion`], the historical behaviour.
    /// The algorithm id is part of every cache key, so engines over
    /// different algorithms never share or alias entries even when they
    /// share a disk-cache directory.
    pub fn with_algorithm(mut self, algorithm: AlgoId) -> EvalEngine {
        self.algorithm = algorithm;
        self
    }

    /// The algorithm this engine evaluates.
    pub fn algorithm(&self) -> AlgoId {
        self.algorithm
    }

    /// Sets the fault-tolerance policy: per-run deadline + retry. The
    /// default is unlimited/single-attempt, which is the zero-overhead
    /// pre-fault-tolerance behaviour.
    pub fn with_policy(mut self, policy: FaultPolicy) -> EvalEngine {
        self.policy = policy;
        self
    }

    /// Installs a seeded fault-injection plan (tests only; the default
    /// plan injects nothing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> EvalEngine {
        self.plan = plan;
        self
    }

    /// Sets the per-run clock source used to measure wall deadlines
    /// (default: real time via [`WallRunClock`]; tests inject
    /// [`MockRunClock`](crate::fault::MockRunClock) for determinism).
    pub fn with_run_clock(mut self, clock: Arc<dyn RunClock>) -> EvalEngine {
        self.run_clock = clock;
        self
    }

    /// The active fault-tolerance policy.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Every configuration quarantined so far, in key order.
    pub fn quarantined(&self) -> Vec<QuarantinedConfig> {
        self.lock().quarantine.values().cloned().collect()
    }

    /// Attaches a [`Tracer`]: every cache classification bumps an
    /// `engine.cache_hit` / `engine.disk_hit` / `engine.cache_miss`
    /// counter, each batch opens an `engine.batch` section span, and
    /// miss executions record their full frame/kernel/band span tree
    /// (see [`slam_trace`]). With the default disabled tracer all of
    /// this is a no-op; either way results are bit-identical.
    pub fn with_tracer(mut self, tracer: Tracer) -> EvalEngine {
        self.tracer = tracer;
        self
    }

    /// The tracer evaluations record into (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The on-disk cache directory, if persistence is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Cache traffic so far.
    pub fn stats(&self) -> EngineStats {
        self.lock().stats
    }

    /// Whether `(dataset, config)` is already resolvable without running
    /// the pipeline (in memory, or loadable from the disk cache).
    pub fn is_cached(&self, dataset: &SyntheticDataset, config: &KFusionConfig) -> bool {
        let key = RunKey {
            algorithm: self.algorithm,
            dataset: dataset_id(dataset),
            config: config_bits(config),
        };
        if self.lock().cache.contains_key(&key) {
            return true;
        }
        if let Some(run) = self.load_from_disk(&key) {
            self.lock().cache.insert(key, run);
            return true;
        }
        false
    }

    /// Evaluates one configuration, serving it from the cache when
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the dataset is empty
    /// — the historical `run_pipeline` contract. Fallible callers use
    /// [`EvalEngine::try_evaluate`].
    pub fn evaluate(&self, dataset: &SyntheticDataset, config: &KFusionConfig) -> PipelineRun {
        match self.try_evaluate(dataset, config) {
            Ok(run) => run,
            // xtask-allow: panic-path — reason: back-compat with run_pipeline's panicking contract; fallible callers use try_evaluate
            Err(e) => panic!("evaluation failed: {e}"),
        }
    }

    /// Fallible [`EvalEngine::evaluate`]: surfaces invalid
    /// configurations, empty datasets and failed (quarantined) runs as
    /// typed errors.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] when `config` fails
    /// [`KFusionConfig::validate`]; [`EvalError::EmptyDataset`] when the
    /// dataset has no frames; [`EvalError::RunFailed`] when the run
    /// panicked on every allowed attempt.
    pub fn try_evaluate(
        &self,
        dataset: &SyntheticDataset,
        config: &KFusionConfig,
    ) -> Result<PipelineRun, EvalError> {
        let mut runs = self.try_evaluate_batch(dataset, std::slice::from_ref(config))?;
        debug_assert_eq!(runs.len(), 1);
        runs.pop().ok_or(EvalError::EmptyDataset)
    }

    /// Evaluates a batch of configurations, scheduling the cache misses
    /// concurrently on the shared worker pool, and returns one
    /// [`PipelineRun`] per request in request order.
    ///
    /// # Panics
    ///
    /// Panics when any configuration is invalid or the dataset is empty.
    /// Fallible callers use [`EvalEngine::try_evaluate_batch`].
    pub fn evaluate_batch(
        &self,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Vec<PipelineRun> {
        match self.try_evaluate_batch(dataset, configs) {
            Ok(runs) => runs,
            // xtask-allow: panic-path — reason: back-compat with run_pipeline's panicking contract; fallible callers use try_evaluate_batch
            Err(e) => panic!("batch evaluation failed: {e}"),
        }
    }

    /// Fallible [`EvalEngine::evaluate_batch`]. Validates every
    /// configuration up front; on validation error nothing is evaluated.
    ///
    /// Built on [`EvalEngine::try_evaluate_batch_outcomes`]: a
    /// deadline-truncated run is returned as its completed prefix, and
    /// the first quarantined slot turns the whole call into
    /// [`EvalError::RunFailed`]. Callers that need per-slot outcomes
    /// (all the orchestrators) use the outcomes API directly.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] for the first configuration failing
    /// [`KFusionConfig::validate`]; [`EvalError::EmptyDataset`] when the
    /// dataset has no frames; [`EvalError::RunFailed`] when a slot's run
    /// panicked on every allowed attempt (the engine itself stays
    /// usable: the failure is recorded, not propagated as a panic).
    pub fn try_evaluate_batch(
        &self,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Result<Vec<PipelineRun>, EvalError> {
        let outcomes = self.try_evaluate_batch_outcomes(dataset, configs)?;
        let mut out = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                RunOutcome::Done(run) | RunOutcome::TimedOut(run) => out.push(run),
                RunOutcome::Failed(q) => {
                    return Err(EvalError::RunFailed {
                        config: Box::new(q.config),
                        cause: q.cause,
                    })
                }
            }
        }
        Ok(out)
    }

    /// The fault-tolerant batch evaluator: one [`RunOutcome`] per
    /// request, in request order. A panicking run (real or injected)
    /// affects only its own slot — it is retried per the
    /// [`RetryPolicy`](crate::fault::RetryPolicy), quarantined on
    /// exhaustion, and every other slot's result is returned intact. A
    /// run exceeding the per-run deadline comes back as
    /// [`RunOutcome::TimedOut`] with its completed prefix. Neither
    /// timed-out nor failed runs are ever cached; quarantine records
    /// make later requests for a failed configuration fail fast.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] for the first configuration failing
    /// [`KFusionConfig::validate`]; [`EvalError::EmptyDataset`] when the
    /// dataset has no frames. Per-slot failures are *not* errors here.
    pub fn try_evaluate_batch_outcomes(
        &self,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Result<Vec<RunOutcome>, EvalError> {
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        if dataset.is_empty() {
            return Err(EvalError::EmptyDataset);
        }
        for config in configs {
            config.validate()?;
        }
        let _batch = self.tracer.section_span("engine.batch");
        let ds = dataset_id(dataset);
        let keys: Vec<RunKey> = configs
            .iter()
            .map(|config| RunKey {
                algorithm: self.algorithm,
                dataset: ds,
                config: config_bits(config),
            })
            .collect();

        // classify each request; collect the distinct misses in request
        // order (the deterministic execution + insertion order)
        enum Slot {
            /// Resolvable from the cache at assembly time.
            Ready,
            /// Answered by an existing quarantine record.
            Quarantined(QuarantinedConfig),
            /// Index into this batch's miss list.
            Miss(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(configs.len());
        let mut miss_keys: Vec<RunKey> = Vec::new();
        let mut miss_configs: Vec<KFusionConfig> = Vec::new();
        {
            let mut state = self.lock();
            for (key, config) in keys.iter().zip(configs) {
                if state.cache.contains_key(key) {
                    state.stats.hits += 1;
                    self.tracer.counter("engine.cache_hit", 1);
                    slots.push(Slot::Ready);
                } else if let Some(q) = state.quarantine.get(key).cloned() {
                    // fail fast: this configuration already exhausted
                    // its attempts in an earlier batch
                    state.stats.quarantined += 1;
                    self.tracer.counter("engine.quarantine_hit", 1);
                    slots.push(Slot::Quarantined(q));
                } else if let Some(i) = miss_keys.iter().position(|k| k == key) {
                    // duplicate within this batch: shares the single
                    // execution already scheduled
                    state.stats.hits += 1;
                    self.tracer.counter("engine.cache_hit", 1);
                    slots.push(Slot::Miss(i));
                } else if let Some(run) = self.load_from_disk(key) {
                    state.stats.disk_hits += 1;
                    self.tracer.counter("engine.disk_hit", 1);
                    state.cache.insert(key.clone(), run);
                    slots.push(Slot::Ready);
                } else {
                    state.stats.misses += 1;
                    self.tracer.counter("engine.cache_miss", 1);
                    slots.push(Slot::Miss(miss_keys.len()));
                    miss_keys.push(key.clone());
                    miss_configs.push(config.clone());
                }
            }
        }

        // run the misses concurrently, each isolated behind its own
        // catch_unwind + retry loop; the cache lock is never held inside
        // the parallel section, and bookkeeping happens in miss order
        // afterwards, so scheduling cannot influence the cache
        let mut miss_results: Vec<MissResult> = Vec::new();
        if !miss_configs.is_empty() {
            miss_results = if miss_configs.len() == 1 {
                vec![self.execute_isolated(dataset, &miss_configs[0], key_hash(&miss_keys[0]))]
            } else {
                let workers = exec::effective_threads(0).min(miss_configs.len());
                let inner = (exec::available_threads() / workers).max(1);
                let tasks: Vec<exec::Task<'_, MissResult>> = miss_configs
                    .iter()
                    .zip(&miss_keys)
                    .map(|(config, key)| {
                        let kh = key_hash(key);
                        Box::new(move || {
                            exec::with_thread_budget(inner, || {
                                self.execute_isolated(dataset, config, kh)
                            })
                        }) as exec::Task<'_, MissResult>
                    })
                    .collect();
                exec::run_tasks(workers, tasks)
            };
            let mut state = self.lock();
            for (key, result) in miss_keys.iter().zip(&miss_results) {
                match result {
                    MissResult::Done { run, retries } => {
                        state.stats.retries += retries;
                        self.store_to_disk(key, run);
                        state.cache.insert(key.clone(), run.clone());
                    }
                    MissResult::TimedOut { retries, .. } => {
                        state.stats.retries += retries;
                        state.stats.timed_out += 1;
                        self.tracer.counter("engine.timed_out", 1);
                    }
                    MissResult::Failed(q) => {
                        state.stats.retries += q.attempts.saturating_sub(1);
                        state.stats.failed += 1;
                        self.tracer.counter("engine.run_failed", 1);
                        state.quarantine.insert(key.clone(), q.clone());
                    }
                }
            }
        }

        let state = self.lock();
        let mut out = Vec::with_capacity(configs.len());
        for ((slot, key), config) in slots.iter().zip(&keys).zip(configs) {
            // reported runs are thread-count-agnostic cache entries;
            // restore the thread knob the caller actually asked for
            let with_threads = |mut run: PipelineRun| {
                run.config.threads = config.threads;
                run
            };
            out.push(match slot {
                Slot::Ready => {
                    // xtask-allow: panic-path — reason: a Ready slot was in the cache (or inserted from disk) at classification time
                    let run = state.cache.get(key).cloned().expect("ready slot resolved");
                    RunOutcome::Done(with_threads(run))
                }
                Slot::Quarantined(q) => RunOutcome::Failed(q.clone()),
                Slot::Miss(i) => match &miss_results[*i] {
                    MissResult::Done { run, .. } => RunOutcome::Done(with_threads(run.clone())),
                    MissResult::TimedOut { run, .. } => {
                        RunOutcome::TimedOut(with_threads(run.clone()))
                    }
                    MissResult::Failed(q) => RunOutcome::Failed(q.clone()),
                },
            });
        }
        Ok(out)
    }

    /// Executes one cache miss with full fault isolation: injected
    /// faults from the plan, a catch_unwind boundary per attempt, the
    /// retry policy, and the per-run deadline on a fresh per-run clock.
    /// Never panics and never touches the engine lock.
    fn execute_isolated(
        &self,
        dataset: &SyntheticDataset,
        config: &KFusionConfig,
        key_hash: u64,
    ) -> MissResult {
        let max_attempts = self.policy.retry.attempts();
        let slow_ns = self.plan.injected_slow_ns(config);
        let wants_clock = self.policy.deadline.max_wall_ns.is_some();
        let mut attempt = 0usize;
        loop {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if let Some(cause) = self.plan.injected_panic(config, key_hash, attempt) {
                    // xtask-allow: panic-path — reason: deliberate fault injection, caught by the catch_unwind just above
                    panic!("{cause}");
                }
                let clock = wants_clock.then(|| self.run_clock.start());
                run_algorithm_guarded(
                    self.algorithm,
                    dataset,
                    config,
                    &GuardOptions {
                        tracer: &self.tracer,
                        clock: clock.as_deref(),
                        deadline: self.policy.deadline,
                        slow_frame_penalty_ns: slow_ns,
                    },
                )
            }));
            match caught {
                Ok(guarded) => {
                    return match guarded.status {
                        RunStatus::Completed => MissResult::Done {
                            run: guarded.run,
                            retries: attempt,
                        },
                        RunStatus::TimedOut { .. } => MissResult::TimedOut {
                            run: guarded.run,
                            retries: attempt,
                        },
                    };
                }
                Err(payload) => {
                    let cause = panic_message(payload.as_ref());
                    attempt += 1;
                    if attempt >= max_attempts {
                        return MissResult::Failed(QuarantinedConfig {
                            config: config.clone(),
                            attempts: attempt,
                            cause,
                        });
                    }
                    self.tracer.counter("engine.retry", 1);
                }
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineState> {
        // a poisoned lock only means another evaluation panicked; the
        // cache itself is never left mid-update (entries are inserted
        // whole), so continuing with the inner state is sound
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn disk_path(&self, key: &RunKey) -> Option<PathBuf> {
        let dir = self.disk_dir.as_ref()?;
        Some(dir.join(format!("{:016x}.json", key_hash(key))))
    }

    fn load_from_disk(&self, key: &RunKey) -> Option<PipelineRun> {
        let path = self.disk_path(key)?;
        // injected IO error (tests): a failed load is just a miss
        if self.plan.injected_disk_error(key_hash(key), 0) {
            return None;
        }
        let text = std::fs::read_to_string(path).ok()?;
        let entry: DiskEntry = serde_json::from_str(&text).ok()?;
        // verify the schema version and the full key: a hash collision,
        // truncated write, or schema drift must read as a miss, never as
        // a wrong answer
        (entry.version == CACHE_SCHEMA_VERSION
            && entry.algorithm == key.algorithm.id()
            && entry.dataset == key.dataset
            && entry.config == key.config)
            .then_some(entry.run)
    }

    fn store_to_disk(&self, key: &RunKey, run: &PipelineRun) {
        let Some(path) = self.disk_path(key) else {
            return;
        };
        // injected IO error (tests): a failed store only costs a warm
        // start later — persistence is best-effort by design
        if self.plan.injected_disk_error(key_hash(key), 1) {
            return;
        }
        let entry = DiskEntry {
            version: CACHE_SCHEMA_VERSION,
            algorithm: key.algorithm.id().to_string(),
            dataset: key.dataset,
            config: key.config.clone(),
            run: run.clone(),
        };
        let Ok(text) = serde_json::to_string(&entry) else {
            return;
        };
        let Some(dir) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        // write-then-rename so a crashed or concurrent writer can never
        // leave a half-written file under the final name
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Runs one configuration exactly once, bypassing every cache — the
/// building block for callers that need a fresh execution, such as
/// wall-clock measurement in [`crate::measure`].
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn evaluate_once(dataset: &SyntheticDataset, config: &KFusionConfig) -> PipelineRun {
    evaluate_algorithm_once(AlgoId::KinectFusion, dataset, config)
}

/// Like [`evaluate_once`] for any registered algorithm.
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn evaluate_algorithm_once(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
) -> PipelineRun {
    run_algorithm(algorithm, dataset, config)
}

/// Like [`evaluate_once`] but recording the execution's span tree and
/// counters into `tracer` — the building block for the profiling bins
/// (`kernel_table`, `bench_trace`), which need real spans rather than
/// cache hits.
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn evaluate_once_traced(
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> PipelineRun {
    run_algorithm_traced(AlgoId::KinectFusion, dataset, config, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_scene::dataset::DatasetConfig;

    fn tiny_dataset(frames: usize) -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = frames;
        SyntheticDataset::generate(&dc)
    }

    #[test]
    fn key_ignores_threads_knob() {
        let a = KFusionConfig::fast_test();
        let mut b = a.clone();
        b.threads = 7;
        assert_eq!(config_bits(&a), config_bits(&b));
        let mut c = a.clone();
        c.volume_resolution = 32;
        assert_ne!(config_bits(&a), config_bits(&c));
    }

    #[test]
    fn key_separates_volume_backends() {
        // the sparse and dense backends are distinct cache identities:
        // their runs differ (raycast stride in free space), so a hit on
        // the other backend's entry would return the wrong trajectory
        let a = KFusionConfig::fast_test();
        let mut b = a.clone();
        b.volume_backend = slam_kfusion::VolumeBackend::Sparse;
        assert_ne!(config_bits(&a), config_bits(&b));
        let dataset = tiny_dataset(4);
        assert_ne!(
            run_fingerprint(AlgoId::KinectFusion, &dataset, &a),
            run_fingerprint(AlgoId::KinectFusion, &dataset, &b)
        );
    }

    #[test]
    fn dataset_id_separates_datasets() {
        let a = tiny_dataset(4);
        let b = tiny_dataset(5);
        assert_ne!(dataset_id(&a), dataset_id(&b));
        assert_eq!(dataset_id(&a), dataset_id(&tiny_dataset(4)));
    }

    #[test]
    fn cache_hit_skips_execution_and_reports_requested_threads() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let config = KFusionConfig::fast_test();
        let first = engine.evaluate(&dataset, &config);
        let mut threaded = config.clone();
        threaded.threads = 3;
        let second = engine.evaluate(&dataset, &threaded);
        assert_eq!(
            engine.stats(),
            EngineStats {
                hits: 1,
                misses: 1,
                ..EngineStats::default()
            }
        );
        assert_eq!(second.config.threads, 3);
        assert_eq!(first.ate.errors, second.ate.errors);
    }

    #[test]
    fn duplicate_requests_in_one_batch_share_one_execution() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let config = KFusionConfig::fast_test();
        let runs = engine.evaluate_batch(&dataset, &[config.clone(), config.clone(), config]);
        assert_eq!(runs.len(), 3);
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.requests(), 3);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let mut config = KFusionConfig::fast_test();
        config.compute_size_ratio = 3;
        let err = engine.try_evaluate(&dataset, &config).unwrap_err();
        let EvalError::InvalidConfig(e) = err else {
            // xtask-allow: panic-path — reason: test assertion on the error variant
            panic!("expected InvalidConfig, got {err:?}");
        };
        assert_eq!(e.parameter(), "compute_size_ratio");
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let dataset = tiny_dataset(0);
        let engine = EvalEngine::new();
        let err = engine
            .try_evaluate(&dataset, &KFusionConfig::fast_test())
            .unwrap_err();
        assert_eq!(err, EvalError::EmptyDataset);
    }

    #[test]
    fn tracer_counts_cache_traffic_and_records_miss_spans() {
        let dataset = tiny_dataset(3);
        let tracer = Tracer::new();
        let engine = EvalEngine::new().with_tracer(tracer.clone());
        let config = KFusionConfig::fast_test();
        let first = engine.evaluate(&dataset, &config);
        let second = engine.evaluate(&dataset, &config);
        assert_eq!(first.ate.errors, second.ate.errors);
        let trace = tracer.drain();
        assert_eq!(trace.counter_total("engine.cache_miss"), 1);
        assert_eq!(trace.counter_total("engine.cache_hit"), 1);
        assert_eq!(trace.counter_total("engine.disk_hit"), 0);
        // the miss executed under the tracer: one frame span per frame,
        // and both evaluate() calls opened a batch section span
        let frames = trace
            .spans()
            .filter(|s| s.level == slam_trace::SpanLevel::Frame)
            .count();
        assert_eq!(frames, 3);
        let batches = trace.spans().filter(|s| s.name == "engine.batch").count();
        assert_eq!(batches, 2);
        // a disabled engine records nothing
        let silent = EvalEngine::new();
        let _ = silent.evaluate(&dataset, &config);
        assert!(!silent.tracer().enabled());
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = EngineStats {
            hits: 1,
            disk_hits: 2,
            misses: 3,
            quarantined: 4,
            retries: 5,
            timed_out: 6,
            failed: 7,
        };
        let b = EngineStats {
            hits: 10,
            ..EngineStats::default()
        };
        let merged = EngineStats::merge(&[a, b, EngineStats::default()]);
        assert_eq!(merged.hits, 11);
        assert_eq!(merged.disk_hits, 2);
        assert_eq!(merged.misses, 3);
        assert_eq!(merged.quarantined, 4);
        assert_eq!(merged.retries, 5);
        assert_eq!(merged.timed_out, 6);
        assert_eq!(merged.failed, 7);
        assert_eq!(merged.requests(), a.requests() + b.requests());
        assert_eq!(EngineStats::merge(&[]), EngineStats::default());
        // round-trips through JSON for the server stats endpoint
        let json = serde_json::to_string(&merged).unwrap();
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn run_fingerprint_matches_cache_identity() {
        let dataset = tiny_dataset(4);
        let config = KFusionConfig::fast_test();
        let mut threaded = config.clone();
        threaded.threads = 9;
        // the threads knob is normalised out, like the cache key
        assert_eq!(
            run_fingerprint(AlgoId::KinectFusion, &dataset, &config),
            run_fingerprint(AlgoId::KinectFusion, &dataset, &threaded),
        );
        // algorithm and config changes move the fingerprint
        assert_ne!(
            run_fingerprint(AlgoId::KinectFusion, &dataset, &config),
            run_fingerprint(AlgoId::PointOdometry, &dataset, &config),
        );
        let mut coarse = config.clone();
        coarse.volume_resolution = 32;
        assert_ne!(
            run_fingerprint(AlgoId::KinectFusion, &dataset, &config),
            run_fingerprint(AlgoId::KinectFusion, &dataset, &coarse),
        );
    }

    #[test]
    fn empty_batch_is_free() {
        let dataset = tiny_dataset(0); // not even touched
        let engine = EvalEngine::new();
        assert!(engine.evaluate_batch(&dataset, &[]).is_empty());
        assert_eq!(engine.stats().requests(), 0);
    }
}
