//! The unified evaluation engine: one memoising, batch-parallel service
//! behind every orchestrator.
//!
//! The paper's expensive half is not one KinectFusion run but *hundreds*
//! of them: the HyperMapper active-learning loop (Figure 2), the
//! incremental co-design step, and the 83-phone fleet replay (Figure 3)
//! all re-evaluate configurations. [`EvalEngine`] centralises that cost:
//!
//! * **Content-addressed run cache.** Every [`PipelineRun`] is keyed by
//!   `(dataset id, config bits)` — the dataset id is a hash of the full
//!   serialised [`DatasetConfig`](slam_scene::dataset::DatasetConfig),
//!   the config bits are the serialised [`KFusionConfig`] with the
//!   `threads` knob normalised to `0`. The `threads` knob is excluded
//!   because kernel outputs are bit-identical across thread counts (see
//!   [`slam_kfusion::exec`]): it changes host wall time only, so two
//!   configurations differing only in `threads` share one cache entry.
//! * **Optional on-disk persistence.** [`EvalEngine::with_disk_cache`]
//!   spills every entry to one JSON file per run under the given
//!   directory (the bench bins use `results/cache/`), giving warm starts
//!   across process invocations. Disk entries are verified against the
//!   full key on load; a corrupt, truncated, or mismatched file is
//!   silently treated as a miss and re-evaluated — the disk cache can
//!   never produce a wrong result or a panic.
//! * **Batch-parallel evaluation.** [`EvalEngine::evaluate_batch`]
//!   schedules the batch's cache misses concurrently on the shared
//!   worker pool, capping the kernels underneath each run with
//!   [`with_thread_budget`](slam_kfusion::exec::with_thread_budget) so
//!   outer × inner parallelism never oversubscribes the machine.
//!
//! # Determinism
//!
//! Batch evaluation returns bit-identical [`PipelineRun`]s versus serial
//! evaluation, in any batch order, at any thread count, because each run
//! is already thread-count-invariant (size-only banding in
//! [`slam_kfusion::exec`]) and runs share no mutable state: the cache is
//! only read before and written after the parallel section. The single
//! exception is [`FrameRecord::wall_time`](crate::run::FrameRecord):
//! host wall-clock is inherently nondeterministic and is pinned by
//! `tests/engine.rs` to be the *only* field that may differ.

use crate::run::{run_pipeline, run_pipeline_traced, PipelineRun};
use serde::{Deserialize, Serialize};
use slam_kfusion::config::ConfigError;
use slam_kfusion::{exec, KFusionConfig};
use slam_scene::dataset::SyntheticDataset;
use slam_trace::Tracer;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Why the engine refused to evaluate a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The configuration failed [`KFusionConfig::validate`].
    InvalidConfig(ConfigError),
    /// The dataset has no frames to run over.
    EmptyDataset,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            EvalError::EmptyDataset => write!(f, "cannot evaluate on an empty dataset"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::InvalidConfig(e) => Some(e),
            EvalError::EmptyDataset => None,
        }
    }
}

impl From<ConfigError> for EvalError {
    fn from(e: ConfigError) -> EvalError {
        EvalError::InvalidConfig(e)
    }
}

/// Cache traffic counters, one increment per requested evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered from the in-memory cache (including duplicates
    /// within one batch, which share the batch's single execution).
    pub hits: usize,
    /// Requests answered by loading a persisted run from disk.
    pub disk_hits: usize,
    /// Requests that executed the pipeline.
    pub misses: usize,
}

impl EngineStats {
    /// Total evaluations requested.
    pub fn requests(&self) -> usize {
        self.hits + self.disk_hits + self.misses
    }
}

/// The content address of one pipeline run: dataset id + config bits
/// (with the pure-performance `threads` knob normalised away).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RunKey {
    dataset: u64,
    config: String,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn dataset_id(dataset: &SyntheticDataset) -> u64 {
    // DatasetConfig is a plain data struct; serialisation cannot fail,
    // and the empty fallback would only merge caches of datasets that
    // both failed to serialise
    let bytes = serde_json::to_vec(dataset.config()).unwrap_or_default();
    fnv1a(&bytes)
}

fn config_bits(config: &KFusionConfig) -> String {
    let mut canonical = config.clone();
    canonical.threads = 0; // bit-identical outputs across thread counts
    serde_json::to_string(&canonical).unwrap_or_default()
}

/// One persisted cache entry: the full key is stored alongside the run
/// so a load can verify it got the file it asked for (hash collisions,
/// truncation, stale schema all fail the check and fall back to a miss).
#[derive(Serialize, Deserialize)]
struct DiskEntry {
    dataset: u64,
    config: String,
    run: PipelineRun,
}

struct EngineState {
    cache: BTreeMap<RunKey, PipelineRun>,
    stats: EngineStats,
}

/// The evaluation service: a content-addressed [`PipelineRun`] cache
/// with batch-parallel miss execution. See the [module docs](self) for
/// the cache keying and determinism arguments.
///
/// # Examples
///
/// ```
/// use slambench::engine::EvalEngine;
/// use slam_kfusion::KFusionConfig;
/// use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
///
/// let mut dc = DatasetConfig::tiny_test();
/// dc.frame_count = 4;
/// let dataset = SyntheticDataset::generate(&dc);
/// let engine = EvalEngine::new();
/// let run = engine.evaluate(&dataset, &KFusionConfig::fast_test());
/// // the second request is a cache hit: no pipeline execution
/// let again = engine.evaluate(&dataset, &KFusionConfig::fast_test());
/// assert_eq!(run.ate.max, again.ate.max);
/// assert_eq!(engine.stats().misses, 1);
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct EvalEngine {
    state: Mutex<EngineState>,
    disk_dir: Option<PathBuf>,
    tracer: Tracer,
}

impl Default for EvalEngine {
    fn default() -> EvalEngine {
        EvalEngine::new()
    }
}

impl EvalEngine {
    /// An engine with an in-memory cache only.
    pub fn new() -> EvalEngine {
        EvalEngine {
            state: Mutex::new(EngineState {
                cache: BTreeMap::new(),
                stats: EngineStats::default(),
            }),
            disk_dir: None,
            tracer: Tracer::disabled(),
        }
    }

    /// An engine that additionally persists every run under `dir` (one
    /// JSON file per entry) and consults those files on a memory miss —
    /// warm starts across bench-bin invocations. The directory is
    /// created lazily on first write; all disk I/O is best-effort and
    /// can only ever fall back to re-evaluation.
    pub fn with_disk_cache(dir: impl Into<PathBuf>) -> EvalEngine {
        EvalEngine {
            state: Mutex::new(EngineState {
                cache: BTreeMap::new(),
                stats: EngineStats::default(),
            }),
            disk_dir: Some(dir.into()),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: every cache classification bumps an
    /// `engine.cache_hit` / `engine.disk_hit` / `engine.cache_miss`
    /// counter, each batch opens an `engine.batch` section span, and
    /// miss executions record their full frame/kernel/band span tree
    /// (see [`slam_trace`]). With the default disabled tracer all of
    /// this is a no-op; either way results are bit-identical.
    pub fn with_tracer(mut self, tracer: Tracer) -> EvalEngine {
        self.tracer = tracer;
        self
    }

    /// The tracer evaluations record into (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The on-disk cache directory, if persistence is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Cache traffic so far.
    pub fn stats(&self) -> EngineStats {
        self.lock().stats
    }

    /// Whether `(dataset, config)` is already resolvable without running
    /// the pipeline (in memory, or loadable from the disk cache).
    pub fn is_cached(&self, dataset: &SyntheticDataset, config: &KFusionConfig) -> bool {
        let key = RunKey {
            dataset: dataset_id(dataset),
            config: config_bits(config),
        };
        if self.lock().cache.contains_key(&key) {
            return true;
        }
        if let Some(run) = self.load_from_disk(&key) {
            self.lock().cache.insert(key, run);
            return true;
        }
        false
    }

    /// Evaluates one configuration, serving it from the cache when
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the dataset is empty
    /// — the historical `run_pipeline` contract. Fallible callers use
    /// [`EvalEngine::try_evaluate`].
    pub fn evaluate(&self, dataset: &SyntheticDataset, config: &KFusionConfig) -> PipelineRun {
        match self.try_evaluate(dataset, config) {
            Ok(run) => run,
            // xtask-allow: panic-path — back-compat with run_pipeline's panicking contract; fallible callers use try_evaluate
            Err(e) => panic!("evaluation failed: {e}"),
        }
    }

    /// Fallible [`EvalEngine::evaluate`]: surfaces invalid
    /// configurations and empty datasets as typed errors.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] when `config` fails
    /// [`KFusionConfig::validate`]; [`EvalError::EmptyDataset`] when the
    /// dataset has no frames.
    pub fn try_evaluate(
        &self,
        dataset: &SyntheticDataset,
        config: &KFusionConfig,
    ) -> Result<PipelineRun, EvalError> {
        let mut runs = self.try_evaluate_batch(dataset, std::slice::from_ref(config))?;
        debug_assert_eq!(runs.len(), 1);
        runs.pop().ok_or(EvalError::EmptyDataset)
    }

    /// Evaluates a batch of configurations, scheduling the cache misses
    /// concurrently on the shared worker pool, and returns one
    /// [`PipelineRun`] per request in request order.
    ///
    /// # Panics
    ///
    /// Panics when any configuration is invalid or the dataset is empty.
    /// Fallible callers use [`EvalEngine::try_evaluate_batch`].
    pub fn evaluate_batch(
        &self,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Vec<PipelineRun> {
        match self.try_evaluate_batch(dataset, configs) {
            Ok(runs) => runs,
            // xtask-allow: panic-path — back-compat with run_pipeline's panicking contract; fallible callers use try_evaluate_batch
            Err(e) => panic!("batch evaluation failed: {e}"),
        }
    }

    /// Fallible [`EvalEngine::evaluate_batch`]. Validates every
    /// configuration up front; on error nothing is evaluated.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidConfig`] for the first configuration failing
    /// [`KFusionConfig::validate`]; [`EvalError::EmptyDataset`] when the
    /// dataset has no frames.
    pub fn try_evaluate_batch(
        &self,
        dataset: &SyntheticDataset,
        configs: &[KFusionConfig],
    ) -> Result<Vec<PipelineRun>, EvalError> {
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        if dataset.is_empty() {
            return Err(EvalError::EmptyDataset);
        }
        for config in configs {
            config.validate()?;
        }
        let _batch = self.tracer.section_span("engine.batch");
        let ds = dataset_id(dataset);
        let keys: Vec<RunKey> = configs
            .iter()
            .map(|config| RunKey {
                dataset: ds,
                config: config_bits(config),
            })
            .collect();

        // classify each request; collect the distinct misses in request
        // order (the deterministic execution + insertion order)
        let mut miss_keys: Vec<RunKey> = Vec::new();
        let mut miss_configs: Vec<KFusionConfig> = Vec::new();
        {
            let mut state = self.lock();
            for (key, config) in keys.iter().zip(configs) {
                if state.cache.contains_key(key) {
                    state.stats.hits += 1;
                    self.tracer.counter("engine.cache_hit", 1);
                } else if miss_keys.contains(key) {
                    // duplicate within this batch: shares the single
                    // execution already scheduled
                    state.stats.hits += 1;
                    self.tracer.counter("engine.cache_hit", 1);
                } else if let Some(run) = self.load_from_disk(key) {
                    state.stats.disk_hits += 1;
                    self.tracer.counter("engine.disk_hit", 1);
                    state.cache.insert(key.clone(), run);
                } else {
                    state.stats.misses += 1;
                    self.tracer.counter("engine.cache_miss", 1);
                    miss_keys.push(key.clone());
                    miss_configs.push(config.clone());
                }
            }
        }

        // run the misses concurrently; the cache lock is never held
        // inside the parallel section, and results are inserted in miss
        // order afterwards, so scheduling cannot influence the cache
        if !miss_configs.is_empty() {
            let tracer = &self.tracer;
            let runs = if miss_configs.len() == 1 {
                vec![run_pipeline_traced(dataset, &miss_configs[0], tracer)]
            } else {
                let workers = exec::effective_threads(0).min(miss_configs.len());
                let inner = (exec::available_threads() / workers).max(1);
                let tasks: Vec<exec::Task<'_, PipelineRun>> = miss_configs
                    .iter()
                    .map(|config| {
                        Box::new(move || {
                            exec::with_thread_budget(inner, || {
                                run_pipeline_traced(dataset, config, tracer)
                            })
                        }) as exec::Task<'_, PipelineRun>
                    })
                    .collect();
                exec::run_tasks(workers, tasks)
            };
            let mut state = self.lock();
            for (key, run) in miss_keys.iter().zip(&runs) {
                self.store_to_disk(key, run);
                state.cache.insert(key.clone(), run.clone());
            }
        }

        let state = self.lock();
        let mut out = Vec::with_capacity(configs.len());
        for (key, config) in keys.iter().zip(configs) {
            // xtask-allow: panic-path — every key is either a prior hit or was inserted from this batch's misses
            let mut run = state.cache.get(key).cloned().expect("key resolved above");
            // the cache entry is thread-count-agnostic; report the
            // thread knob the caller actually asked for
            run.config.threads = config.threads;
            out.push(run);
        }
        Ok(out)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineState> {
        // a poisoned lock only means another evaluation panicked; the
        // cache itself is never left mid-update (entries are inserted
        // whole), so continuing with the inner state is sound
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn disk_path(&self, key: &RunKey) -> Option<PathBuf> {
        let dir = self.disk_dir.as_ref()?;
        let mut bytes = key.dataset.to_le_bytes().to_vec();
        bytes.extend_from_slice(key.config.as_bytes());
        Some(dir.join(format!("{:016x}.json", fnv1a(&bytes))))
    }

    fn load_from_disk(&self, key: &RunKey) -> Option<PipelineRun> {
        let path = self.disk_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let entry: DiskEntry = serde_json::from_str(&text).ok()?;
        // verify the full key: a hash collision, truncated write, or
        // schema drift must read as a miss, never as a wrong answer
        (entry.dataset == key.dataset && entry.config == key.config).then_some(entry.run)
    }

    fn store_to_disk(&self, key: &RunKey, run: &PipelineRun) {
        let Some(path) = self.disk_path(key) else {
            return;
        };
        let entry = DiskEntry {
            dataset: key.dataset,
            config: key.config.clone(),
            run: run.clone(),
        };
        let Ok(text) = serde_json::to_string(&entry) else {
            return;
        };
        let Some(dir) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        // write-then-rename so a crashed or concurrent writer can never
        // leave a half-written file under the final name
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Runs one configuration exactly once, bypassing every cache — the
/// building block for callers that need a fresh execution, such as
/// wall-clock measurement in [`crate::measure`].
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn evaluate_once(dataset: &SyntheticDataset, config: &KFusionConfig) -> PipelineRun {
    run_pipeline(dataset, config)
}

/// Like [`evaluate_once`] but recording the execution's span tree and
/// counters into `tracer` — the building block for the profiling bins
/// (`kernel_table`, `bench_trace`), which need real spans rather than
/// cache hits.
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn evaluate_once_traced(
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> PipelineRun {
    run_pipeline_traced(dataset, config, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_scene::dataset::DatasetConfig;

    fn tiny_dataset(frames: usize) -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = frames;
        SyntheticDataset::generate(&dc)
    }

    #[test]
    fn key_ignores_threads_knob() {
        let a = KFusionConfig::fast_test();
        let mut b = a.clone();
        b.threads = 7;
        assert_eq!(config_bits(&a), config_bits(&b));
        let mut c = a.clone();
        c.volume_resolution = 32;
        assert_ne!(config_bits(&a), config_bits(&c));
    }

    #[test]
    fn dataset_id_separates_datasets() {
        let a = tiny_dataset(4);
        let b = tiny_dataset(5);
        assert_ne!(dataset_id(&a), dataset_id(&b));
        assert_eq!(dataset_id(&a), dataset_id(&tiny_dataset(4)));
    }

    #[test]
    fn cache_hit_skips_execution_and_reports_requested_threads() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let config = KFusionConfig::fast_test();
        let first = engine.evaluate(&dataset, &config);
        let mut threaded = config.clone();
        threaded.threads = 3;
        let second = engine.evaluate(&dataset, &threaded);
        assert_eq!(
            engine.stats(),
            EngineStats {
                hits: 1,
                disk_hits: 0,
                misses: 1
            }
        );
        assert_eq!(second.config.threads, 3);
        assert_eq!(first.ate.errors, second.ate.errors);
    }

    #[test]
    fn duplicate_requests_in_one_batch_share_one_execution() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let config = KFusionConfig::fast_test();
        let runs = engine.evaluate_batch(&dataset, &[config.clone(), config.clone(), config]);
        assert_eq!(runs.len(), 3);
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.requests(), 3);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let dataset = tiny_dataset(4);
        let engine = EvalEngine::new();
        let mut config = KFusionConfig::fast_test();
        config.compute_size_ratio = 3;
        match engine.try_evaluate(&dataset, &config) {
            Err(EvalError::InvalidConfig(e)) => {
                assert_eq!(e.parameter(), "compute_size_ratio");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let dataset = tiny_dataset(0);
        let engine = EvalEngine::new();
        let err = engine
            .try_evaluate(&dataset, &KFusionConfig::fast_test())
            .unwrap_err();
        assert_eq!(err, EvalError::EmptyDataset);
    }

    #[test]
    fn tracer_counts_cache_traffic_and_records_miss_spans() {
        let dataset = tiny_dataset(3);
        let tracer = Tracer::new();
        let engine = EvalEngine::new().with_tracer(tracer.clone());
        let config = KFusionConfig::fast_test();
        let first = engine.evaluate(&dataset, &config);
        let second = engine.evaluate(&dataset, &config);
        assert_eq!(first.ate.errors, second.ate.errors);
        let trace = tracer.drain();
        assert_eq!(trace.counter_total("engine.cache_miss"), 1);
        assert_eq!(trace.counter_total("engine.cache_hit"), 1);
        assert_eq!(trace.counter_total("engine.disk_hit"), 0);
        // the miss executed under the tracer: one frame span per frame,
        // and both evaluate() calls opened a batch section span
        let frames = trace
            .spans()
            .filter(|s| s.level == slam_trace::SpanLevel::Frame)
            .count();
        assert_eq!(frames, 3);
        let batches = trace.spans().filter(|s| s.name == "engine.batch").count();
        assert_eq!(batches, 2);
        // a disabled engine records nothing
        let silent = EvalEngine::new();
        let _ = silent.evaluate(&dataset, &config);
        assert!(!silent.tracer().enabled());
    }

    #[test]
    fn empty_batch_is_free() {
        let dataset = tiny_dataset(0); // not even touched
        let engine = EvalEngine::new();
        assert!(engine.evaluate_batch(&dataset, &[]).is_empty());
        assert_eq!(engine.stats().requests(), 0);
    }
}
