//! Binding between [`KFusionConfig`] and the DSE parameter space.
//!
//! The space matches the algorithmic parameters the PACT'16/ISPASS'18
//! studies sweep (table in `DESIGN.md`). `volume_size` is held at the
//! default 4 m — the preset scenes are built to fill exactly that volume.

use slam_dse::space::{Domain, ParameterSpace};
use slam_kfusion::KFusionConfig;

/// Parameter order of the encoded vector. Kept in one place so encode,
/// decode and the space definition can never drift apart.
const NAMES: [&str; 10] = [
    "compute_size_ratio",
    "icp_threshold",
    "mu",
    "volume_resolution",
    "pyramid_l0",
    "pyramid_l1",
    "pyramid_l2",
    "tracking_rate",
    "integration_rate",
    "bilateral_filter",
];

/// The SLAMBench algorithmic configuration space of the paper.
pub fn slambench_space() -> ParameterSpace {
    let mut s = ParameterSpace::new();
    s.add(NAMES[0], Domain::ordinal(vec![1.0, 2.0, 4.0, 8.0]))
        .add(NAMES[1], Domain::log_real(1e-6, 1e-4))
        .add(NAMES[2], Domain::real(0.01, 0.2))
        .add(
            NAMES[3],
            Domain::ordinal(vec![32.0, 64.0, 96.0, 128.0, 192.0, 256.0]),
        )
        .add(NAMES[4], Domain::Integer { min: 1, max: 10 })
        .add(NAMES[5], Domain::Integer { min: 0, max: 5 })
        .add(NAMES[6], Domain::Integer { min: 0, max: 4 })
        .add(NAMES[7], Domain::Integer { min: 1, max: 3 })
        .add(NAMES[8], Domain::Integer { min: 1, max: 5 })
        .add(NAMES[9], Domain::Flag);
    s
}

/// Decodes an encoded vector (in [`slambench_space`] order) into a
/// validated configuration.
///
/// # Panics
///
/// Panics when the vector has the wrong length. Values are snapped into
/// their domains, so any in-length vector decodes to a valid config.
pub fn decode_config(x: &[f64]) -> KFusionConfig {
    assert_eq!(
        x.len(),
        NAMES.len(),
        "encoded config must have {} entries",
        NAMES.len()
    );
    let space = slambench_space();
    let x = space.snap(x);
    let config = KFusionConfig {
        compute_size_ratio: x[0] as usize,
        icp_threshold: x[1] as f32,
        mu: x[2] as f32,
        volume_resolution: x[3] as usize,
        pyramid_iterations: [x[4] as usize, x[5] as usize, x[6] as usize],
        tracking_rate: x[7] as usize,
        integration_rate: x[8] as usize,
        bilateral_filter: x[9] >= 0.5,
        ..KFusionConfig::default()
    };
    debug_assert!(config.validate().is_ok(), "snapped config must validate");
    config
}

/// Encodes a configuration into the space's vector form.
pub fn encode_config(config: &KFusionConfig) -> Vec<f64> {
    vec![
        config.compute_size_ratio as f64,
        f64::from(config.icp_threshold),
        f64::from(config.mu),
        config.volume_resolution as f64,
        config.pyramid_iterations[0] as f64,
        config.pyramid_iterations[1] as f64,
        config.pyramid_iterations[2] as f64,
        config.tracking_rate as f64,
        config.integration_rate as f64,
        if config.bilateral_filter { 1.0 } else { 0.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_has_ten_parameters() {
        let s = slambench_space();
        assert_eq!(s.len(), 10);
        assert_eq!(s.index_of("volume_resolution"), Some(3));
    }

    #[test]
    fn default_config_roundtrips() {
        let c = KFusionConfig::default();
        let decoded = decode_config(&encode_config(&c));
        assert_eq!(decoded.compute_size_ratio, c.compute_size_ratio);
        assert_eq!(decoded.volume_resolution, c.volume_resolution);
        assert_eq!(decoded.pyramid_iterations, c.pyramid_iterations);
        assert_eq!(decoded.bilateral_filter, c.bilateral_filter);
        assert!((decoded.mu - c.mu).abs() < 1e-6);
        assert!((decoded.icp_threshold - c.icp_threshold).abs() < 1e-9);
    }

    #[test]
    fn every_sample_decodes_to_valid_config() {
        let space = slambench_space();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let x = space.sample(&mut rng);
            let config = decode_config(&x);
            // xtask-allow: panic-path — reason: property loop over 500 samples; the message names the violated invariant
            config.validate().expect("sampled config must be valid");
        }
    }

    #[test]
    fn zero_pyramid_levels_get_rescued_by_l0_minimum() {
        // the l0 domain starts at 1, so pyramid [1,0,0] is the floor
        let mut x = encode_config(&KFusionConfig::default());
        x[4] = 0.0;
        x[5] = 0.0;
        x[6] = 0.0;
        let config = decode_config(&x);
        assert!(config.pyramid_iterations[0] >= 1);
        config.validate().unwrap();
    }

    #[test]
    fn snapping_repairs_off_grid_values() {
        let mut x = encode_config(&KFusionConfig::default());
        x[0] = 3.0; // not in {1,2,4,8} → snaps to 2 or 4
        x[3] = 100.0; // → 96 or 128
        let config = decode_config(&x);
        assert!([2usize, 4].contains(&config.compute_size_ratio));
        assert!([96usize, 128].contains(&config.volume_resolution));
    }

    #[test]
    #[should_panic(expected = "10 entries")]
    fn wrong_length_panics() {
        let _ = decode_config(&[1.0, 2.0]);
    }
}
