//! Binding between [`KFusionConfig`] and the DSE parameter space.
//!
//! The space is no longer hand-written per algorithm: it is built from
//! the [`ParamDescriptor`] list each [`AlgoId`] publishes, so adding an
//! algorithm (or a knob) extends the DSE layer without touching this
//! module. The KinectFusion space matches the algorithmic parameters the
//! PACT'16/ISPASS'18 studies sweep (table in `DESIGN.md`); `volume_size`
//! is held at the default 4 m — the preset scenes are built to fill
//! exactly that volume.

use slam_dse::space::{Domain, ParameterSpace};
use slam_kfusion::{AlgoId, KFusionConfig, ParamDomain};

fn domain_of(d: &ParamDomain) -> Domain {
    match *d {
        ParamDomain::Ordinal(values) => Domain::ordinal(values.to_vec()),
        ParamDomain::Real { lo, hi } => Domain::real(lo, hi),
        ParamDomain::LogReal { lo, hi } => Domain::log_real(lo, hi),
        ParamDomain::Integer { lo, hi } => Domain::Integer { min: lo, max: hi },
        ParamDomain::Flag => Domain::Flag,
    }
}

/// The DSE parameter space of one algorithm, built from its descriptor.
pub fn space_for(algorithm: AlgoId) -> ParameterSpace {
    let mut s = ParameterSpace::new();
    for p in algorithm.parameter_space() {
        s.add(p.name, domain_of(&p.domain));
    }
    s
}

/// Writes one named parameter into the configuration. Descriptor names
/// are the single source of truth: an algorithm advertising a name this
/// function does not know is a programming error.
fn apply(config: &mut KFusionConfig, name: &str, v: f64) {
    match name {
        "compute_size_ratio" => config.compute_size_ratio = v as usize,
        "icp_threshold" => config.icp_threshold = v as f32,
        "mu" => config.mu = v as f32,
        "volume_resolution" => config.volume_resolution = v as usize,
        "pyramid_l0" => config.pyramid_iterations[0] = v as usize,
        "pyramid_l1" => config.pyramid_iterations[1] = v as usize,
        "pyramid_l2" => config.pyramid_iterations[2] = v as usize,
        "tracking_rate" => config.tracking_rate = v as usize,
        "integration_rate" => config.integration_rate = v as usize,
        "bilateral_filter" => config.bilateral_filter = v >= 0.5,
        "volume_backend" => {
            config.volume_backend = if v >= 0.5 {
                slam_kfusion::VolumeBackend::Sparse
            } else {
                slam_kfusion::VolumeBackend::Dense
            }
        }
        // xtask-allow: panic-path — reason: unknown descriptor names are a compile-time drift between an algorithm's parameter_space and this binding
        other => panic!("unknown DSE parameter {other}"),
    }
}

/// Reads one named parameter out of the configuration (the inverse of
/// [`apply`]).
fn extract(config: &KFusionConfig, name: &str) -> f64 {
    match name {
        "compute_size_ratio" => config.compute_size_ratio as f64,
        "icp_threshold" => f64::from(config.icp_threshold),
        "mu" => f64::from(config.mu),
        "volume_resolution" => config.volume_resolution as f64,
        "pyramid_l0" => config.pyramid_iterations[0] as f64,
        "pyramid_l1" => config.pyramid_iterations[1] as f64,
        "pyramid_l2" => config.pyramid_iterations[2] as f64,
        "tracking_rate" => config.tracking_rate as f64,
        "integration_rate" => config.integration_rate as f64,
        "bilateral_filter" => {
            if config.bilateral_filter {
                1.0
            } else {
                0.0
            }
        }
        "volume_backend" => match config.volume_backend {
            slam_kfusion::VolumeBackend::Dense => 0.0,
            slam_kfusion::VolumeBackend::Sparse => 1.0,
        },
        // xtask-allow: panic-path — reason: unknown descriptor names are a compile-time drift between an algorithm's parameter_space and this binding
        other => panic!("unknown DSE parameter {other}"),
    }
}

/// Decodes an encoded vector (in `space_for(algorithm)` order) into a
/// validated configuration for that algorithm.
///
/// # Panics
///
/// Panics when the vector has the wrong length. Values are snapped into
/// their domains, so any in-length vector decodes to a valid config.
pub fn decode_for(algorithm: AlgoId, x: &[f64]) -> KFusionConfig {
    let descs = algorithm.parameter_space();
    assert_eq!(
        x.len(),
        descs.len(),
        "encoded config must have {} entries",
        descs.len()
    );
    let space = space_for(algorithm);
    let x = space.snap(x);
    let mut config = KFusionConfig::default();
    for (p, &v) in descs.iter().zip(x.iter()) {
        apply(&mut config, p.name, v);
    }
    debug_assert!(config.validate().is_ok(), "snapped config must validate");
    config
}

/// Encodes a configuration into the algorithm space's vector form.
pub fn encode_for(algorithm: AlgoId, config: &KFusionConfig) -> Vec<f64> {
    algorithm
        .parameter_space()
        .iter()
        .map(|p| extract(config, p.name))
        .collect()
}

/// The SLAMBench algorithmic configuration space of the paper — the
/// KinectFusion space.
pub fn slambench_space() -> ParameterSpace {
    space_for(AlgoId::KinectFusion)
}

/// Decodes an encoded vector (in [`slambench_space`] order) into a
/// validated configuration.
///
/// # Panics
///
/// Panics when the vector has the wrong length. Values are snapped into
/// their domains, so any in-length vector decodes to a valid config.
pub fn decode_config(x: &[f64]) -> KFusionConfig {
    decode_for(AlgoId::KinectFusion, x)
}

/// Encodes a configuration into the space's vector form.
pub fn encode_config(config: &KFusionConfig) -> Vec<f64> {
    encode_for(AlgoId::KinectFusion, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_has_eleven_parameters() {
        let s = slambench_space();
        assert_eq!(s.len(), 11);
        assert_eq!(s.index_of("volume_resolution"), Some(3));
        // appended last: existing encoded design points keep their indices
        assert_eq!(s.index_of("volume_backend"), Some(10));
    }

    #[test]
    fn volume_backend_roundtrips_through_the_space() {
        use slam_kfusion::VolumeBackend;
        let mut c = KFusionConfig::default();
        c.volume_backend = VolumeBackend::Sparse;
        let x = encode_config(&c);
        assert_eq!(x[10], 1.0);
        let decoded = decode_config(&x);
        assert_eq!(decoded.volume_backend, VolumeBackend::Sparse);
        c.volume_backend = VolumeBackend::Dense;
        assert_eq!(
            decode_config(&encode_config(&c)).volume_backend,
            VolumeBackend::Dense
        );
    }

    #[test]
    fn default_config_roundtrips() {
        let c = KFusionConfig::default();
        let decoded = decode_config(&encode_config(&c));
        assert_eq!(decoded.compute_size_ratio, c.compute_size_ratio);
        assert_eq!(decoded.volume_resolution, c.volume_resolution);
        assert_eq!(decoded.pyramid_iterations, c.pyramid_iterations);
        assert_eq!(decoded.bilateral_filter, c.bilateral_filter);
        assert!((decoded.mu - c.mu).abs() < 1e-6);
        assert!((decoded.icp_threshold - c.icp_threshold).abs() < 1e-9);
    }

    #[test]
    fn every_sample_decodes_to_valid_config_for_every_algorithm() {
        for &algo in &AlgoId::ALL {
            let space = space_for(algo);
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..500 {
                let x = space.sample(&mut rng);
                let config = decode_for(algo, &x);
                // xtask-allow: panic-path — reason: property loop over 500 samples; the message names the violated invariant
                config.validate().expect("sampled config must be valid");
            }
        }
    }

    #[test]
    fn odometry_space_drops_mu_but_roundtrips() {
        let space = space_for(AlgoId::PointOdometry);
        assert_eq!(space.index_of("mu"), None);
        assert_eq!(space.len(), 9);
        let c = KFusionConfig::default();
        let decoded = decode_for(
            AlgoId::PointOdometry,
            &encode_for(AlgoId::PointOdometry, &c),
        );
        assert_eq!(decoded.volume_resolution, c.volume_resolution);
        assert_eq!(decoded.pyramid_iterations, c.pyramid_iterations);
        // mu is not swept for odometry: decode leaves the default
        assert_eq!(decoded.mu, KFusionConfig::default().mu);
    }

    #[test]
    fn zero_pyramid_levels_get_rescued_by_l0_minimum() {
        // the l0 domain starts at 1, so pyramid [1,0,0] is the floor
        let mut x = encode_config(&KFusionConfig::default());
        x[4] = 0.0;
        x[5] = 0.0;
        x[6] = 0.0;
        let config = decode_config(&x);
        assert!(config.pyramid_iterations[0] >= 1);
        config.validate().unwrap();
    }

    #[test]
    fn snapping_repairs_off_grid_values() {
        let mut x = encode_config(&KFusionConfig::default());
        x[0] = 3.0; // not in {1,2,4,8} → snaps to 2 or 4
        x[3] = 100.0; // → 96 or 128
        let config = decode_config(&x);
        assert!([2usize, 4].contains(&config.compute_size_ratio));
        assert!([96usize, 128].contains(&config.volume_resolution));
    }

    #[test]
    #[should_panic(expected = "11 entries")]
    fn wrong_length_panics() {
        let _ = decode_config(&[1.0, 2.0]);
    }
}
