//! The mobile-fleet evaluation (Figure 3): deploying the default and the
//! XU3-tuned configuration across the 83-phone catalogue and reporting
//! each device's speed-up.
//!
//! Two realities of the crowdsourced study are modelled here (documented
//! in `DESIGN.md`):
//!
//! * **memory limits** — the benchmark app caps the TSDF volume at what
//!   the device can allocate, so low-RAM phones run the *default*
//!   configuration at a reduced volume resolution (which compresses
//!   their speed-up),
//! * **thermal throttling** — phones are passively cooled and drop their
//!   DVFS point under sustained load, which hits the power-hungry
//!   default configuration harder than the tuned one (stretching the
//!   speed-up on hot devices).

use crate::engine::{EvalEngine, RunOutcome};
use serde::{Deserialize, Serialize};
use slam_kfusion::KFusionConfig;
use slam_power::fleet::Tier;
use slam_power::PhoneSpec;
use slam_scene::dataset::SyntheticDataset;
use std::collections::BTreeMap;

/// One phone's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetEntry {
    /// Fleet index of the phone.
    pub index: usize,
    /// Device name.
    pub name: String,
    /// SoC name.
    pub soc: String,
    /// Market tier.
    pub tier: Tier,
    /// Whether the phone's GPU is usable for compute.
    pub gpu: bool,
    /// Installed RAM, MB.
    pub ram_mb: usize,
    /// The volume resolution the default configuration actually ran at
    /// on this phone (memory-capped).
    pub default_volume: usize,
    /// Modelled mean frame time with the default configuration, seconds.
    pub default_s: f64,
    /// Modelled mean frame time with the tuned configuration, seconds.
    pub tuned_s: f64,
    /// `default_s / tuned_s` — the paper's Figure 3 metric.
    pub speedup: f64,
}

/// A phone dropped from the fleet report because a run it depends on was
/// quarantined — the crowdsourced-study reality that some devices fail
/// and the campaign reports them instead of dying.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSkip {
    /// Fleet index of the phone.
    pub index: usize,
    /// Device name.
    pub name: String,
    /// Why the phone has no entry.
    pub reason: String,
}

/// The fleet study's result: per-phone entries plus the phones skipped
/// because a required run failed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// One entry per phone whose runs all completed, in fleet order.
    pub entries: Vec<FleetEntry>,
    /// Phones without an entry, with the reported reason.
    pub skipped: Vec<FleetSkip>,
}

/// The fraction of device RAM the benchmark app can realistically devote
/// to the TSDF volume.
const VOLUME_RAM_FRACTION: f64 = 0.15;

/// The volume resolutions the app falls back through when memory is
/// tight, largest first.
const VOLUME_LADDER: [usize; 5] = [256, 192, 128, 96, 64];

/// The largest volume resolution (from the app's fallback ladder, capped
/// at `requested`) whose TSDF fits the phone's volume-memory budget.
pub fn memory_capped_volume(requested: usize, ram_mb: usize) -> usize {
    let budget_bytes = ram_mb as f64 * 1e6 * VOLUME_RAM_FRACTION;
    for &vr in &VOLUME_LADDER {
        if vr > requested {
            continue;
        }
        // xtask-allow: volume-boundary — reason: RAM-ladder estimate of the dense footprint; allocates nothing
        let bytes = (vr * vr * vr * 8) as f64; // two f32 fields per voxel
        if bytes <= budget_bytes {
            return vr;
        }
    }
    VOLUME_LADDER[VOLUME_LADDER.len() - 1]
}

/// Runs the Figure 3 study: the default and tuned configurations across
/// the fleet, with per-phone memory capping and thermal throttling.
///
/// The pipeline executes once per *distinct* memory-capped default volume
/// (the workload trace is device-independent), so the whole 83-phone
/// fleet costs a handful of pipeline runs. A quarantined run does not
/// abort the study: the phones depending on it are skipped with a
/// reported reason ([`FleetOutcome::skipped`]).
pub fn fleet_speedups(
    dataset: &SyntheticDataset,
    default_config: &KFusionConfig,
    tuned_config: &KFusionConfig,
    fleet: &[PhoneSpec],
) -> FleetOutcome {
    fleet_speedups_with_engine(
        &EvalEngine::new(),
        dataset,
        default_config,
        tuned_config,
        fleet,
    )
}

/// [`fleet_speedups`] with an explicit algorithm: deploys that
/// algorithm across the fleet on a fresh in-memory engine.
pub fn fleet_speedups_algorithm(
    algorithm: slam_kfusion::AlgoId,
    dataset: &SyntheticDataset,
    default_config: &KFusionConfig,
    tuned_config: &KFusionConfig,
    fleet: &[PhoneSpec],
) -> FleetOutcome {
    fleet_speedups_with_engine(
        &EvalEngine::new().with_algorithm(algorithm),
        dataset,
        default_config,
        tuned_config,
        fleet,
    )
}

/// [`fleet_speedups`] on a caller-provided [`EvalEngine`]. The engine
/// is the algorithm handle: the study deploys whatever algorithm the
/// engine carries. The tuned configuration and the distinct
/// memory-capped default volumes are evaluated as one concurrent engine
/// batch, then replayed per phone.
pub fn fleet_speedups_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    default_config: &KFusionConfig,
    tuned_config: &KFusionConfig,
    fleet: &[PhoneSpec],
) -> FleetOutcome {
    // distinct memory-capped default volumes, in fleet order
    let mut volumes: Vec<usize> = Vec::new();
    for phone in fleet {
        let vr = memory_capped_volume(default_config.volume_resolution, phone.ram_mb);
        if !volumes.contains(&vr) {
            volumes.push(vr);
        }
    }
    let mut configs: Vec<KFusionConfig> = Vec::with_capacity(volumes.len() + 1);
    configs.push(tuned_config.clone());
    configs.extend(volumes.iter().map(|&vr| {
        let mut c = default_config.clone();
        c.volume_resolution = vr;
        c
    }));
    let outcomes = match eval.try_evaluate_batch_outcomes(dataset, &configs) {
        Ok(outcomes) => outcomes,
        // xtask-allow: panic-path — reason: empty datasets / invalid configs violate fleet_speedups' documented precondition; per-slot failures never reach this arm
        Err(e) => panic!("fleet evaluation failed: {e}"),
    };
    // a deadline-truncated run still carries a replayable workload
    // prefix; only a quarantined run makes a phone unreportable
    let tuned = &outcomes[0];
    let default_by_vr: BTreeMap<usize, &RunOutcome> =
        volumes.iter().copied().zip(outcomes[1..].iter()).collect();
    let mut entries = Vec::new();
    let mut skipped = Vec::new();
    for phone in fleet {
        let vr = memory_capped_volume(default_config.volume_resolution, phone.ram_mb);
        let reason = if let Some(q) = tuned.failure() {
            Some(format!("tuned configuration quarantined: {}", q.cause))
        } else {
            match default_by_vr.get(&vr) {
                Some(outcome) => outcome.failure().map(|q| {
                    format!(
                        "default configuration at capped volume {vr} quarantined: {}",
                        q.cause
                    )
                }),
                None => Some(format!("no run for capped volume {vr}")),
            }
        };
        if let Some(reason) = reason {
            skipped.push(FleetSkip {
                index: phone.index,
                name: phone.device.name.clone(),
                reason,
            });
            continue;
        }
        let (Some(tuned_run), Some(default_run)) = (
            tuned.run(),
            default_by_vr.get(&vr).and_then(|outcome| outcome.run()),
        ) else {
            // unreachable: the reason check above covered both failures
            continue;
        };
        let default_s = default_run
            .cost_on_sustained(&phone.device)
            .timing
            .mean_frame_time();
        // fragile OpenCL drivers run the stock configuration but fail
        // on the tuned configuration's work sizes → CPU fallback
        let tuned_device = if phone.gpu_fragile {
            let mut d = phone.device.clone();
            d.gpu_compute_usable = false;
            d
        } else {
            phone.device.clone()
        };
        let tuned_s = tuned_run
            .cost_on_sustained(&tuned_device)
            .timing
            .mean_frame_time();
        entries.push(FleetEntry {
            index: phone.index,
            name: phone.device.name.clone(),
            soc: phone.device.soc.clone(),
            tier: phone.tier,
            gpu: phone.device.has_usable_gpu(),
            ram_mb: phone.ram_mb,
            default_volume: vr,
            default_s,
            tuned_s,
            speedup: if tuned_s > 0.0 {
                default_s / tuned_s
            } else {
                0.0
            },
        });
    }
    FleetOutcome { entries, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_power::fleet::phone_fleet;
    use slam_scene::dataset::{DatasetConfig, SyntheticDataset};

    fn dataset() -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 4;
        SyntheticDataset::generate(&dc)
    }

    fn configs() -> (KFusionConfig, KFusionConfig) {
        let mut default_cfg = KFusionConfig::fast_test();
        default_cfg.volume_resolution = 192;
        let mut tuned_cfg = KFusionConfig::fast_test();
        tuned_cfg.volume_resolution = 64;
        tuned_cfg.compute_size_ratio = 2;
        tuned_cfg.pyramid_iterations = [3, 2, 2];
        (default_cfg, tuned_cfg)
    }

    #[test]
    fn memory_cap_ladder() {
        // 4 GB: full 256³ (134 MB) fits in a 600 MB budget
        assert_eq!(memory_capped_volume(256, 4096), 256);
        // 1 GB: budget 150 MB ≥ 134 MB → 256 still fits
        assert_eq!(memory_capped_volume(256, 1024), 256);
        // 768 MB: budget 115 MB → falls to 192 (57 MB)
        assert_eq!(memory_capped_volume(256, 768), 192);
        // 256 MB: budget 38 MB → falls to 128 (17 MB)
        assert_eq!(memory_capped_volume(256, 256), 128);
        // the cap never exceeds the requested resolution
        assert_eq!(memory_capped_volume(96, 4096), 96);
    }

    #[test]
    fn every_phone_gets_an_entry() {
        let (d, t) = configs();
        let fleet = phone_fleet(2018);
        let outcome = fleet_speedups(&dataset(), &d, &t, &fleet);
        assert!(outcome.skipped.is_empty(), "no faults injected, no skips");
        let entries = outcome.entries;
        assert_eq!(entries.len(), fleet.len());
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.index, i);
            assert!(e.default_s > 0.0);
            assert!(e.tuned_s > 0.0);
            assert!(e.default_volume <= 192);
        }
    }

    #[test]
    fn tuned_config_speeds_up_most_phones() {
        let (d, t) = configs();
        let fleet = phone_fleet(2018);
        let entries = fleet_speedups(&dataset(), &d, &t, &fleet).entries;
        let faster = entries.iter().filter(|e| e.speedup > 1.0).count();
        assert!(
            faster * 10 >= entries.len() * 8,
            "tuned config should win on most phones, won on {faster}/{}",
            entries.len()
        );
    }

    #[test]
    fn speedups_vary_across_the_fleet() {
        let (d, t) = configs();
        let fleet = phone_fleet(2018);
        let entries = fleet_speedups(&dataset(), &d, &t, &fleet).entries;
        let min = entries
            .iter()
            .map(|e| e.speedup)
            .fold(f64::INFINITY, f64::min);
        let max = entries.iter().map(|e| e.speedup).fold(0.0f64, f64::max);
        assert!(
            max / min > 1.5,
            "device heterogeneity should spread the speed-ups ({min:.2}..{max:.2})"
        );
    }

    #[test]
    fn fleet_study_runs_for_every_algorithm() {
        let (d, t) = configs();
        let fleet = &phone_fleet(2018)[..3];
        let ds = dataset();
        for &algo in &slam_kfusion::AlgoId::ALL {
            let outcome = fleet_speedups_algorithm(algo, &ds, &d, &t, fleet);
            assert!(outcome.skipped.is_empty(), "{algo}: no faults, no skips");
            assert_eq!(outcome.entries.len(), fleet.len(), "{algo}");
        }
    }

    #[test]
    fn low_ram_phones_run_reduced_default_volume() {
        let (d, t) = configs();
        let fleet = phone_fleet(2018);
        let entries = fleet_speedups(&dataset(), &d, &t, &fleet).entries;
        let capped = entries.iter().filter(|e| e.default_volume < 192).count();
        assert!(
            capped > 0,
            "the fleet should contain memory-constrained phones"
        );
    }
}
