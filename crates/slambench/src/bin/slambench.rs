//! The `slambench` command-line benchmark runner, mirroring the original
//! framework's CLI: pick a dataset, an algorithmic configuration and a
//! device model; get speed, accuracy and power.
//!
//! ```text
//! cargo run --release -p slambench --bin slambench -- \
//!     --dataset living_room --kt 2 --frames 50 \
//!     --volume-resolution 128 --compute-size-ratio 2 --mu 0.075 \
//!     --device xu3 --export-trajectory run.tum --export-mesh model.off
//! ```

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_metrics::ate::{ate, AteOptions};
use slam_metrics::timing::SequenceTiming;
use slam_metrics::trajectory_io::{to_tum, TimedPose};
use slam_power::devices;
use slam_power::{DeviceModel, EnergyMeter};
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::presets;
use std::process::ExitCode;

struct Args {
    algorithm: AlgoId,
    dataset: String,
    kt: usize,
    frames: usize,
    width: usize,
    height: usize,
    config: KFusionConfig,
    device: String,
    dvfs: f64,
    export_trajectory: Option<String>,
    export_mesh: Option<String>,
    export_frame: Option<String>,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            algorithm: AlgoId::default(),
            dataset: "living_room".into(),
            kt: 2,
            frames: 50,
            width: 320,
            height: 240,
            config: KFusionConfig::default(),
            device: "xu3".into(),
            dvfs: 1.0,
            export_trajectory: None,
            export_mesh: None,
            export_frame: None,
            quiet: false,
        }
    }
}

const USAGE: &str = "\
slambench — dense SLAM performance/accuracy/power benchmark

OPTIONS:
    --algorithm <kfusion|point-odometry>  SLAM algorithm (default kfusion)
    --dataset <living_room|office>   scene preset (default living_room)
    --kt <0..3>                      living-room trajectory variant (default 2)
    --frames <N>                     frames to run (default 50)
    --width <W> --height <H>         sensor resolution (default 320x240)
    --volume-resolution <N>          TSDF voxels per side (default 256)
    --volume-size <M>                TSDF cube size in metres (default 4)
    --volume-backend <dense|sparse>  TSDF storage layout (default dense;
                                     identical output, sparse allocates
                                     8^3-voxel bricks on first touch)
    --compute-size-ratio <1|2|4|8>   input downsampling (default 1)
    --mu <M>                         TSDF truncation distance (default 0.1)
    --icp-threshold <T>              ICP convergence threshold (default 1e-5)
    --pyramid <a,b,c>                ICP iterations per level (default 10,5,4)
    --tracking-rate <N>              track every N frames (default 1)
    --integration-rate <N>           integrate every N frames (default 1)
    --no-bilateral                   disable the bilateral filter
    --threads <N>                    worker threads for the kernels (0 = auto,
                                     default 0; output is identical for any N)
    --device <xu3|tk1|arndale|pi|desktop>  cost model (default xu3)
    --dvfs <0..1]                    DVFS operating point (default 1.0)
    --export-trajectory <path>       write the estimated trajectory (TUM format)
    --export-mesh <path>             write the reconstruction (OFF format)
    --export-frame <prefix>          write the first frame's RGB (.ppm) and depth (.pgm)
    --quiet                          summary only, no per-frame log
    --help                           this text
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    let next_value =
        |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--algorithm" => args.algorithm = next_value(flag, &mut it)?.parse()?,
            "--dataset" => args.dataset = next_value(flag, &mut it)?,
            "--kt" => args.kt = parse(flag, &next_value(flag, &mut it)?)?,
            "--frames" => args.frames = parse(flag, &next_value(flag, &mut it)?)?,
            "--width" => args.width = parse(flag, &next_value(flag, &mut it)?)?,
            "--height" => args.height = parse(flag, &next_value(flag, &mut it)?)?,
            "--volume-resolution" => {
                args.config.volume_resolution = parse(flag, &next_value(flag, &mut it)?)?
            }
            "--volume-size" => args.config.volume_size = parse(flag, &next_value(flag, &mut it)?)?,
            "--volume-backend" => {
                args.config.volume_backend = match next_value(flag, &mut it)?.as_str() {
                    "dense" => slam_kfusion::VolumeBackend::Dense,
                    "sparse" => slam_kfusion::VolumeBackend::Sparse,
                    other => return Err(format!("--volume-backend: unknown backend {other}")),
                }
            }
            "--compute-size-ratio" => {
                args.config.compute_size_ratio = parse(flag, &next_value(flag, &mut it)?)?
            }
            "--mu" => args.config.mu = parse(flag, &next_value(flag, &mut it)?)?,
            "--icp-threshold" => {
                args.config.icp_threshold = parse(flag, &next_value(flag, &mut it)?)?
            }
            "--pyramid" => {
                let v = next_value(flag, &mut it)?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    return Err("--pyramid needs three comma-separated counts".into());
                }
                for (i, p) in parts.iter().enumerate() {
                    args.config.pyramid_iterations[i] = parse(flag, p)?;
                }
            }
            "--tracking-rate" => {
                args.config.tracking_rate = parse(flag, &next_value(flag, &mut it)?)?
            }
            "--integration-rate" => {
                args.config.integration_rate = parse(flag, &next_value(flag, &mut it)?)?
            }
            "--no-bilateral" => args.config.bilateral_filter = false,
            "--threads" => args.config.threads = parse(flag, &next_value(flag, &mut it)?)?,
            "--device" => args.device = next_value(flag, &mut it)?,
            "--dvfs" => args.dvfs = parse(flag, &next_value(flag, &mut it)?)?,
            "--export-trajectory" => args.export_trajectory = Some(next_value(flag, &mut it)?),
            "--export-mesh" => args.export_mesh = Some(next_value(flag, &mut it)?),
            "--export-frame" => args.export_frame = Some(next_value(flag, &mut it)?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("invalid value {v:?} for {flag}"))
}

fn device_by_name(name: &str) -> Result<DeviceModel, String> {
    Ok(match name {
        "xu3" => devices::odroid_xu3(),
        "tk1" => devices::jetson_tk1(),
        "arndale" => devices::arndale(),
        "pi" => devices::raspberry_pi2(),
        "desktop" => devices::desktop_gtx(),
        other => {
            return Err(format!(
                "unknown device {other:?} (try xu3|tk1|arndale|pi|desktop)"
            ))
        }
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = args.config.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::FAILURE;
    }
    let device = match device_by_name(&args.device) {
        Ok(d) => d.at_dvfs(args.dvfs.clamp(0.05, 1.0)),
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // ---- dataset -----------------------------------------------------------
    let mut dc = match args.dataset.as_str() {
        "living_room" => DatasetConfig::living_room(),
        "office" => DatasetConfig::office(),
        other => {
            eprintln!("unknown dataset {other:?} (try living_room|office)");
            return ExitCode::FAILURE;
        }
    };
    if args.dataset == "living_room" {
        if args.kt > 3 {
            eprintln!("--kt must be 0..3");
            return ExitCode::FAILURE;
        }
        dc.trajectory = presets::living_room_kt(args.kt);
    }
    dc.frame_count = args.frames;
    let fx = 525.0 * args.width as f32 / 640.0;
    dc.camera = PinholeCamera::new(
        args.width,
        args.height,
        fx,
        fx,
        args.width as f32 / 2.0 - 0.5,
        args.height as f32 / 2.0 - 0.5,
    );
    eprintln!(
        "rendering {} frames of {}/kt{} at {}x{}...",
        dc.frame_count, args.dataset, args.kt, args.width, args.height
    );
    let dataset = SyntheticDataset::generate(&dc);
    if let Some(prefix) = &args.export_frame {
        use slam_scene::ppm::{depth_to_pgm, rgb_to_ppm};
        let frame = &dataset.frames()[0];
        let cam = dataset.camera();
        let rgb = rgb_to_ppm(&frame.rgb, cam.width, cam.height);
        let depth = depth_to_pgm(&frame.depth_m(), cam.width, cam.height, 5.0);
        if let Err(e) = std::fs::write(format!("{prefix}.ppm"), rgb)
            .and_then(|()| std::fs::write(format!("{prefix}.pgm"), depth))
        {
            eprintln!("failed to write frame images: {e}");
            return ExitCode::FAILURE;
        }
        println!("frame 0       : written to {prefix}.ppm / {prefix}.pgm");
    }

    // ---- run ----------------------------------------------------------------
    eprintln!(
        "running {} [{}] on {} ...",
        args.algorithm, args.config, device
    );
    let init = dataset.frames()[0].ground_truth;
    let mut alg = args.algorithm.create(&args.config, *dataset.camera(), init);
    let mut meter = EnergyMeter::new(device);
    let mut timing = SequenceTiming::new();
    let mut est = Vec::new();
    let mut timed = Vec::new();
    if !args.quiet {
        println!("frame  tracked  model-ms  watts   iters");
    }
    for frame in dataset.frames() {
        let r = alg.step_frame(&frame.depth_mm);
        let cost = meter.record_frame(&r.workload);
        timing.push(cost.seconds);
        est.push(r.pose);
        timed.push(TimedPose {
            timestamp: frame.timestamp,
            pose: r.pose,
        });
        if !args.quiet {
            println!(
                "{:>5}  {:^7}  {:>8.2}  {:>5.2}  {:>5}",
                frame.index,
                if r.tracked { "yes" } else { "LOST" },
                cost.seconds * 1e3,
                cost.average_watts(),
                r.icp_iterations
            );
        }
    }

    // ---- report --------------------------------------------------------------
    let gt = dataset.ground_truth();
    let accuracy = ate(&est, &gt, AteOptions::default()).expect("non-empty run");
    let run = meter.run_cost();
    println!("\n=== slambench summary ===");
    println!("algorithm     : {}", args.algorithm);
    println!("configuration : {}", args.config);
    println!("device        : {}", meter.device());
    println!("speed         : {}", timing);
    println!(
        "power         : {:.2} W avg, {:.2} J total",
        run.average_watts(),
        run.joules
    );
    println!("accuracy      : {}", accuracy);
    println!("lost frames   : {}", alg.lost_frames());

    // ---- exports --------------------------------------------------------------
    if let Some(path) = &args.export_trajectory {
        if let Err(e) = std::fs::write(path, to_tum(&timed)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trajectory    : written to {path} (TUM format)");
    }
    if let Some(path) = &args.export_mesh {
        eprintln!("extracting mesh...");
        match alg.extract_mesh(args.config.threads) {
            Some(mesh) => {
                if let Err(e) = std::fs::write(path, mesh.to_off()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "mesh          : {} triangles written to {path} (OFF format)",
                    mesh.triangle_count()
                );
            }
            None => {
                eprintln!(
                    "{} builds no meshable model; skipping {path}",
                    args.algorithm
                );
            }
        }
    }
    ExitCode::SUCCESS
}
