//! Incremental co-design exploration: algorithmic parameters *and* the
//! device's DVFS operating point explored jointly.
//!
//! The poster's headline result ("dense 3D mapping and tracking in the
//! real-time range within a 1 W power budget") comes from this co-design
//! step of Bodin et al. (PACT'16): the optimization-space is the product
//! of the algorithm space and low-level architectural choices, and the
//! exploration is *incremental* — a configuration's pipeline behaviour
//! (trajectory, workload trace) is independent of the architectural
//! point, so re-costing the same algorithmic configuration at a new DVFS
//! point is nearly free. The memoisation lives in the shared
//! [`EvalEngine`]: this module only charges the *pipeline budget* per
//! distinct algorithmic sub-vector and lets the engine deduplicate the
//! actual runs.

use crate::config_space::{decode_for, space_for};
use crate::engine::EvalEngine;
use crate::explore::{push_quarantine, MeasuredConfig, FAILED_OBJECTIVES};
use crate::fault::QuarantinedConfig;
use slam_dse::active::{ActiveLearner, ActiveLearnerOptions};
use slam_dse::space::{Domain, ParameterSpace};
use slam_kfusion::{AlgoId, KFusionConfig};
use slam_power::DeviceModel;
use slam_scene::dataset::SyntheticDataset;
use std::collections::BTreeSet;

/// The joint algorithm × architecture space: the SLAMBench algorithmic
/// parameters plus the DVFS frequency scale.
pub fn codesign_space() -> ParameterSpace {
    codesign_space_for(AlgoId::KinectFusion)
}

/// The joint space of any registered algorithm: its own parameter space
/// plus the DVFS frequency scale.
pub fn codesign_space_for(algorithm: AlgoId) -> ParameterSpace {
    let mut space = space_for(algorithm);
    space.add("dvfs_scale", Domain::real(0.2, 1.0));
    space
}

/// Splits an encoded co-design vector into its algorithmic configuration
/// and DVFS scale.
///
/// # Panics
///
/// Panics when the vector does not have `codesign_space().len()` entries.
pub fn decode_codesign(x: &[f64]) -> (KFusionConfig, f64) {
    decode_codesign_for(AlgoId::KinectFusion, x)
}

/// Splits an encoded co-design vector (in `codesign_space_for(algorithm)`
/// order) into the algorithm's configuration and the DVFS scale.
///
/// # Panics
///
/// Panics when the vector does not have
/// `codesign_space_for(algorithm).len()` entries.
pub fn decode_codesign_for(algorithm: AlgoId, x: &[f64]) -> (KFusionConfig, f64) {
    assert_eq!(
        x.len(),
        algorithm.parameter_space().len() + 1,
        "encoded co-design vector has wrong length"
    );
    let config = decode_for(algorithm, &x[..x.len() - 1]);
    let dvfs = x[x.len() - 1].clamp(0.2, 1.0);
    (config, dvfs)
}

/// One explored co-design point.
#[derive(Debug, Clone)]
pub struct CoDesignPoint {
    /// The measured configuration (runtime/ATE/power at the chosen DVFS
    /// point).
    pub measured: MeasuredConfig,
    /// The DVFS scale of this point.
    pub dvfs: f64,
}

/// Options for [`codesign_explore`].
#[derive(Debug, Clone)]
pub struct CoDesignOptions {
    /// Total *pipeline* evaluations allowed (cache hits do not count —
    /// that is the "incremental" part).
    pub pipeline_budget: usize,
    /// Total surrogate-guided evaluations (including cache hits).
    pub evaluation_budget: usize,
    /// Active-learner settings.
    pub learner: ActiveLearnerOptions,
    /// Accuracy constraint (max ATE, metres).
    pub accuracy_limit: f64,
    /// Power budget (average watts) the deployment must meet.
    pub power_budget: f64,
}

impl Default for CoDesignOptions {
    fn default() -> CoDesignOptions {
        CoDesignOptions {
            pipeline_budget: 60,
            evaluation_budget: 160,
            learner: ActiveLearnerOptions::default(),
            accuracy_limit: 0.05,
            power_budget: 1.0,
        }
    }
}

impl CoDesignOptions {
    /// A tiny budget for tests.
    pub fn fast() -> CoDesignOptions {
        CoDesignOptions {
            pipeline_budget: 8,
            evaluation_budget: 25,
            learner: ActiveLearnerOptions::fast(),
            accuracy_limit: 0.05,
            power_budget: 1.0,
        }
    }
}

/// Outcome of a co-design exploration.
#[derive(Debug, Clone)]
pub struct CoDesignOutcome {
    /// Every evaluated point.
    pub points: Vec<CoDesignPoint>,
    /// Distinct pipeline runs that were actually executed (the rest were
    /// memoised re-costings).
    pub pipeline_runs: usize,
    /// The accuracy constraint used.
    pub accuracy_limit: f64,
    /// The power budget used.
    pub power_budget: f64,
    /// Configurations the engine gave up on (each proposal of one
    /// became a dummy infeasible point instead of aborting the
    /// exploration).
    pub quarantined: Vec<QuarantinedConfig>,
}

impl CoDesignOutcome {
    /// The fastest point satisfying both the accuracy and power
    /// constraints.
    pub fn best_within_budgets(&self) -> Option<&CoDesignPoint> {
        self.points
            .iter()
            .filter(|p| {
                p.measured.max_ate_m <= self.accuracy_limit && p.measured.watts <= self.power_budget
            })
            .min_by(|a, b| a.measured.runtime_s.total_cmp(&b.measured.runtime_s))
    }
}

/// Key for the pipeline-budget accounting: the algorithmic sub-vector,
/// bitwise.
fn algo_key(x: &[f64]) -> Vec<u64> {
    x[..x.len() - 1].iter().map(|v| v.to_bits()).collect()
}

/// Runs the joint exploration on a fresh in-memory [`EvalEngine`].
/// Deterministic in the learner seed.
pub fn codesign_explore(
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &CoDesignOptions,
) -> CoDesignOutcome {
    codesign_explore_with_engine(&EvalEngine::new(), dataset, device, options)
}

/// [`codesign_explore`] for any registered algorithm, on a fresh
/// in-memory [`EvalEngine`] bound to it.
pub fn codesign_explore_algorithm(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &CoDesignOptions,
) -> CoDesignOutcome {
    codesign_explore_with_engine(
        &EvalEngine::new().with_algorithm(algorithm),
        dataset,
        device,
        options,
    )
}

/// [`codesign_explore`] on a caller-provided [`EvalEngine`]. Each
/// proposal batch is evaluated concurrently through the engine; the
/// budget accounting and outcome are identical to serial evaluation.
pub fn codesign_explore_with_engine(
    eval: &EvalEngine,
    dataset: &SyntheticDataset,
    device: &DeviceModel,
    options: &CoDesignOptions,
) -> CoDesignOutcome {
    let algorithm = eval.algorithm();
    let space = codesign_space_for(algorithm);
    let mut learner = ActiveLearner::new(space, 3, options.learner);
    // BTreeSet, not HashSet: keyed by float bit patterns, and a
    // nondeterministic iteration order must never leak into outputs
    let mut charged: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut points: Vec<CoDesignPoint> = Vec::new();
    let mut quarantined: Vec<QuarantinedConfig> = Vec::new();
    let pipeline_budget = options.pipeline_budget;
    learner.run_batched(options.evaluation_budget, |xs| {
        // replicate the serial budget accounting in batch order: a point
        // whose algorithmic sub-vector is new once the budget is spent
        // gets an infeasible (large but surrogate-safe) dummy and no
        // pipeline run; re-costings of charged sub-vectors stay free
        let mut decided: Vec<Option<(KFusionConfig, f64)>> = Vec::with_capacity(xs.len());
        for x in xs {
            let key = algo_key(x);
            if !charged.contains(&key) {
                if charged.len() >= pipeline_budget {
                    decided.push(None);
                    continue;
                }
                charged.insert(key);
            }
            decided.push(Some(decode_codesign_for(algorithm, x)));
        }
        let configs: Vec<KFusionConfig> = decided
            .iter()
            .flatten()
            .map(|(config, _)| config.clone())
            .collect();
        let outcomes = match eval.try_evaluate_batch_outcomes(dataset, &configs) {
            Ok(outcomes) => outcomes,
            // xtask-allow: panic-path — reason: empty datasets / invalid configs violate codesign_explore's documented precondition; per-slot failures never reach this arm
            Err(e) => panic!("co-design evaluation failed: {e}"),
        };
        let mut outcome_iter = outcomes.iter();
        decided
            .into_iter()
            .zip(xs)
            .map(|(d, x)| {
                let Some((config, dvfs)) = d else {
                    return FAILED_OBJECTIVES.to_vec();
                };
                // xtask-allow: panic-path — reason: try_evaluate_batch_outcomes returns one outcome per decided config by construction
                let outcome = outcome_iter.next().expect("one outcome per decided config");
                if let Some(q) = outcome.failure() {
                    push_quarantine(&mut quarantined, q.clone());
                    return FAILED_OBJECTIVES.to_vec();
                }
                let degraded = !outcome.is_done();
                let Some(run) = outcome.run() else {
                    return FAILED_OBJECTIVES.to_vec();
                };
                let report = run.cost_on(&device.at_dvfs(dvfs));
                let runtime_s = report.timing.mean_frame_time();
                let max_ate_m = if degraded || run.lost_frames > run.frames.len() / 2 {
                    f64::from(config.volume_size)
                } else {
                    run.ate.max
                };
                let watts = report.run_cost.average_watts();
                let measured = MeasuredConfig {
                    x: x.to_vec(),
                    config,
                    runtime_s,
                    max_ate_m,
                    watts,
                    fps: if runtime_s > 0.0 {
                        1.0 / runtime_s
                    } else {
                        0.0
                    },
                };
                let obj = vec![runtime_s, max_ate_m, watts];
                points.push(CoDesignPoint { measured, dvfs });
                obj
            })
            .collect()
    });
    CoDesignOutcome {
        pipeline_runs: charged.len(),
        points,
        accuracy_limit: options.accuracy_limit,
        power_budget: options.power_budget,
        quarantined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_space::slambench_space;
    use slam_power::devices::odroid_xu3;
    use slam_scene::dataset::DatasetConfig;

    fn dataset() -> SyntheticDataset {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 4;
        SyntheticDataset::generate(&dc)
    }

    #[test]
    fn codesign_space_extends_algorithm_space() {
        let space = codesign_space();
        assert_eq!(space.len(), slambench_space().len() + 1);
        assert!(space.index_of("dvfs_scale").is_some());
        for &algo in &AlgoId::ALL {
            let joint = codesign_space_for(algo);
            assert_eq!(joint.len(), algo.parameter_space().len() + 1);
            assert!(joint.index_of("dvfs_scale").is_some());
        }
    }

    #[test]
    fn decode_splits_config_and_dvfs() {
        let space = codesign_space();
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let x = space.sample(&mut rng);
        let (config, dvfs) = decode_codesign(&x);
        config.validate().unwrap();
        assert!((0.2..=1.0).contains(&dvfs));
    }

    #[test]
    fn exploration_respects_pipeline_budget() {
        let outcome = codesign_explore(&dataset(), &odroid_xu3(), &CoDesignOptions::fast());
        assert!(outcome.pipeline_runs <= 8);
        assert!(!outcome.points.is_empty());
        // more evaluations than pipeline runs ⇒ memoisation worked
        // (not guaranteed on minuscule budgets, so only sanity-check)
        assert!(outcome.points.len() >= outcome.pipeline_runs.min(outcome.points.len()));
    }

    #[test]
    fn lower_dvfs_same_config_uses_less_power() {
        let dataset = dataset();
        let device = odroid_xu3();
        let space = codesign_space();
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut x = space.sample(&mut rng);
        let n = x.len();
        x[n - 1] = 1.0;
        let run = crate::engine::evaluate_once(&dataset, &decode_codesign(&x).0);
        let full = run.cost_on(&device.at_dvfs(1.0));
        let slow = run.cost_on(&device.at_dvfs(0.4));
        assert!(slow.run_cost.average_watts() < full.run_cost.average_watts());
        assert!(slow.run_cost.seconds > full.run_cost.seconds);
    }

    #[test]
    fn codesign_on_warm_engine_is_bitwise_identical() {
        let dataset = dataset();
        let device = odroid_xu3();
        let opts = CoDesignOptions::fast();
        let cold = codesign_explore(&dataset, &device, &opts);
        let eval = EvalEngine::new();
        let warm_first = codesign_explore_with_engine(&eval, &dataset, &device, &opts);
        let warm_second = codesign_explore_with_engine(&eval, &dataset, &device, &opts);
        let sig = |o: &CoDesignOutcome| -> Vec<(u64, u64, u64, u64)> {
            o.points
                .iter()
                .map(|p| {
                    (
                        p.measured.runtime_s.to_bits(),
                        p.measured.max_ate_m.to_bits(),
                        p.measured.watts.to_bits(),
                        p.dvfs.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(cold.pipeline_runs, warm_first.pipeline_runs);
        assert_eq!(cold.pipeline_runs, warm_second.pipeline_runs);
        assert_eq!(sig(&cold), sig(&warm_first));
        assert_eq!(sig(&cold), sig(&warm_second));
    }

    #[test]
    fn best_within_budgets_respects_both_constraints() {
        let outcome = codesign_explore(&dataset(), &odroid_xu3(), &CoDesignOptions::fast());
        if let Some(best) = outcome.best_within_budgets() {
            assert!(best.measured.max_ate_m <= outcome.accuracy_limit);
            assert!(best.measured.watts <= outcome.power_budget);
        }
    }
}
