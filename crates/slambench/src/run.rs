//! Running the pipeline over a dataset and costing the result on devices.

use crate::fault::Deadline;
use serde::{Deserialize, Serialize};
use slam_kfusion::{AlgoId, FrameWorkload, KFusionConfig, Kernel};
use slam_math::Se3;
use slam_metrics::ate::{ate, AteOptions, AteResult};
use slam_metrics::timing::SequenceTiming;
use slam_power::{DeviceModel, RunCost};
use slam_scene::dataset::SyntheticDataset;
use slam_trace::{Clock, Tracer};

/// Per-frame outcome of a pipeline run (device independent).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Frame index.
    pub index: usize,
    /// Estimated pose after the frame.
    pub pose: Se3,
    /// Ground-truth pose of the frame.
    pub ground_truth: Se3,
    /// Whether tracking succeeded.
    pub tracked: bool,
    /// Measured per-kernel workload.
    pub workload: FrameWorkload,
    /// Host wall-clock seconds for this frame.
    pub wall_time: f64,
}

/// The device-independent result of running one configuration over one
/// dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineRun {
    /// The algorithm that ran (defaults to KinectFusion so pre-existing
    /// serialised runs deserialise unchanged).
    #[serde(default)]
    pub algorithm: AlgoId,
    /// The configuration that ran.
    pub config: KFusionConfig,
    /// Name of the dataset.
    pub dataset: String,
    /// Per-frame records.
    pub frames: Vec<FrameRecord>,
    /// Trajectory accuracy vs. ground truth (SLAMBench style, no
    /// alignment: the run is seeded with the ground-truth initial pose).
    pub ate: AteResult,
    /// Number of tracking failures.
    pub lost_frames: usize,
}

impl PipelineRun {
    /// Total workload summed over all frames.
    pub fn total_workload(&self) -> FrameWorkload {
        let mut total = FrameWorkload::new();
        for f in &self.frames {
            total.merge(&f.workload);
        }
        total
    }

    /// Replays the run's workload trace on a device model.
    pub fn cost_on(&self, device: &DeviceModel) -> DeviceRunReport {
        self.cost_on_inner(device, false)
    }

    /// Like [`PipelineRun::cost_on`] but honouring the device's sustained
    /// thermal budget (phones throttle under continuous load).
    pub fn cost_on_sustained(&self, device: &DeviceModel) -> DeviceRunReport {
        self.cost_on_inner(device, true)
    }

    fn cost_on_inner(&self, device: &DeviceModel, sustained: bool) -> DeviceRunReport {
        let mut cost = RunCost::default();
        let mut timing = SequenceTiming::new();
        let mut per_kernel: Vec<(Kernel, f64)> = Kernel::ALL.iter().map(|&k| (k, 0.0)).collect();
        for f in &self.frames {
            let fc = if sustained {
                device.execute_frame_sustained(&f.workload)
            } else {
                device.execute_frame(&f.workload)
            };
            cost.frames += 1;
            cost.seconds += fc.seconds;
            cost.joules += fc.joules;
            timing.push(fc.seconds);
            for kc in &fc.kernels {
                if let Some(e) = per_kernel.iter_mut().find(|(k, _)| *k == kc.kernel) {
                    e.1 += kc.seconds;
                }
            }
        }
        DeviceRunReport {
            device: device.name.clone(),
            run_cost: cost,
            timing,
            kernel_seconds: per_kernel,
        }
    }

    /// Host wall-clock total, seconds (useful for criterion-style
    /// comparisons, not for the paper's figures).
    pub fn wall_seconds(&self) -> f64 {
        self.frames.iter().map(|f| f.wall_time).sum()
    }
}

/// A pipeline run costed on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceRunReport {
    /// Device name.
    pub device: String,
    /// Aggregate time/energy.
    pub run_cost: RunCost,
    /// Per-frame modelled times.
    pub timing: SequenceTiming,
    /// Modelled seconds per kernel over the whole run, in
    /// [`Kernel::ALL`] order.
    pub kernel_seconds: Vec<(Kernel, f64)>,
}

impl DeviceRunReport {
    /// The kernel consuming the most modelled time.
    pub fn dominant_kernel(&self) -> Kernel {
        self.kernel_seconds
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| *k)
            .unwrap_or(Kernel::Integrate)
    }
}

/// Runs one algorithm/configuration over a dataset, seeded with the
/// dataset's ground-truth initial pose (the SLAMBench evaluation
/// protocol).
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn run_algorithm(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
) -> PipelineRun {
    run_algorithm_inner(algorithm, dataset, config, Tracer::off())
}

/// Like [`run_algorithm`] but overriding the kernel thread count (`0` =
/// all available). Estimated poses, workloads and ATE are identical for
/// any value; only host wall time changes.
pub fn run_algorithm_with_threads(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    threads: usize,
) -> PipelineRun {
    let mut config = config.clone();
    config.threads = threads;
    run_algorithm_inner(algorithm, dataset, &config, Tracer::off())
}

/// Like [`run_algorithm`], recording per-frame/kernel/band spans and the
/// pipeline counters into `tracer`. Tracing never changes the run: a
/// traced run is bit-identical to an untraced one.
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn run_algorithm_traced(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> PipelineRun {
    run_algorithm_inner(algorithm, dataset, config, tracer)
}

/// Runs the KinectFusion pipeline over a dataset — shorthand for
/// [`run_algorithm`] with [`AlgoId::KinectFusion`].
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn run_pipeline(dataset: &SyntheticDataset, config: &KFusionConfig) -> PipelineRun {
    run_algorithm(AlgoId::KinectFusion, dataset, config)
}

/// Like [`run_pipeline`] but overriding the kernel thread count (`0` =
/// all available). Estimated poses, workloads and ATE are identical for
/// any value; only host wall time changes.
pub fn run_pipeline_with_threads(
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    threads: usize,
) -> PipelineRun {
    run_algorithm_with_threads(AlgoId::KinectFusion, dataset, config, threads)
}

/// Like [`run_pipeline`], recording per-frame/kernel/band spans and the
/// pipeline counters into `tracer`. Tracing never changes the run: a
/// traced run is bit-identical to an untraced one.
///
/// # Panics
///
/// Panics when the dataset is empty or the configuration is invalid.
pub fn run_pipeline_traced(
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> PipelineRun {
    run_algorithm_traced(AlgoId::KinectFusion, dataset, config, tracer)
}

fn run_algorithm_inner(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> PipelineRun {
    run_algorithm_guarded(
        algorithm,
        dataset,
        config,
        &GuardOptions {
            tracer,
            ..GuardOptions::default()
        },
    )
    .run
}

/// How a guarded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Every frame of the dataset was processed.
    Completed,
    /// The per-run [`Deadline`] fired: the run holds only the completed
    /// prefix of the dataset, and its ATE is computed over that prefix.
    TimedOut {
        /// Frames fully processed before the budget ran out.
        frames_completed: usize,
    },
}

impl RunStatus {
    /// Whether the run processed the whole dataset.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// A [`PipelineRun`] plus how it ended. Produced by
/// [`run_pipeline_guarded`]; orchestrators treat a timed-out run as a
/// degraded (lost-tracking-grade) measurement rather than an error.
#[derive(Debug, Clone)]
pub struct GuardedRun {
    /// The (possibly partial) run.
    pub run: PipelineRun,
    /// Whether the deadline cut the run short.
    pub status: RunStatus,
}

/// Options for [`run_pipeline_guarded`].
///
/// The default is the zero-overhead path: no deadline, no clock reads,
/// no tracing — bit-identical to the unguarded runner.
pub struct GuardOptions<'a> {
    /// Span/counter sink (disabled by default).
    pub tracer: &'a Tracer,
    /// Time source for the wall budget. Required when
    /// [`Deadline::max_wall_ns`] is set; never read otherwise, so the
    /// no-wall-deadline path stays deterministic and free.
    pub clock: Option<&'a dyn Clock>,
    /// Per-run budget.
    pub deadline: Deadline,
    /// Injected extra nanoseconds charged against the wall budget per
    /// processed frame — how the fault plan simulates a slow run on a
    /// deterministic clock.
    pub slow_frame_penalty_ns: u64,
}

impl Default for GuardOptions<'static> {
    fn default() -> GuardOptions<'static> {
        GuardOptions {
            tracer: Tracer::off(),
            clock: None,
            deadline: Deadline::none(),
            slow_frame_penalty_ns: 0,
        }
    }
}

/// Runs the KinectFusion pipeline under a per-run [`Deadline`] —
/// shorthand for [`run_algorithm_guarded`] with
/// [`AlgoId::KinectFusion`].
///
/// # Panics
///
/// Panics when the dataset is empty or (debug builds) a wall budget is
/// configured without a clock.
pub fn run_pipeline_guarded(
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    opts: &GuardOptions<'_>,
) -> GuardedRun {
    run_algorithm_guarded(AlgoId::KinectFusion, dataset, config, opts)
}

/// Runs one algorithm/configuration under a per-run [`Deadline`]: the
/// frame budget bounds how many frames are processed, the wall budget
/// bounds elapsed nanoseconds on the injected clock (plus any injected
/// slow-run penalty). At least one frame is always processed, so a
/// timed-out run still carries a usable (if degraded) trajectory prefix
/// and its ATE.
///
/// With `Deadline::none()` this is exactly [`run_algorithm`].
///
/// This is the single place where the workspace steps a
/// [`slam_kfusion::SlamAlgorithm`] over a dataset — every orchestrator,
/// the [`crate::engine::EvalEngine`], and the bench bins funnel through
/// it, so new algorithms plug in everywhere at once.
///
/// # Panics
///
/// Panics when the dataset is empty or (debug builds) a wall budget is
/// configured without a clock.
pub fn run_algorithm_guarded(
    algorithm: AlgoId,
    dataset: &SyntheticDataset,
    config: &KFusionConfig,
    opts: &GuardOptions<'_>,
) -> GuardedRun {
    assert!(!dataset.is_empty(), "cannot run on an empty dataset");
    debug_assert!(
        opts.deadline.max_wall_ns.is_none() || opts.clock.is_some(),
        "a wall deadline needs a clock"
    );
    let frame_cap = opts.deadline.max_frames.unwrap_or(usize::MAX).max(1);
    let wall = match (opts.deadline.max_wall_ns, opts.clock) {
        (Some(budget_ns), Some(clock)) => Some((budget_ns, clock, clock.now_ns())),
        _ => None,
    };
    let init = dataset.frames()[0].ground_truth;
    let mut alg = algorithm.create(config, *dataset.camera(), init);
    let mut frames = Vec::with_capacity(dataset.len());
    let mut penalty_ns: u64 = 0;
    let mut status = RunStatus::Completed;
    for frame in dataset.frames() {
        // budget checks run only once a frame has been processed: a
        // guarded run always makes progress, however tight the deadline
        if !frames.is_empty() {
            if frames.len() >= frame_cap {
                status = RunStatus::TimedOut {
                    frames_completed: frames.len(),
                };
                break;
            }
            if let Some((budget_ns, clock, start_ns)) = wall {
                let elapsed = clock
                    .now_ns()
                    .saturating_sub(start_ns)
                    .saturating_add(penalty_ns);
                if elapsed >= budget_ns {
                    status = RunStatus::TimedOut {
                        frames_completed: frames.len(),
                    };
                    break;
                }
            }
        }
        let r = alg.step_frame_traced(&frame.depth_mm, opts.tracer);
        penalty_ns = penalty_ns.saturating_add(opts.slow_frame_penalty_ns);
        frames.push(FrameRecord {
            index: frame.index,
            pose: r.pose,
            ground_truth: frame.ground_truth,
            tracked: r.tracked,
            workload: r.workload,
            wall_time: r.wall_time,
        });
    }
    let est: Vec<Se3> = frames.iter().map(|f| f.pose).collect();
    let gt: Vec<Se3> = frames.iter().map(|f| f.ground_truth).collect();
    // xtask-allow: panic-path — reason: the non-empty assert above plus the at-least-one-frame guarantee give equal-length, non-empty trajectories
    let ate = ate(&est, &gt, AteOptions::default()).expect("non-empty trajectories");
    GuardedRun {
        run: PipelineRun {
            algorithm,
            config: config.clone(),
            dataset: dataset.config().name.clone(),
            frames,
            ate,
            lost_frames: alg.lost_frames(),
        },
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_power::devices::{odroid_xu3, raspberry_pi2};
    use slam_scene::dataset::DatasetConfig;

    fn tiny_run() -> PipelineRun {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 6;
        let dataset = SyntheticDataset::generate(&dc);
        run_pipeline(&dataset, &KFusionConfig::fast_test())
    }

    #[test]
    fn run_produces_complete_records() {
        let run = tiny_run();
        assert_eq!(run.frames.len(), 6);
        assert_eq!(run.ate.errors.len(), 6);
        assert!(
            run.ate.max < 0.2,
            "tiny scene should track, ATE {}",
            run.ate.max
        );
        assert_eq!(run.dataset, "tiny_test");
        assert!(run.wall_seconds() > 0.0);
    }

    #[test]
    fn total_workload_sums_frames() {
        let run = tiny_run();
        let total = run.total_workload().total();
        let manual: f64 = run.frames.iter().map(|f| f.workload.total().ops).sum();
        assert!((total.ops - manual).abs() < 1e-6);
        assert!(total.ops > 0.0);
    }

    #[test]
    fn cost_on_devices_orders_sensibly() {
        let run = tiny_run();
        let xu3 = run.cost_on(&odroid_xu3());
        let pi = run.cost_on(&raspberry_pi2());
        assert_eq!(xu3.run_cost.frames, 6);
        assert!(pi.run_cost.seconds > xu3.run_cost.seconds);
        assert!(xu3.run_cost.average_watts() > 0.0);
        assert_eq!(xu3.timing.len(), 6);
    }

    #[test]
    fn dominant_kernel_is_a_heavy_one() {
        let run = tiny_run();
        let report = run.cost_on(&odroid_xu3());
        let k = report.dominant_kernel();
        assert!(
            matches!(
                k,
                Kernel::Integrate | Kernel::Raycast | Kernel::Track | Kernel::BilateralFilter
            ),
            "unexpected dominant kernel {k}"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 0;
        let dataset = SyntheticDataset::generate(&dc);
        let _ = run_pipeline(&dataset, &KFusionConfig::fast_test());
    }

    #[test]
    fn every_algorithm_runs_through_the_generic_driver() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 5;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        for &algo in &AlgoId::ALL {
            let run = run_algorithm(algo, &dataset, &config);
            assert_eq!(run.algorithm, algo);
            assert_eq!(run.frames.len(), 5, "{algo} truncated the dataset");
            assert!(
                run.ate.max < 0.5,
                "{algo} diverged on the tiny scene, ATE {}",
                run.ate.max
            );
        }
    }

    #[test]
    fn run_pipeline_is_the_kfusion_shorthand() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 4;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        let via_shorthand = run_pipeline(&dataset, &config);
        let via_generic = run_algorithm(AlgoId::KinectFusion, &dataset, &config);
        assert_eq!(via_shorthand.algorithm, AlgoId::KinectFusion);
        assert_eq!(via_shorthand.ate.errors, via_generic.ate.errors);
    }

    #[test]
    fn guarded_default_matches_unguarded() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 5;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        let plain = run_pipeline(&dataset, &config);
        let guarded = run_pipeline_guarded(&dataset, &config, &GuardOptions::default());
        assert_eq!(guarded.status, RunStatus::Completed);
        assert_eq!(guarded.run.frames.len(), plain.frames.len());
        assert_eq!(guarded.run.ate.errors, plain.ate.errors);
        for (a, b) in guarded.run.frames.iter().zip(&plain.frames) {
            assert_eq!(a.pose, b.pose);
        }
    }

    #[test]
    fn frame_deadline_truncates_but_always_progresses() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 6;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        let cut = run_pipeline_guarded(
            &dataset,
            &config,
            &GuardOptions {
                deadline: Deadline::frames(3),
                ..GuardOptions::default()
            },
        );
        assert_eq!(
            cut.status,
            RunStatus::TimedOut {
                frames_completed: 3
            }
        );
        assert_eq!(cut.run.frames.len(), 3);
        assert_eq!(cut.run.ate.errors.len(), 3);
        // a zero-frame budget still processes one frame
        let one = run_pipeline_guarded(
            &dataset,
            &config,
            &GuardOptions {
                deadline: Deadline::frames(0),
                ..GuardOptions::default()
            },
        );
        assert_eq!(one.run.frames.len(), 1);
    }

    #[test]
    fn wall_deadline_fires_deterministically_on_mock_clock() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 8;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        // one clock read at start + one per budget check, 100ns each:
        // the check before frame k sees elapsed = k * 100
        let run_with_budget = |budget_ns: u64| {
            let clock = slam_trace::MockClock::new(100);
            run_pipeline_guarded(
                &dataset,
                &config,
                &GuardOptions {
                    clock: Some(&clock),
                    deadline: Deadline::wall_ns(budget_ns),
                    ..GuardOptions::default()
                },
            )
        };
        let cut = run_with_budget(300);
        assert_eq!(
            cut.status,
            RunStatus::TimedOut {
                frames_completed: 3
            }
        );
        assert_eq!(cut.run.frames.len(), 3);
        // same budget, fresh clock: bit-identical truncation point
        let again = run_with_budget(300);
        assert_eq!(again.status, cut.status);
        assert_eq!(again.run.ate.errors, cut.run.ate.errors);
        // a generous budget completes
        let full = run_with_budget(1_000_000);
        assert_eq!(full.status, RunStatus::Completed);
        assert_eq!(full.run.frames.len(), 8);
    }

    #[test]
    fn slow_penalty_charges_against_wall_budget() {
        let mut dc = DatasetConfig::tiny_test();
        dc.frame_count = 8;
        let dataset = SyntheticDataset::generate(&dc);
        let config = KFusionConfig::fast_test();
        let clock = slam_trace::MockClock::new(100);
        // base elapsed before frame k is k*100; the penalty adds k*900,
        // so a 2000ns budget now cuts at frame 2 instead of frame 20
        let slowed = run_pipeline_guarded(
            &dataset,
            &config,
            &GuardOptions {
                clock: Some(&clock),
                deadline: Deadline::wall_ns(2_000),
                slow_frame_penalty_ns: 900,
                ..GuardOptions::default()
            },
        );
        assert_eq!(
            slowed.status,
            RunStatus::TimedOut {
                frames_completed: 2
            }
        );
    }
}
