//! Black-box tests of the `slambench` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_slambench"))
        .args(args)
        .output()
        .expect("binary must launch")
}

#[test]
fn help_prints_usage() {
    let out = run(&["--help"]);
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--volume-resolution"));
    assert!(text.contains("--device"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = run(&["--frobnicate"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown option"));
}

#[test]
fn invalid_config_fails_cleanly() {
    let out = run(&["--compute-size-ratio", "3"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("invalid configuration"));
}

#[test]
fn unknown_device_fails_cleanly() {
    let out = run(&["--device", "toaster"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown device"));
}

#[test]
fn tiny_run_produces_summary_and_exports() {
    let dir = std::env::temp_dir().join("slambench_cli_test");
    let _ = std::fs::create_dir_all(&dir);
    let tum = dir.join("run.tum");
    let off = dir.join("model.off");
    let frame = dir.join("frame0");
    let out = run(&[
        "--frames",
        "6",
        "--width",
        "160",
        "--height",
        "120",
        "--volume-resolution",
        "64",
        "--quiet",
        "--export-trajectory",
        tum.to_str().unwrap(),
        "--export-mesh",
        off.to_str().unwrap(),
        "--export-frame",
        frame.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slambench summary"));
    assert!(text.contains("accuracy"));
    // exports exist and have plausible headers
    let tum_text = std::fs::read_to_string(&tum).unwrap();
    assert!(tum_text.lines().count() >= 7);
    let off_text = std::fs::read_to_string(&off).unwrap();
    assert!(off_text.starts_with("OFF"));
    assert!(std::fs::read(dir.join("frame0.ppm"))
        .unwrap()
        .starts_with(b"P6"));
    assert!(std::fs::read(dir.join("frame0.pgm"))
        .unwrap()
        .starts_with(b"P5"));
    let _ = std::fs::remove_dir_all(&dir);
}
