//! A catalogue of named device models.
//!
//! Numbers are *sustained* throughputs on irregular SLAM kernels, not
//! datasheet peaks — calibrated so the default KinectFusion configuration
//! lands in the few-FPS range on the ODROID XU3 (as reported by
//! SLAMBench) and the overall power envelope matches the boards' measured
//! budgets. Absolute accuracy is not the goal (see `DESIGN.md`); relative
//! behaviour across configurations and devices is.

use crate::model::{ComputeUnit, DeviceModel, UnitKind, UNIFORM_EFFICIENCY};

fn cpu_big(name: &str, gops: f64, bw: f64, nj: f64) -> ComputeUnit {
    ComputeUnit {
        name: name.into(),
        kind: UnitKind::CpuBig,
        gops,
        bandwidth_gbps: bw,
        nj_per_op: nj,
        dispatch_overhead_s: 2e-5,
        class_efficiency: UNIFORM_EFFICIENCY,
    }
}

fn cpu_little(name: &str, gops: f64, bw: f64, nj: f64) -> ComputeUnit {
    ComputeUnit {
        name: name.into(),
        kind: UnitKind::CpuLittle,
        gops,
        bandwidth_gbps: bw,
        nj_per_op: nj,
        dispatch_overhead_s: 2e-5,
        class_efficiency: UNIFORM_EFFICIENCY,
    }
}

fn gpu(name: &str, gops: f64, bw: f64, nj: f64, overhead: f64) -> ComputeUnit {
    ComputeUnit {
        name: name.into(),
        kind: UnitKind::Gpu,
        gops,
        bandwidth_gbps: bw,
        nj_per_op: nj,
        dispatch_overhead_s: overhead,
        class_efficiency: UNIFORM_EFFICIENCY,
    }
}

/// The ODROID XU3 (Samsung Exynos 5422: 4×A15 + 4×A7 big.LITTLE and a
/// Mali-T628 MP6 GPU) — the paper's headline embedded platform.
pub fn odroid_xu3() -> DeviceModel {
    DeviceModel {
        name: "ODROID XU3".into(),
        soc: "Exynos 5422".into(),
        units: vec![
            cpu_big("Cortex-A15 x4", 1.6, 6.0, 0.95),
            cpu_little("Cortex-A7 x4", 0.45, 4.0, 0.35),
            gpu("Mali-T628 MP6", 3.4, 8.5, 0.85, 7e-4),
        ],
        nj_per_byte: 0.10,
        static_watts: 0.25,
        gpu_compute_usable: true,
        dvfs_scale: 1.0,
        thermal_watts: None,
        large_kernel_bytes: f64::MAX,
        thrash_factor: 1.0,
    }
}

/// The NVIDIA Jetson TK1 (Tegra K1: 4×A15 + Kepler GK20A) — the other
/// embedded board SLAMBench commonly reports.
pub fn jetson_tk1() -> DeviceModel {
    DeviceModel {
        name: "Jetson TK1".into(),
        soc: "Tegra K1".into(),
        units: vec![
            cpu_big("Cortex-A15 x4", 1.8, 7.0, 0.90),
            gpu("Kepler GK20A", 6.5, 12.0, 0.65, 3e-4),
        ],
        nj_per_byte: 0.09,
        static_watts: 0.6,
        gpu_compute_usable: true,
        dvfs_scale: 1.0,
        thermal_watts: None,
        large_kernel_bytes: f64::MAX,
        thrash_factor: 1.0,
    }
}

/// The Arndale board (Exynos 5250: 2×A15 + Mali-T604).
pub fn arndale() -> DeviceModel {
    DeviceModel {
        name: "Arndale".into(),
        soc: "Exynos 5250".into(),
        units: vec![
            cpu_big("Cortex-A15 x2", 0.9, 5.0, 0.95),
            gpu("Mali-T604 MP4", 2.0, 6.5, 0.9, 8e-4),
        ],
        nj_per_byte: 0.11,
        static_watts: 0.3,
        gpu_compute_usable: true,
        dvfs_scale: 1.0,
        thermal_watts: None,
        large_kernel_bytes: f64::MAX,
        thrash_factor: 1.0,
    }
}

/// A Raspberry Pi 2 (BCM2836, 4×A7, no usable compute GPU) — the
/// CPU-only low end.
pub fn raspberry_pi2() -> DeviceModel {
    DeviceModel {
        name: "Raspberry Pi 2".into(),
        soc: "BCM2836".into(),
        units: vec![cpu_big("Cortex-A7 x4", 0.35, 1.8, 0.8)],
        nj_per_byte: 0.14,
        static_watts: 0.9,
        gpu_compute_usable: false,
        dvfs_scale: 1.0,
        thermal_watts: None,
        large_kernel_bytes: f64::MAX,
        thrash_factor: 1.0,
    }
}

/// A desktop workstation with a discrete GPU (the "state of the art"
/// high-power reference point in SLAMBench tables).
pub fn desktop_gtx() -> DeviceModel {
    DeviceModel {
        name: "Desktop + GTX 870M".into(),
        soc: "i7-4770K / GTX 870M".into(),
        units: vec![
            cpu_big("i7-4770K x4", 12.0, 22.0, 1.1),
            gpu("GTX 870M", 95.0, 120.0, 0.55, 3.0e-5),
        ],
        nj_per_byte: 0.18,
        static_watts: 35.0,
        gpu_compute_usable: true,
        dvfs_scale: 1.0,
        thermal_watts: None,
        large_kernel_bytes: f64::MAX,
        thrash_factor: 1.0,
    }
}

/// Every catalogue device, for table-style reports.
pub fn all_devices() -> Vec<DeviceModel> {
    vec![
        odroid_xu3(),
        jetson_tk1(),
        arndale(),
        raspberry_pi2(),
        desktop_gtx(),
    ]
}

/// Looks a catalogue device up by its [`DeviceModel::name`],
/// case-insensitively — the string surface used by CLI flags and the
/// `slam-serve` wire protocol, where the caller names a device rather
/// than linking against a constructor.
pub fn by_name(name: &str) -> Option<DeviceModel> {
    all_devices()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_kfusion::{FrameWorkload, Kernel, Workload};

    /// A workload vector roughly matching the *default* KinectFusion
    /// configuration at 640×480 with a 256³ volume (per-frame).
    pub fn default_config_frame() -> FrameWorkload {
        let mut f = FrameWorkload::new();
        f.record(Kernel::Mm2Meters, Workload::new(3.1e5, 1.8e6));
        f.record(Kernel::BilateralFilter, Workload::new(4.6e7, 3.2e7));
        f.record(Kernel::HalfSample, Workload::new(8e5, 2e6));
        f.record(Kernel::Depth2Vertex, Workload::new(2.4e6, 6.4e6));
        f.record(Kernel::Vertex2Normal, Workload::new(6e6, 2.4e7));
        f.record(Kernel::Track, Workload::new(1.6e8, 2.0e8));
        f.record(Kernel::Solve, Workload::new(1e4, 2e4));
        f.record(Kernel::Integrate, Workload::new(2.5e8, 1.7e8));
        f.record(Kernel::Raycast, Workload::new(2.8e8, 9e7));
        f
    }

    #[test]
    fn xu3_default_config_is_a_few_fps() {
        let cost = odroid_xu3().execute_frame(&default_config_frame());
        let fps = 1.0 / cost.seconds;
        assert!(
            (1.0..=12.0).contains(&fps),
            "XU3 default config should run at a few FPS, got {fps:.1}"
        );
    }

    #[test]
    fn xu3_default_power_in_board_envelope() {
        let cost = odroid_xu3().execute_frame(&default_config_frame());
        let watts = cost.average_watts();
        assert!(
            (1.0..=8.0).contains(&watts),
            "XU3 under load should draw a couple of watts, got {watts:.2}"
        );
    }

    #[test]
    fn desktop_outruns_every_board() {
        let frame = default_config_frame();
        let desktop = desktop_gtx().execute_frame(&frame).seconds;
        for dev in [odroid_xu3(), jetson_tk1(), arndale(), raspberry_pi2()] {
            assert!(
                desktop < dev.execute_frame(&frame).seconds,
                "desktop should beat {}",
                dev.name
            );
        }
    }

    #[test]
    fn desktop_uses_more_power_than_boards() {
        let frame = default_config_frame();
        let desktop = desktop_gtx().execute_frame(&frame).average_watts();
        let xu3 = odroid_xu3().execute_frame(&frame).average_watts();
        assert!(desktop > 4.0 * xu3);
    }

    #[test]
    fn pi_is_the_slowest() {
        let frame = default_config_frame();
        let pi = raspberry_pi2().execute_frame(&frame).seconds;
        for dev in [odroid_xu3(), jetson_tk1(), arndale(), desktop_gtx()] {
            assert!(pi > dev.execute_frame(&frame).seconds);
        }
    }

    #[test]
    fn catalogue_is_complete_and_distinct() {
        let devices = all_devices();
        assert_eq!(devices.len(), 5);
        let mut names: Vec<_> = devices.iter().map(|d| d.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn by_name_finds_every_catalogue_device() {
        for dev in all_devices() {
            let found = by_name(&dev.name);
            assert!(found.is_some_and(|f| f.name == dev.name));
            // lookup is case-insensitive: wire protocols pass strings
            let upper = dev.name.to_uppercase();
            assert!(by_name(&upper).is_some_and(|f| f.name == dev.name));
        }
        assert!(by_name("nonesuch").is_none());
    }
}
