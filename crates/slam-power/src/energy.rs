//! Run-level energy accounting.

use crate::model::{DeviceModel, FrameCost};
use serde::{Deserialize, Serialize};
use slam_kfusion::FrameWorkload;
use std::fmt;

/// Accumulated cost of a whole benchmark run on one device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunCost {
    /// Number of frames accounted.
    pub frames: usize,
    /// Total modelled compute time, seconds.
    pub seconds: f64,
    /// Total modelled energy, joules.
    pub joules: f64,
}

impl RunCost {
    /// Mean frames per second (`0` when empty).
    pub fn mean_fps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.frames as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Average power over the run, watts (`0` when empty).
    pub fn average_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }

    /// Mean energy per frame, joules (`0` when empty).
    pub fn joules_per_frame(&self) -> f64 {
        if self.frames > 0 {
            self.joules / self.frames as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for RunCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames in {:.3} s ({:.2} FPS), {:.2} J ({:.2} W avg)",
            self.frames,
            self.seconds,
            self.mean_fps(),
            self.joules,
            self.average_watts()
        )
    }
}

/// Streams per-frame workloads through a device model and accumulates the
/// run cost — the software analogue of the XU3's on-board power sensors.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    device: DeviceModel,
    cost: RunCost,
    frame_costs: Vec<FrameCost>,
}

impl EnergyMeter {
    /// Creates a meter for one device.
    pub fn new(device: DeviceModel) -> EnergyMeter {
        EnergyMeter {
            device,
            cost: RunCost::default(),
            frame_costs: Vec::new(),
        }
    }

    /// The device being metered.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Accounts one frame's workload; returns that frame's cost.
    pub fn record_frame(&mut self, workload: &FrameWorkload) -> FrameCost {
        let fc = self.device.execute_frame(workload);
        self.cost.frames += 1;
        self.cost.seconds += fc.seconds;
        self.cost.joules += fc.joules;
        self.frame_costs.push(fc.clone());
        fc
    }

    /// The accumulated run cost so far.
    pub fn run_cost(&self) -> RunCost {
        self.cost
    }

    /// Per-frame costs in order.
    pub fn frame_costs(&self) -> &[FrameCost] {
        &self.frame_costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::odroid_xu3;
    use slam_kfusion::{Kernel, Workload};

    fn frame(scale: f64) -> FrameWorkload {
        let mut f = FrameWorkload::new();
        f.record(Kernel::Track, Workload::new(1e8 * scale, 5e7 * scale));
        f.record(Kernel::Integrate, Workload::new(2e8 * scale, 1e8 * scale));
        f
    }

    #[test]
    fn meter_accumulates() {
        let mut m = EnergyMeter::new(odroid_xu3());
        m.record_frame(&frame(1.0));
        m.record_frame(&frame(1.0));
        let c = m.run_cost();
        assert_eq!(c.frames, 2);
        assert!(c.seconds > 0.0);
        assert!(c.joules > 0.0);
        assert_eq!(m.frame_costs().len(), 2);
        assert!(format!("{c}").contains("FPS"));
    }

    #[test]
    fn fps_and_watts_derivation() {
        let c = RunCost {
            frames: 10,
            seconds: 2.0,
            joules: 6.0,
        };
        assert!((c.mean_fps() - 5.0).abs() < 1e-12);
        assert!((c.average_watts() - 3.0).abs() < 1e-12);
        assert!((c.joules_per_frame() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero() {
        let c = RunCost::default();
        assert_eq!(c.mean_fps(), 0.0);
        assert_eq!(c.average_watts(), 0.0);
        assert_eq!(c.joules_per_frame(), 0.0);
    }

    #[test]
    fn identical_frames_cost_identically() {
        let mut m = EnergyMeter::new(odroid_xu3());
        let a = m.record_frame(&frame(1.0));
        let b = m.record_frame(&frame(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_workload_cheaper_run() {
        let mut big = EnergyMeter::new(odroid_xu3());
        let mut small = EnergyMeter::new(odroid_xu3());
        for _ in 0..3 {
            big.record_frame(&frame(1.0));
            small.record_frame(&frame(0.1));
        }
        assert!(small.run_cost().seconds < big.run_cost().seconds);
        assert!(small.run_cost().joules < big.run_cost().joules);
    }
}
