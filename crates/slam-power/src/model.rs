//! The device cost model.

use serde::{Deserialize, Serialize};
use slam_kfusion::{FrameWorkload, Kernel, Workload};
use std::fmt;

/// The kind of a compute unit, which decides kernel placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitKind {
    /// A high-performance CPU cluster (e.g. Cortex-A15).
    CpuBig,
    /// A low-power CPU cluster (e.g. Cortex-A7).
    CpuLittle,
    /// An OpenCL/CUDA-capable GPU.
    Gpu,
}

/// Microarchitectural kernel classes: different silicon runs them with
/// very different efficiency (a cheap mobile GPU streams TSDF updates
/// fine but collapses on divergent raycast marching, a CPU is the
/// opposite). The per-unit [`ComputeUnit::class_efficiency`] multipliers
/// express this, and are what spreads the fleet speed-ups in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelClass {
    /// Predictable streaming passes: unit conversion, pyramid,
    /// back-projection, TSDF integration.
    Streaming,
    /// Neighbourhood stencils: bilateral filter, normal estimation.
    Stencil,
    /// Divergent gather/search: raycast marching, ICP association.
    Gather,
    /// Tiny serial steps: the 6×6 solve.
    Serial,
}

impl KernelClass {
    /// The class a pipeline kernel belongs to.
    pub fn of(kernel: Kernel) -> KernelClass {
        match kernel {
            Kernel::Mm2Meters | Kernel::HalfSample | Kernel::Depth2Vertex | Kernel::Integrate => {
                KernelClass::Streaming
            }
            Kernel::BilateralFilter | Kernel::Vertex2Normal => KernelClass::Stencil,
            Kernel::Track | Kernel::Raycast => KernelClass::Gather,
            Kernel::Solve => KernelClass::Serial,
        }
    }

    /// Index into [`ComputeUnit::class_efficiency`].
    pub fn index(self) -> usize {
        match self {
            KernelClass::Streaming => 0,
            KernelClass::Stencil => 1,
            KernelClass::Gather => 2,
            KernelClass::Serial => 3,
        }
    }
}

/// One compute unit of a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeUnit {
    /// Human-readable name (e.g. `"Mali-T628 MP6"`).
    pub name: String,
    /// Unit kind.
    pub kind: UnitKind,
    /// *Sustained* arithmetic throughput on SLAM-style kernels, in Gop/s.
    /// This is deliberately far below peak FLOPS: irregular access and
    /// branching dominate these kernels.
    pub gops: f64,
    /// Sustained memory bandwidth from this unit, GB/s.
    pub bandwidth_gbps: f64,
    /// Energy per arithmetic op, nanojoules.
    pub nj_per_op: f64,
    /// Fixed dispatch overhead per kernel launch, seconds.
    pub dispatch_overhead_s: f64,
    /// Efficiency multiplier on `gops` per [`KernelClass`], indexed by
    /// [`KernelClass::index`]: `[streaming, stencil, gather, serial]`.
    /// `1.0` everywhere means the calibration in `gops` applies to all
    /// kernel shapes equally.
    pub class_efficiency: [f64; 4],
}

/// The all-ones efficiency vector.
pub const UNIFORM_EFFICIENCY: [f64; 4] = [1.0, 1.0, 1.0, 1.0];

impl ComputeUnit {
    /// Roofline execution time for a workload on this unit, seconds
    /// (excluding dispatch overhead).
    pub fn roofline_seconds(&self, w: Workload) -> f64 {
        let compute = w.ops / (self.gops * 1e9);
        let memory = w.bytes / (self.bandwidth_gbps * 1e9);
        compute.max(memory)
    }
}

/// Cost of one kernel on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// The kernel.
    pub kernel: Kernel,
    /// Modelled execution time, seconds.
    pub seconds: f64,
    /// Modelled energy, joules (dynamic only; static power is added at
    /// frame level).
    pub joules: f64,
    /// Name of the unit the parallel part ran on.
    pub unit: String,
}

/// Cost of one full frame on a device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameCost {
    /// Total frame time, seconds.
    pub seconds: f64,
    /// Total frame energy, joules (dynamic + static).
    pub joules: f64,
    /// Per-kernel breakdown.
    pub kernels: Vec<KernelCost>,
}

impl FrameCost {
    /// Average power over the frame, watts (`0` for an empty frame).
    pub fn average_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }

    /// The cost entry for one kernel, if it ran.
    pub fn kernel(&self, kernel: Kernel) -> Option<&KernelCost> {
        self.kernels.iter().find(|k| k.kernel == kernel)
    }
}

/// An embedded device: compute units, shared memory system, static power
/// and an optional DVFS scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name (e.g. `"ODROID XU3"`).
    pub name: String,
    /// SoC name (e.g. `"Exynos 5422"`).
    pub soc: String,
    /// The compute units. Must contain at least one CPU unit.
    pub units: Vec<ComputeUnit>,
    /// Energy per byte of DRAM traffic, nanojoules.
    pub nj_per_byte: f64,
    /// Static (always-on) power while the benchmark runs, watts.
    pub static_watts: f64,
    /// Whether the GPU (if any) is usable for compute (OpenCL available
    /// and functional — on many phones it is not).
    pub gpu_compute_usable: bool,
    /// DVFS frequency scale in `(0, 1]`; `1.0` = highest operating point.
    /// Throughput scales linearly, dynamic energy roughly with `f²`
    /// (voltage tracks frequency).
    pub dvfs_scale: f64,
    /// Sustained power budget in watts, if the device throttles under
    /// load (passively-cooled phones); `None` for actively-cooled boards.
    pub thermal_watts: Option<f64>,
    /// Working-set threshold in bytes: a kernel moving more than this per
    /// invocation blows the memory system's sweet spot (TLB reach, DRAM
    /// row locality) and sees its bandwidth divided by
    /// [`DeviceModel::thrash_factor`]. `f64::MAX` (the boards' value) effectively disables the
    /// effect (server/board-class memory controllers).
    pub large_kernel_bytes: f64,
    /// Bandwidth division factor for kernels beyond
    /// [`DeviceModel::large_kernel_bytes`]; `1.0` = no penalty.
    pub thrash_factor: f64,
}

impl DeviceModel {
    /// Returns the unit a kernel's parallel phase runs on: the usable GPU
    /// when the kernel is strongly parallel, otherwise the big CPU.
    pub fn placement(&self, kernel: Kernel) -> &ComputeUnit {
        if self.gpu_compute_usable && kernel.parallel_fraction() > 0.5 {
            if let Some(gpu) = self.units.iter().find(|u| u.kind == UnitKind::Gpu) {
                return gpu;
            }
        }
        self.units
            .iter()
            .find(|u| u.kind == UnitKind::CpuBig)
            .or_else(|| self.units.first())
            // xtask-allow: panic-path — reason: every DeviceModel preset populates `units`; a device with no compute units cannot execute anything
            .expect("device must have at least one unit")
    }

    /// The big-CPU unit used for serial phases.
    fn serial_unit(&self) -> &ComputeUnit {
        self.units
            .iter()
            .find(|u| u.kind == UnitKind::CpuBig)
            .or_else(|| self.units.first())
            // xtask-allow: panic-path — reason: every DeviceModel preset populates `units`; a device with no compute units cannot execute anything
            .expect("device must have at least one unit")
    }

    /// Models the execution of one kernel invocation.
    pub fn execute(&self, kernel: Kernel, w: Workload) -> KernelCost {
        let f = self.dvfs_scale.clamp(0.05, 1.0);
        let pf = kernel.parallel_fraction();
        let par_unit = self.placement(kernel);
        let ser_unit = self.serial_unit();
        let par_w = Workload::new(w.ops * pf, w.bytes * pf);
        let ser_w = Workload::new(w.ops * (1.0 - pf), w.bytes * (1.0 - pf));
        // working sets beyond the memory system's reach lose row locality
        let bw_penalty = if w.bytes > self.large_kernel_bytes {
            self.thrash_factor.max(1.0)
        } else {
            1.0
        };
        // frequency scaling slows compute but not DRAM bandwidth
        let class = KernelClass::of(kernel).index();
        let par_gops = par_unit.gops * par_unit.class_efficiency[class].max(1e-3);
        let ser_gops = ser_unit.gops * ser_unit.class_efficiency[class].max(1e-3);
        let par_t = (par_w.ops / (par_gops * 1e9 * f))
            .max(par_w.bytes * bw_penalty / (par_unit.bandwidth_gbps * 1e9))
            + par_unit.dispatch_overhead_s;
        let ser_t = (ser_w.ops / (ser_gops * 1e9 * f))
            .max(ser_w.bytes * bw_penalty / (ser_unit.bandwidth_gbps * 1e9));
        // dynamic energy: per-op on the executing unit (scaled by f² via
        // the voltage/frequency relation) + DRAM traffic
        let v2f = f * f;
        let joules = (par_w.ops * par_unit.nj_per_op * v2f
            + ser_w.ops * ser_unit.nj_per_op * v2f
            + w.bytes * self.nj_per_byte)
            * 1e-9;
        KernelCost {
            kernel,
            seconds: par_t + ser_t,
            joules,
            unit: par_unit.name.clone(),
        }
    }

    /// Models a full frame: every recorded kernel plus static energy over
    /// the frame's span.
    pub fn execute_frame(&self, frame: &FrameWorkload) -> FrameCost {
        let mut kernels = Vec::new();
        let mut seconds = 0.0;
        let mut joules = 0.0;
        for (kernel, w) in frame.iter() {
            let cost = self.execute(kernel, w);
            seconds += cost.seconds;
            joules += cost.joules;
            kernels.push(cost);
        }
        joules += self.static_watts * seconds;
        FrameCost {
            seconds,
            joules,
            kernels,
        }
    }

    /// A copy of this device at a different DVFS operating point.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not in `(0, 1]`.
    pub fn at_dvfs(&self, scale: f64) -> DeviceModel {
        assert!(scale > 0.0 && scale <= 1.0, "dvfs scale must be in (0, 1]");
        DeviceModel {
            dvfs_scale: scale,
            ..self.clone()
        }
    }

    /// Models sustained execution under the device's thermal budget: when
    /// the steady-state average power of `frame` exceeds
    /// [`DeviceModel::thermal_watts`], the governor bisects the DVFS
    /// range for the fastest operating point within the budget (average
    /// power is monotone in frequency).
    pub fn execute_frame_sustained(&self, frame: &FrameWorkload) -> FrameCost {
        let cost = self.execute_frame(frame);
        let Some(budget) = self.thermal_watts else {
            return cost;
        };
        let watts = if cost.seconds > 0.0 {
            cost.joules / cost.seconds
        } else {
            0.0
        };
        if watts <= budget {
            return cost;
        }
        let mut lo = 0.05f64;
        let mut hi = self.dvfs_scale;
        // DRAM traffic and static power do not scale with frequency, so
        // the device has a power floor; if even the lowest point exceeds
        // the budget the governor simply pins it
        let floor = self.at_dvfs(lo).execute_frame(frame);
        if floor.average_watts() > budget {
            return floor;
        }
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if self.at_dvfs(mid).execute_frame(frame).average_watts() > budget {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.at_dvfs(lo).execute_frame(frame)
    }

    /// Whether the device exposes a usable compute GPU.
    pub fn has_usable_gpu(&self) -> bool {
        self.gpu_compute_usable && self.units.iter().any(|u| u.kind == UnitKind::Gpu)
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} units{}, dvfs {:.2})",
            self.name,
            self.soc,
            self.units.len(),
            if self.has_usable_gpu() {
                ", GPU compute"
            } else {
                ""
            },
            self.dvfs_scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{odroid_xu3, raspberry_pi2};

    fn work(ops: f64, bytes: f64) -> Workload {
        Workload::new(ops, bytes)
    }

    #[test]
    fn roofline_picks_binding_resource() {
        let unit = ComputeUnit {
            name: "test".into(),
            kind: UnitKind::CpuBig,
            gops: 1.0,           // 1e9 ops/s
            bandwidth_gbps: 1.0, // 1e9 B/s
            nj_per_op: 1.0,
            dispatch_overhead_s: 0.0,
            class_efficiency: UNIFORM_EFFICIENCY,
        };
        // compute bound: 2e9 ops, 1e9 bytes → 2 s
        assert!((unit.roofline_seconds(work(2e9, 1e9)) - 2.0).abs() < 1e-12);
        // memory bound: 1e9 ops, 4e9 bytes → 4 s
        assert!((unit.roofline_seconds(work(1e9, 4e9)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_gets_parallel_kernels() {
        let dev = odroid_xu3();
        assert_eq!(dev.placement(Kernel::Integrate).kind, UnitKind::Gpu);
        // the solver is serial: stays on the CPU
        assert_eq!(dev.placement(Kernel::Solve).kind, UnitKind::CpuBig);
    }

    #[test]
    fn no_gpu_falls_back_to_cpu() {
        let mut dev = odroid_xu3();
        dev.gpu_compute_usable = false;
        assert_eq!(dev.placement(Kernel::Integrate).kind, UnitKind::CpuBig);
        assert!(!dev.has_usable_gpu());
    }

    #[test]
    fn more_work_takes_longer_and_more_energy() {
        let dev = odroid_xu3();
        let small = dev.execute(Kernel::Integrate, work(1e7, 1e7));
        let large = dev.execute(Kernel::Integrate, work(1e9, 1e9));
        assert!(large.seconds > small.seconds);
        assert!(large.joules > small.joules);
    }

    #[test]
    fn dispatch_overhead_floors_tiny_kernels() {
        let dev = odroid_xu3();
        let tiny = dev.execute(Kernel::Integrate, work(1.0, 1.0));
        let overhead = dev.placement(Kernel::Integrate).dispatch_overhead_s;
        assert!(tiny.seconds >= overhead);
    }

    #[test]
    fn dvfs_slows_and_saves_energy() {
        let dev = odroid_xu3();
        let slow = dev.at_dvfs(0.5);
        let w = work(1e9, 1e6); // compute bound
        let fast_cost = dev.execute(Kernel::Integrate, w);
        let slow_cost = slow.execute(Kernel::Integrate, w);
        assert!(slow_cost.seconds > fast_cost.seconds * 1.5);
        assert!(
            slow_cost.joules < fast_cost.joules,
            "dynamic energy drops with V²"
        );
    }

    #[test]
    #[should_panic(expected = "dvfs scale")]
    fn invalid_dvfs_panics() {
        let _ = odroid_xu3().at_dvfs(0.0);
    }

    #[test]
    fn frame_cost_accumulates_and_adds_static_power() {
        let dev = odroid_xu3();
        let mut frame = FrameWorkload::new();
        frame.record(Kernel::Track, work(1e8, 5e7));
        frame.record(Kernel::Integrate, work(2e8, 2e8));
        let cost = dev.execute_frame(&frame);
        assert_eq!(cost.kernels.len(), 2);
        let dynamic: f64 = cost.kernels.iter().map(|k| k.joules).sum();
        assert!(cost.joules > dynamic, "static energy must be included");
        assert!(cost.kernel(Kernel::Track).is_some());
        assert!(cost.kernel(Kernel::Raycast).is_none());
        assert!(cost.average_watts() > 0.0);
    }

    #[test]
    fn empty_frame_costs_nothing() {
        let dev = odroid_xu3();
        let cost = dev.execute_frame(&FrameWorkload::new());
        assert_eq!(cost.seconds, 0.0);
        assert_eq!(cost.average_watts(), 0.0);
    }

    #[test]
    fn weaker_device_is_slower() {
        let xu3 = odroid_xu3();
        let pi = raspberry_pi2();
        let mut frame = FrameWorkload::new();
        frame.record(Kernel::Integrate, work(5e8, 3e8));
        frame.record(Kernel::Track, work(2e8, 1e8));
        assert!(pi.execute_frame(&frame).seconds > xu3.execute_frame(&frame).seconds);
    }

    #[test]
    fn display_mentions_device() {
        let s = format!("{}", odroid_xu3());
        assert!(s.contains("XU3"));
        assert!(s.contains("GPU"));
    }
}
