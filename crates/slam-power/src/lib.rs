//! Analytic performance and energy models of embedded devices.
//!
//! The ISPASS'18 paper measures KinectFusion speed and power on physical
//! hardware: an ODROID XU3 development board and 83 crowdsourced Android
//! phones. This crate is the workspace's substitute for that hardware
//! (documented in `DESIGN.md`): a roofline-style cost model that maps the
//! *measured* per-kernel workload vectors produced by `slam-kfusion`
//! onto modelled execution time and energy.
//!
//! The model captures the effects the paper's studies rely on:
//!
//! * **roofline** — each kernel is compute- or bandwidth-bound depending
//!   on its arithmetic intensity and the unit it runs on,
//! * **heterogeneity** — devices have big/LITTLE CPU clusters and
//!   optionally an OpenCL-capable GPU; data-parallel kernels prefer the
//!   GPU when present (Amdahl's law covers the serial remainder),
//! * **dispatch overhead** — fixed per-kernel launch cost, which limits
//!   the benefit of shrinking work on slow drivers,
//! * **energy** — per-op and per-byte energies plus static power, so
//!   configurations that move less data use proportionally less energy
//!   and average power,
//! * **DVFS** — frequency/voltage scaling to trade speed for power.
//!
//! # Examples
//!
//! ```
//! use slam_power::devices::odroid_xu3;
//! use slam_kfusion::{FrameWorkload, Kernel, Workload};
//!
//! let device = odroid_xu3();
//! let mut frame = FrameWorkload::new();
//! frame.record(Kernel::Integrate, Workload::new(2.5e8, 1.6e8));
//! let cost = device.execute_frame(&frame);
//! assert!(cost.seconds > 0.0);
//! assert!(cost.average_watts() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod devices;
pub mod energy;
pub mod fleet;
pub mod model;

pub use energy::{EnergyMeter, RunCost};
pub use fleet::{phone_fleet, PhoneSpec};
pub use model::{ComputeUnit, DeviceModel, FrameCost, KernelCost, UnitKind};
