//! The crowdsourced phone fleet.
//!
//! The paper's Figure 3 evaluates KinectFusion on 83 Android phones and
//! tablets collected through the Play-store app. We cannot re-run that
//! crowdsourcing campaign, so this module generates a deterministic fleet
//! of 83 device models drawn from the SoC landscape of the study's era
//! (2014–2017): entry-level MediaTeks without usable GPU compute up to
//! flagship Snapdragons and Exynos parts. Per-device variation (binning,
//! thermals, RAM speed) is sampled from a seeded RNG so the fleet is
//! reproducible.

use crate::model::{ComputeUnit, DeviceModel, UnitKind};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The number of devices in the paper's crowdsourced study.
pub const FLEET_SIZE: usize = 83;

/// One phone of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneSpec {
    /// Fleet index (stable across runs).
    pub index: usize,
    /// Market tier of the SoC.
    pub tier: Tier,
    /// Installed RAM in megabytes; limits the largest TSDF volume the
    /// benchmark app can allocate on the device.
    pub ram_mb: usize,
    /// Whether this phone's OpenCL driver is fragile: it runs the stock
    /// kernel configuration but fails on the tuned configuration's
    /// non-default work sizes, forcing a CPU fallback for that run (a
    /// common failure mode of 2014-era Android OpenCL stacks).
    pub gpu_fragile: bool,
    /// The device cost model.
    pub device: DeviceModel,
}

/// SoC market tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Entry-level parts, typically without working OpenCL.
    Entry,
    /// Mid-range parts.
    Mid,
    /// Upper-mid-range parts.
    UpperMid,
    /// Flagship parts.
    Flagship,
}

impl Tier {
    /// All tiers, cheapest first.
    pub const ALL: [Tier; 4] = [Tier::Entry, Tier::Mid, Tier::UpperMid, Tier::Flagship];
}

struct SocTemplate {
    soc: &'static str,
    tier: Tier,
    cpu_gops: f64,
    gpu_gops: f64,
    bandwidth: f64,
    gpu_usable_probability: f64,
    static_watts: f64,
    /// typical RAM options shipped with this SoC, MB
    ram_choices: &'static [usize],
    /// sustained power budget range before throttling, W
    thermal_range: (f64, f64),
    /// bandwidth-collapse factor range for oversized working sets
    thrash_range: (f64, f64),
}

const SOC_TEMPLATES: &[SocTemplate] = &[
    // entry level — GPUs mostly unusable for compute
    SocTemplate {
        soc: "MediaTek MT6572",
        tier: Tier::Entry,
        cpu_gops: 0.25,
        gpu_gops: 0.5,
        bandwidth: 2.0,
        gpu_usable_probability: 0.05,
        static_watts: 0.25,
        ram_choices: &[256, 512, 768],
        thermal_range: (1.2, 2.0),
        thrash_range: (2.0, 6.0),
    },
    SocTemplate {
        soc: "MediaTek MT6582",
        tier: Tier::Entry,
        cpu_gops: 0.35,
        gpu_gops: 0.7,
        bandwidth: 2.6,
        gpu_usable_probability: 0.1,
        static_watts: 0.25,
        ram_choices: &[256, 512, 768],
        thermal_range: (1.2, 2.0),
        thrash_range: (2.0, 6.0),
    },
    SocTemplate {
        soc: "Snapdragon 200",
        tier: Tier::Entry,
        cpu_gops: 0.3,
        gpu_gops: 0.6,
        bandwidth: 2.2,
        gpu_usable_probability: 0.1,
        static_watts: 0.25,
        ram_choices: &[256, 512, 768],
        thermal_range: (1.2, 2.0),
        thrash_range: (2.0, 6.0),
    },
    SocTemplate {
        soc: "Snapdragon 400",
        tier: Tier::Entry,
        cpu_gops: 0.45,
        gpu_gops: 0.9,
        bandwidth: 3.2,
        gpu_usable_probability: 0.3,
        static_watts: 0.3,
        ram_choices: &[256, 512, 768],
        thermal_range: (1.2, 2.0),
        thrash_range: (2.0, 6.0),
    },
    // mid range
    SocTemplate {
        soc: "Snapdragon 410",
        tier: Tier::Mid,
        cpu_gops: 0.55,
        gpu_gops: 1.2,
        bandwidth: 3.8,
        gpu_usable_probability: 0.55,
        static_watts: 0.3,
        ram_choices: &[768, 1024, 1536],
        thermal_range: (1.5, 2.6),
        thrash_range: (1.5, 5.0),
    },
    SocTemplate {
        soc: "Snapdragon 615",
        tier: Tier::Mid,
        cpu_gops: 0.7,
        gpu_gops: 1.6,
        bandwidth: 4.5,
        gpu_usable_probability: 0.65,
        static_watts: 0.3,
        ram_choices: &[768, 1024, 1536],
        thermal_range: (1.5, 2.6),
        thrash_range: (1.5, 5.0),
    },
    SocTemplate {
        soc: "Exynos 5410",
        tier: Tier::Mid,
        cpu_gops: 0.9,
        gpu_gops: 1.8,
        bandwidth: 5.5,
        gpu_usable_probability: 0.6,
        static_watts: 0.35,
        ram_choices: &[768, 1024, 1536],
        thermal_range: (1.5, 2.6),
        thrash_range: (1.5, 5.0),
    },
    SocTemplate {
        soc: "Kirin 620",
        tier: Tier::Mid,
        cpu_gops: 0.6,
        gpu_gops: 1.3,
        bandwidth: 4.0,
        gpu_usable_probability: 0.5,
        static_watts: 0.3,
        ram_choices: &[768, 1024, 1536],
        thermal_range: (1.5, 2.6),
        thrash_range: (1.5, 5.0),
    },
    // upper mid
    SocTemplate {
        soc: "Snapdragon 801",
        tier: Tier::UpperMid,
        cpu_gops: 1.3,
        gpu_gops: 3.0,
        bandwidth: 8.0,
        gpu_usable_probability: 0.9,
        static_watts: 0.35,
        ram_choices: &[1536, 2048, 3072],
        thermal_range: (2.0, 3.0),
        thrash_range: (1.2, 3.0),
    },
    SocTemplate {
        soc: "Snapdragon 805",
        tier: Tier::UpperMid,
        cpu_gops: 1.5,
        gpu_gops: 3.8,
        bandwidth: 10.0,
        gpu_usable_probability: 0.9,
        static_watts: 0.4,
        ram_choices: &[1536, 2048, 3072],
        thermal_range: (2.0, 3.0),
        thrash_range: (1.2, 3.0),
    },
    SocTemplate {
        soc: "Exynos 5433",
        tier: Tier::UpperMid,
        cpu_gops: 1.6,
        gpu_gops: 3.5,
        bandwidth: 9.0,
        gpu_usable_probability: 0.8,
        static_watts: 0.4,
        ram_choices: &[1536, 2048, 3072],
        thermal_range: (2.0, 3.0),
        thrash_range: (1.2, 3.0),
    },
    // flagship
    SocTemplate {
        soc: "Snapdragon 810",
        tier: Tier::Flagship,
        cpu_gops: 2.0,
        gpu_gops: 5.5,
        bandwidth: 12.0,
        gpu_usable_probability: 0.95,
        static_watts: 0.45,
        ram_choices: &[2048, 3072, 4096],
        thermal_range: (2.2, 3.5),
        thrash_range: (1.0, 2.0),
    },
    SocTemplate {
        soc: "Snapdragon 820",
        tier: Tier::Flagship,
        cpu_gops: 2.6,
        gpu_gops: 7.5,
        bandwidth: 14.0,
        gpu_usable_probability: 0.95,
        static_watts: 0.45,
        ram_choices: &[2048, 3072, 4096],
        thermal_range: (2.2, 3.5),
        thrash_range: (1.0, 2.0),
    },
    SocTemplate {
        soc: "Exynos 7420",
        tier: Tier::Flagship,
        cpu_gops: 2.3,
        gpu_gops: 6.5,
        bandwidth: 13.0,
        gpu_usable_probability: 0.9,
        static_watts: 0.45,
        ram_choices: &[2048, 3072, 4096],
        thermal_range: (2.2, 3.5),
        thrash_range: (1.0, 2.0),
    },
    SocTemplate {
        soc: "Tegra K1 (tablet)",
        tier: Tier::Flagship,
        cpu_gops: 1.8,
        gpu_gops: 8.0,
        bandwidth: 14.5,
        gpu_usable_probability: 0.95,
        static_watts: 0.6,
        ram_choices: &[2048, 3072, 4096],
        thermal_range: (2.2, 3.5),
        thrash_range: (1.0, 2.0),
    },
];

/// Tier mix of the fleet, matching the long tail of a crowdsourced
/// sample: mostly low/mid-end devices, some flagships.
fn tier_for_index(i: usize, rng: &mut impl Rng) -> Tier {
    let r: f64 = rng.gen();
    let _ = i;
    if r < 0.28 {
        Tier::Entry
    } else if r < 0.60 {
        Tier::Mid
    } else if r < 0.82 {
        Tier::UpperMid
    } else {
        Tier::Flagship
    }
}

/// Generates the deterministic 83-phone fleet for the given seed.
///
/// The same seed always yields the same fleet; the paper's figure uses
/// seed `2018`.
pub fn phone_fleet(seed: u64) -> Vec<PhoneSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..FLEET_SIZE)
        .map(|index| {
            let tier = tier_for_index(index, &mut rng);
            let candidates: Vec<&SocTemplate> =
                SOC_TEMPLATES.iter().filter(|t| t.tier == tier).collect();
            let template = candidates[rng.gen_range(0..candidates.len())];
            // unit-to-unit variation: binning, thermals, memory clocks
            let mut vary = |base: f64| base * rng.gen_range(0.8..1.2);
            let cpu_gops = vary(template.cpu_gops);
            let gpu_gops = vary(template.gpu_gops);
            let bandwidth = vary(template.bandwidth);
            let gpu_usable = rng.gen_bool(template.gpu_usable_probability);
            let gpu_fragile = gpu_usable && rng.gen_bool(0.10);
            let ram_mb = template.ram_choices[rng.gen_range(0..template.ram_choices.len())];
            let thermal = rng.gen_range(template.thermal_range.0..template.thermal_range.1);
            let thrash = rng.gen_range(template.thrash_range.0..template.thrash_range.1);
            // Android OpenCL driver quality varies wildly: dispatch
            // overheads from tens of microseconds to milliseconds
            let dispatch = 10f64.powf(rng.gen_range(-4.0..-2.6));
            // per-device microarchitectural kernel-class efficiencies:
            // the same SoC family varies widely in how well its CPU and
            // GPU handle streaming, stencil and divergent-gather kernels
            // streaming (integrate et al.) and gather (raycast/ICP)
            // efficiencies are drawn log-uniformly and independently:
            // weak memory systems collapse on the former, divergent
            // control flow on the latter — this heterogeneity is what the
            // tuned configuration's speed-up is exposed to in Figure 3
            let cpu_eff = [
                10f64.powf(rng.gen_range(-0.7..0.0)), // streaming: 0.2..1.0
                rng.gen_range(0.5..1.0),
                10f64.powf(rng.gen_range(-0.5..0.0)), // gather: 0.32..1.0
                1.0,
            ];
            let gpu_eff = [
                10f64.powf(rng.gen_range(-0.92..0.0)), // streaming: 0.12..1.0
                rng.gen_range(0.4..1.0),
                10f64.powf(rng.gen_range(-0.52..0.0)), // gather: 0.3..1.0
                1.0,
            ];
            let device = DeviceModel {
                name: format!("phone-{index:02}"),
                soc: template.soc.into(),
                units: vec![
                    ComputeUnit {
                        name: "CPU cluster".into(),
                        kind: UnitKind::CpuBig,
                        gops: cpu_gops,
                        bandwidth_gbps: bandwidth * 0.7,
                        nj_per_op: 0.7,
                        dispatch_overhead_s: 2e-5,
                        class_efficiency: cpu_eff,
                    },
                    ComputeUnit {
                        name: "GPU".into(),
                        kind: UnitKind::Gpu,
                        gops: gpu_gops,
                        bandwidth_gbps: bandwidth,
                        nj_per_op: 0.8,
                        dispatch_overhead_s: dispatch,
                        class_efficiency: gpu_eff,
                    },
                ],
                nj_per_byte: 0.25,
                static_watts: template.static_watts,
                gpu_compute_usable: gpu_usable,
                dvfs_scale: 1.0,
                thermal_watts: Some(thermal),
                large_kernel_bytes: 64e6,
                thrash_factor: thrash,
            };
            PhoneSpec {
                index,
                tier,
                ram_mb,
                gpu_fragile,
                device,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_kfusion::{FrameWorkload, Kernel, Workload};

    #[test]
    fn fleet_has_83_phones() {
        let fleet = phone_fleet(2018);
        assert_eq!(fleet.len(), FLEET_SIZE);
        for (i, p) in fleet.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = phone_fleet(2018);
        let b = phone_fleet(2018);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_fleet() {
        let a = phone_fleet(2018);
        let b = phone_fleet(7);
        assert_ne!(a, b);
    }

    #[test]
    fn fleet_covers_all_tiers() {
        let fleet = phone_fleet(2018);
        for tier in Tier::ALL {
            assert!(
                fleet.iter().any(|p| p.tier == tier),
                "tier {tier:?} missing from fleet"
            );
        }
    }

    #[test]
    fn some_phones_lack_gpu_compute() {
        let fleet = phone_fleet(2018);
        let without: usize = fleet.iter().filter(|p| !p.device.has_usable_gpu()).count();
        let with = FLEET_SIZE - without;
        assert!(
            without >= 10,
            "expected a tail without OpenCL, got {without}"
        );
        assert!(with >= 30, "expected many GPU-capable phones, got {with}");
    }

    #[test]
    fn flagships_beat_entry_level() {
        let fleet = phone_fleet(2018);
        let mut frame = FrameWorkload::new();
        frame.record(Kernel::Integrate, Workload::new(3e8, 2e8));
        frame.record(Kernel::Track, Workload::new(1.5e8, 1e8));
        let mean_time = |tier: Tier| {
            let times: Vec<f64> = fleet
                .iter()
                .filter(|p| p.tier == tier)
                .map(|p| p.device.execute_frame(&frame).seconds)
                .collect();
            times.iter().sum::<f64>() / times.len() as f64
        };
        assert!(mean_time(Tier::Entry) > 2.0 * mean_time(Tier::Flagship));
    }

    #[test]
    fn phone_names_are_unique() {
        let fleet = phone_fleet(2018);
        let mut names: Vec<_> = fleet.iter().map(|p| p.device.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FLEET_SIZE);
    }
}
