//! Property-based tests for the device cost models.

use proptest::prelude::*;
use slam_kfusion::{FrameWorkload, Kernel, Workload};
use slam_power::devices::{all_devices, odroid_xu3};
use slam_power::fleet::phone_fleet;

fn frame(ops: f64, bytes: f64) -> FrameWorkload {
    let mut f = FrameWorkload::new();
    f.record(Kernel::Integrate, Workload::new(ops * 0.5, bytes * 0.6));
    f.record(Kernel::Track, Workload::new(ops * 0.3, bytes * 0.3));
    f.record(Kernel::Raycast, Workload::new(ops * 0.2, bytes * 0.1));
    f
}

proptest! {
    /// Cost is monotone in work: more ops and bytes never take less time
    /// or energy on any catalogue device.
    #[test]
    fn cost_monotone_in_work(ops in 1e6f64..1e9, bytes in 1e5f64..1e8, scale in 1.1f64..4.0) {
        for device in all_devices() {
            let small = device.execute_frame(&frame(ops, bytes));
            let large = device.execute_frame(&frame(ops * scale, bytes * scale));
            prop_assert!(large.seconds >= small.seconds, "{}: time", device.name);
            prop_assert!(large.joules >= small.joules, "{}: energy", device.name);
        }
    }

    /// Lower DVFS points are never faster, and dynamic energy per frame
    /// never increases when slowing down.
    #[test]
    fn dvfs_monotone(ops in 1e7f64..1e9, bytes in 1e5f64..1e7, s in 0.2f64..0.95) {
        let dev = odroid_xu3();
        let fast = dev.execute_frame(&frame(ops, bytes));
        let slow = dev.at_dvfs(s).execute_frame(&frame(ops, bytes));
        prop_assert!(slow.seconds >= fast.seconds);
        // subtract static energy before comparing dynamic parts
        let fast_dyn = fast.joules - 0.25 * fast.seconds;
        let slow_dyn = slow.joules - 0.25 * slow.seconds;
        prop_assert!(slow_dyn <= fast_dyn + 1e-9);
    }

    /// Thermal throttling never yields a run hotter than ~the budget, and
    /// never makes the frame faster.
    #[test]
    fn throttling_respects_budget(idx in 0usize..83, ops in 5e7f64..2e9, bytes in 1e6f64..3e8) {
        let fleet = phone_fleet(2018);
        let phone = &fleet[idx];
        let w = frame(ops, bytes);
        let free = phone.device.execute_frame(&w);
        let sustained = phone.device.execute_frame_sustained(&w);
        prop_assert!(sustained.seconds >= free.seconds - 1e-12);
        if let Some(budget) = phone.device.thermal_watts {
            let watts = sustained.average_watts();
            // DVFS cannot scale away DRAM traffic energy or static power,
            // so the governor can only reach the device's power floor
            let floor = phone.device.at_dvfs(0.05).execute_frame(&w).average_watts();
            prop_assert!(
                watts <= (budget * 1.10).max(floor * 1.01) + 1e-9,
                "{}: {watts:.2} W over budget {budget:.2} W (floor {floor:.2} W)",
                phone.device.name
            );
        }
    }

    /// Average power stays within physically plausible mobile bounds for
    /// every phone on every workload (no runaway parameters).
    #[test]
    fn fleet_power_plausible(idx in 0usize..83, ops in 1e7f64..1e9, bytes in 1e5f64..1e8) {
        let fleet = phone_fleet(2018);
        let phone = &fleet[idx];
        let cost = phone.device.execute_frame_sustained(&frame(ops, bytes));
        let watts = cost.average_watts();
        prop_assert!(watts > 0.05 && watts < 12.0, "{}: {watts} W", phone.device.name);
    }

    /// Kernel costs compose: a frame's time and dynamic energy equal the
    /// sums of its kernels' (plus static energy).
    #[test]
    fn frame_cost_composes(ops in 1e6f64..1e8, bytes in 1e5f64..1e7) {
        let dev = odroid_xu3();
        let w = frame(ops, bytes);
        let fc = dev.execute_frame(&w);
        let t: f64 = fc.kernels.iter().map(|k| k.seconds).sum();
        let e: f64 = fc.kernels.iter().map(|k| k.joules).sum();
        prop_assert!((fc.seconds - t).abs() < 1e-12);
        prop_assert!((fc.joules - (e + dev.static_watts * t)).abs() < 1e-9);
    }
}
