//! Plain-text table rendering for the figure-regeneration binaries.
//!
//! The paper's artefacts are figures and headline numbers; our bench
//! binaries print them as aligned text tables and simple ASCII series, so
//! a terminal diff against `EXPERIMENTS.md` is enough to check a
//! reproduction.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use slam_metrics::report::Table;
/// let mut t = Table::new(vec!["device".into(), "speedup".into()]);
/// t.row(vec!["odroid-xu3".into(), "4.8".into()]);
/// let text = t.render();
/// assert!(text.contains("odroid-xu3"));
/// assert!(text.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart: one line per `(label, value)`,
/// bars scaled to `width` characters at the maximum value.
///
/// Used for the Figure 3 speed-up distribution.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(f64::EPSILON, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bars = ((value / max) * width as f64).round().max(0.0) as usize;
        let _ = writeln!(out, "{label:<label_w$} | {} {value:.2}", "#".repeat(bars));
    }
    out
}

/// Renders an ASCII scatter plot of `(x, y)` series on a `cols`×`rows`
/// character grid. Each series gets its own glyph, in the order given.
///
/// Used for the Figure 2 runtime-vs-accuracy cloud.
pub fn scatter_plot(series: &[(&str, char, Vec<(f64, f64)>)], cols: usize, rows: usize) -> String {
    let mut all_x: Vec<f64> = Vec::new();
    let mut all_y: Vec<f64> = Vec::new();
    for (_, _, pts) in series {
        for &(x, y) in pts {
            if x.is_finite() && y.is_finite() {
                all_x.push(x);
                all_y.push(y);
            }
        }
    }
    if all_x.is_empty() {
        return String::from("(no data)\n");
    }
    let (x_min, x_max) = bounds(&all_x);
    let (y_min, y_max) = bounds(&all_y);
    let mut grid = vec![vec![' '; cols]; rows];
    for (_, glyph, pts) in series {
        for &(x, y) in pts {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = scale(x, x_min, x_max, cols);
            // y axis points up: row 0 is the top
            let cy = rows - 1 - scale(y, y_min, y_max, rows);
            grid[cy][cx] = *glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y: [{y_min:.4}, {y_max:.4}]");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}");
    }
    let _ = writeln!(out, "+{}", "-".repeat(cols));
    let _ = writeln!(out, "x: [{x_min:.4}, {x_max:.4}]");
    for (name, glyph, _) in series {
        let _ = writeln!(out, "  {glyph} = {name}");
    }
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn scale(v: f64, min: f64, max: f64, cells: usize) -> usize {
    let t = (v - min) / (max - min);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // header '1' column starts at the same offset in each row
        let pos_header = lines[0].find("long_header").unwrap();
        let pos_row = lines[2].find('1').unwrap();
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("only"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let items = vec![("a".to_string(), 1.0), ("b".to_string(), 2.0)];
        let chart = bar_chart(&items, 10);
        let lines: Vec<&str> = chart.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[1]), 10);
        assert_eq!(hashes(lines[0]), 5);
    }

    #[test]
    fn scatter_plot_contains_glyphs_and_ranges() {
        let series = vec![
            ("random", '.', vec![(0.1, 0.04), (0.3, 0.06)]),
            ("active", 'o', vec![(0.15, 0.035)]),
        ];
        let plot = scatter_plot(&series, 40, 10);
        assert!(plot.contains('o'));
        assert!(plot.contains('.'));
        assert!(plot.contains("random"));
        assert!(plot.contains("x: ["));
    }

    #[test]
    fn scatter_plot_empty_series() {
        let plot = scatter_plot(&[("none", 'x', vec![])], 10, 5);
        assert!(plot.contains("no data"));
    }

    #[test]
    fn scatter_handles_constant_values() {
        let plot = scatter_plot(&[("flat", '*', vec![(1.0, 2.0), (1.0, 2.0)])], 10, 5);
        assert!(plot.contains('*'));
    }
}
