//! TUM RGB-D trajectory format support.
//!
//! The evaluation ecosystem the paper builds on (TUM RGB-D benchmark,
//! ICL-NUIM, SLAMBench) exchanges trajectories as text files with one
//! `timestamp tx ty tz qx qy qz qw` line per pose. This module parses and
//! renders that format so runs can be exported to (or compared against)
//! the standard external tools.

use slam_math::{Quat, Se3, Vec3};
use std::fmt;

/// One timestamped pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedPose {
    /// Timestamp in seconds.
    pub timestamp: f64,
    /// Camera-to-world pose.
    pub pose: Se3,
}

/// Error from [`parse_tum`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTumError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TUM trajectory parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTumError {}

/// Renders a trajectory in TUM format. Lines are
/// `timestamp tx ty tz qx qy qz qw` with `#`-comments allowed.
pub fn to_tum(poses: &[TimedPose]) -> String {
    let mut out = String::from("# timestamp tx ty tz qx qy qz qw\n");
    for p in poses {
        let t = p.pose.translation();
        let q = p.pose.rotation_quat();
        out.push_str(&format!(
            "{:.6} {} {} {} {} {} {} {}\n",
            p.timestamp, t.x, t.y, t.z, q.x, q.y, q.z, q.w
        ));
    }
    out
}

/// Parses a TUM-format trajectory. Empty lines and `#` comments are
/// skipped.
///
/// # Errors
///
/// Returns [`ParseTumError`] on the first malformed line.
pub fn parse_tum(text: &str) -> Result<Vec<TimedPose>, ParseTumError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 8 {
            return Err(ParseTumError {
                line: i + 1,
                reason: format!("expected 8 fields, found {}", fields.len()),
            });
        }
        let mut values = [0.0f64; 8];
        for (k, f) in fields.iter().enumerate() {
            values[k] = f.parse().map_err(|_| ParseTumError {
                line: i + 1,
                reason: format!("field {k} ({f:?}) is not a number"),
            })?;
        }
        let t = Vec3::new(values[1] as f32, values[2] as f32, values[3] as f32);
        let q = Quat::new(
            values[7] as f32, // w is last in TUM order
            values[4] as f32,
            values[5] as f32,
            values[6] as f32,
        );
        if q.norm() < 1e-6 {
            return Err(ParseTumError {
                line: i + 1,
                reason: "zero quaternion".into(),
            });
        }
        out.push(TimedPose {
            timestamp: values[0],
            pose: Se3::from_quat_translation(q.normalized(), t),
        });
    }
    Ok(out)
}

/// Associates two timestamped trajectories by nearest timestamp within
/// `max_dt` seconds, returning index pairs — the association step of the
/// TUM evaluation tools.
pub fn associate(a: &[TimedPose], b: &[TimedPose], max_dt: f64) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut bi = 0usize;
    for (ai, pa) in a.iter().enumerate() {
        // advance bi to the closest b timestamp
        while bi + 1 < b.len()
            && (b[bi + 1].timestamp - pa.timestamp).abs() <= (b[bi].timestamp - pa.timestamp).abs()
        {
            bi += 1;
        }
        if bi < b.len() && (b[bi].timestamp - pa.timestamp).abs() <= max_dt {
            pairs.push((ai, bi));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TimedPose> {
        (0..5)
            .map(|i| TimedPose {
                timestamp: i as f64 / 30.0,
                pose: Se3::from_axis_angle(
                    Vec3::new(0.2, 1.0, -0.3),
                    0.1 * i as f32,
                    Vec3::new(i as f32 * 0.05, 0.0, 1.0),
                ),
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_poses() {
        let poses = sample();
        let text = to_tum(&poses);
        let back = parse_tum(&text).unwrap();
        assert_eq!(back.len(), poses.len());
        for (a, b) in poses.iter().zip(&back) {
            // timestamps are printed with 6 decimals, as the TUM tools do
            assert!((a.timestamp - b.timestamp).abs() < 5e-7);
            assert!(a.pose.translation_distance(&b.pose) < 1e-5);
            assert!(a.pose.rotation_angle_to(&b.pose) < 1e-4);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0.0 1 2 3 0 0 0 1\n# trailing\n";
        let poses = parse_tum(text).unwrap();
        assert_eq!(poses.len(), 1);
        assert_eq!(poses[0].pose.translation(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0.0 1 2 3 0 0 0 1\n0.1 nope 2 3 0 0 0 1\n";
        let err = parse_tum(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let err = parse_tum("0.0 1 2 3\n").unwrap_err();
        assert!(err.reason.contains("8 fields"));
    }

    #[test]
    fn zero_quaternion_rejected() {
        let err = parse_tum("0.0 1 2 3 0 0 0 0\n").unwrap_err();
        assert!(err.reason.contains("quaternion"));
    }

    #[test]
    fn association_by_timestamp() {
        let a = sample();
        // b runs at half rate with a small offset
        let b: Vec<TimedPose> = a
            .iter()
            .step_by(2)
            .map(|p| TimedPose {
                timestamp: p.timestamp + 0.001,
                ..*p
            })
            .collect();
        let pairs = associate(&a, &b, 0.01);
        assert_eq!(pairs.len(), 3); // a[0], a[2], a[4] match
        for (ai, bi) in pairs {
            assert!((a[ai].timestamp - b[bi].timestamp).abs() <= 0.01);
        }
    }

    #[test]
    fn association_respects_max_dt() {
        let a = sample();
        let b = vec![TimedPose {
            timestamp: 99.0,
            pose: Se3::IDENTITY,
        }];
        assert!(associate(&a, &b, 0.01).is_empty());
    }
}
