//! Accuracy and performance metrics for SLAM evaluation, following the
//! SLAMBench methodology:
//!
//! * [`mod@ate`] — absolute trajectory error (the paper's "Max ATE" axis),
//!   with optional Horn alignment as in the TUM RGB-D / ICL-NUIM tools,
//! * [`mod@rpe`] — relative pose error (drift per interval),
//! * [`timing`] — per-frame and per-kernel time aggregation and FPS,
//! * [`reconstruction`] — surface accuracy/completeness vs a reference
//!   model (the ICL-NUIM-style 3-D model evaluation),
//! * [`trajectory_io`] — TUM-format trajectory import/export,
//! * [`report`] — plain-text tables used by the figure-regeneration
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use slam_metrics::ate::{ate, AteOptions};
//! use slam_math::{Se3, Vec3};
//!
//! let gt = vec![Se3::IDENTITY, Se3::from_translation(Vec3::X)];
//! let est = vec![Se3::IDENTITY, Se3::from_translation(Vec3::new(1.0, 0.02, 0.0))];
//! let result = ate(&est, &gt, AteOptions::default()).unwrap();
//! assert!((result.max - 0.02).abs() < 1e-6);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod ate;
pub mod reconstruction;
pub mod report;
pub mod rpe;
pub mod timing;
pub mod trajectory_io;

pub use ate::{ate, AteOptions, AteResult};
pub use rpe::{rpe, RpeResult};
pub use timing::{SequenceTiming, TimingRecord};
pub use trajectory_io::{parse_tum, to_tum, TimedPose};
