//! Frame-time aggregation and FPS computation.
//!
//! Works with *modelled* device time (from `slam-power`) or wall-clock
//! time alike — both are just seconds per frame.

use serde::{Deserialize, Serialize};
use slam_math::stats::Summary;
use std::fmt;

/// One frame's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingRecord {
    /// Frame index.
    pub frame: usize,
    /// Time for the full pipeline on this frame, in seconds.
    pub seconds: f64,
}

/// Aggregated timing of a sequence run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceTiming {
    records: Vec<TimingRecord>,
}

impl SequenceTiming {
    /// Creates an empty aggregate.
    pub fn new() -> SequenceTiming {
        SequenceTiming {
            records: Vec::new(),
        }
    }

    /// Builds directly from per-frame seconds.
    pub fn from_seconds(seconds: impl IntoIterator<Item = f64>) -> SequenceTiming {
        let records = seconds
            .into_iter()
            .enumerate()
            .map(|(frame, s)| TimingRecord { frame, seconds: s })
            .collect();
        SequenceTiming { records }
    }

    /// Appends one frame's time.
    pub fn push(&mut self, seconds: f64) {
        let frame = self.records.len();
        self.records.push(TimingRecord { frame, seconds });
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The per-frame records.
    pub fn records(&self) -> &[TimingRecord] {
        &self.records
    }

    /// Total time over the sequence in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }

    /// Mean seconds per frame (`0.0` when empty).
    pub fn mean_frame_time(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_seconds() / self.records.len() as f64
        }
    }

    /// Mean frames per second (`0.0` when empty or instantaneous).
    pub fn mean_fps(&self) -> f64 {
        let t = self.mean_frame_time();
        if t > 0.0 {
            1.0 / t
        } else {
            0.0
        }
    }

    /// Worst-case (slowest) frame time in seconds.
    pub fn max_frame_time(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).fold(0.0, f64::max)
    }

    /// Fraction of frames at or above the given FPS target (e.g. `30.0`
    /// for the paper's real-time criterion).
    pub fn realtime_fraction(&self, target_fps: f64) -> f64 {
        if self.records.is_empty() || target_fps <= 0.0 {
            return 0.0;
        }
        let budget = 1.0 / target_fps;
        let ok = self.records.iter().filter(|r| r.seconds <= budget).count();
        ok as f64 / self.records.len() as f64
    }

    /// Distributional summary of the frame times.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.records.iter().map(|r| r.seconds).collect::<Vec<_>>())
    }
}

impl Default for SequenceTiming {
    fn default() -> SequenceTiming {
        SequenceTiming::new()
    }
}

impl Extend<f64> for SequenceTiming {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

impl fmt::Display for SequenceTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames, mean {:.2} ms/frame ({:.1} FPS), worst {:.2} ms",
            self.len(),
            self.mean_frame_time() * 1e3,
            self.mean_fps(),
            self.max_frame_time() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_from_frame_times() {
        let t = SequenceTiming::from_seconds([0.02, 0.02, 0.02]);
        assert!((t.mean_fps() - 50.0).abs() < 1e-9);
        assert!((t.mean_frame_time() - 0.02).abs() < 1e-12);
        assert!((t.total_seconds() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn empty_timing_is_zero() {
        let t = SequenceTiming::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_fps(), 0.0);
        assert_eq!(t.max_frame_time(), 0.0);
        assert_eq!(t.realtime_fraction(30.0), 0.0);
    }

    #[test]
    fn realtime_fraction_counts_within_budget() {
        // budget at 30 FPS is 33.3 ms
        let t = SequenceTiming::from_seconds([0.02, 0.04, 0.03, 0.05]);
        assert!((t.realtime_fraction(30.0) - 0.5).abs() < 1e-9);
        assert_eq!(t.realtime_fraction(0.0), 0.0);
    }

    #[test]
    fn push_and_extend() {
        let mut t = SequenceTiming::new();
        t.push(0.1);
        t.extend([0.2, 0.3]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].frame, 2);
        assert!((t.max_frame_time() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn summary_and_display() {
        let t = SequenceTiming::from_seconds([0.01, 0.03]);
        let s = t.summary();
        assert!((s.mean - 0.02).abs() < 1e-12);
        assert!(format!("{t}").contains("FPS"));
    }
}
