//! Relative pose error (RPE): local drift per fixed frame interval,
//! following Sturm et al. (IROS 2012).

use crate::ate::TrajectoryError;
use serde::{Deserialize, Serialize};
use slam_math::stats::Summary;
use slam_math::Se3;
use std::fmt;

/// The RPE of one run at a fixed interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpeResult {
    /// The evaluation interval in frames.
    pub interval: usize,
    /// Per-pair translational drift in metres.
    pub translation_errors: Vec<f64>,
    /// Per-pair rotational drift in radians.
    pub rotation_errors: Vec<f64>,
    /// RMS translational drift.
    pub translation_rmse: f64,
    /// Maximum translational drift.
    pub translation_max: f64,
    /// RMS rotational drift.
    pub rotation_rmse: f64,
}

impl fmt::Display for RpeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RPE(Δ={}) trans rmse={:.4} m max={:.4} m, rot rmse={:.4} rad",
            self.interval, self.translation_rmse, self.translation_max, self.rotation_rmse
        )
    }
}

/// Computes the relative pose error at the given frame `interval`.
///
/// For each index `i`, the relative motions
/// `gt_i⁻¹ · gt_{i+Δ}` and `est_i⁻¹ · est_{i+Δ}` are compared; the error
/// transform's translation norm and rotation angle are recorded.
///
/// # Errors
///
/// Returns [`TrajectoryError`] when the trajectories differ in length or
/// contain fewer than `interval + 1` poses, or when `interval` is zero.
pub fn rpe(
    estimated: &[Se3],
    ground_truth: &[Se3],
    interval: usize,
) -> Result<RpeResult, TrajectoryError> {
    if estimated.len() != ground_truth.len() {
        return Err(TrajectoryError::LengthMismatch {
            estimated: estimated.len(),
            ground_truth: ground_truth.len(),
        });
    }
    if interval == 0 || estimated.len() <= interval {
        return Err(TrajectoryError::TooShort);
    }
    let mut translation_errors = Vec::new();
    let mut rotation_errors = Vec::new();
    for i in 0..(estimated.len() - interval) {
        let rel_gt = ground_truth[i].inverse() * ground_truth[i + interval];
        let rel_est = estimated[i].inverse() * estimated[i + interval];
        let err = rel_gt.inverse() * rel_est;
        translation_errors.push(f64::from(err.translation().norm()));
        rotation_errors.push(f64::from(err.rotation_angle_to(&Se3::IDENTITY)));
    }
    let t = Summary::of(&translation_errors);
    let r = Summary::of(&rotation_errors);
    Ok(RpeResult {
        interval,
        translation_rmse: t.rms,
        translation_max: t.max,
        rotation_rmse: r.rms,
        translation_errors,
        rotation_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_math::Vec3;

    fn line(n: usize, step: f32) -> Vec<Se3> {
        (0..n)
            .map(|i| Se3::from_translation(Vec3::new(i as f32 * step, 0.0, 0.0)))
            .collect()
    }

    #[test]
    fn perfect_trajectory_has_zero_rpe() {
        let gt = line(10, 0.1);
        let r = rpe(&gt, &gt, 1).unwrap();
        assert!(r.translation_rmse < 1e-9);
        assert!(r.rotation_rmse < 1e-9);
        assert_eq!(r.translation_errors.len(), 9);
    }

    #[test]
    fn constant_offset_cancels_in_rpe() {
        // a rigid offset does not affect relative motion
        let gt = line(10, 0.1);
        let offset = Se3::from_axis_angle(Vec3::Y, 0.5, Vec3::new(1.0, 2.0, 3.0));
        let est: Vec<Se3> = gt.iter().map(|p| offset * *p).collect();
        let r = rpe(&est, &gt, 1).unwrap();
        assert!(r.translation_rmse < 1e-5, "got {}", r.translation_rmse);
    }

    #[test]
    fn speed_error_shows_in_rpe() {
        let gt = line(10, 0.1);
        let est = line(10, 0.11); // 10% too fast
        let r = rpe(&est, &gt, 1).unwrap();
        assert!((r.translation_rmse - 0.01).abs() < 1e-6);
        assert!((r.translation_max - 0.01).abs() < 1e-6);
    }

    #[test]
    fn interval_scales_drift() {
        let gt = line(20, 0.1);
        let est = line(20, 0.11);
        let r1 = rpe(&est, &gt, 1).unwrap();
        let r5 = rpe(&est, &gt, 5).unwrap();
        assert!((r5.translation_rmse - 5.0 * r1.translation_rmse).abs() < 1e-6);
    }

    #[test]
    fn rotation_error_detected() {
        let gt = line(5, 0.1);
        let est: Vec<Se3> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| *p * Se3::from_axis_angle(Vec3::Z, i as f32 * 0.01, Vec3::ZERO))
            .collect();
        let r = rpe(&est, &gt, 1).unwrap();
        assert!((r.rotation_rmse - 0.01).abs() < 1e-4);
    }

    #[test]
    fn zero_interval_rejected() {
        let gt = line(5, 0.1);
        assert_eq!(rpe(&gt, &gt, 0).unwrap_err(), TrajectoryError::TooShort);
    }

    #[test]
    fn too_short_trajectory_rejected() {
        let gt = line(3, 0.1);
        assert_eq!(rpe(&gt, &gt, 3).unwrap_err(), TrajectoryError::TooShort);
        assert!(rpe(&gt, &gt, 2).is_ok());
    }

    #[test]
    fn mismatch_rejected() {
        let a = line(4, 0.1);
        let b = line(5, 0.1);
        assert!(matches!(
            rpe(&a, &b, 1).unwrap_err(),
            TrajectoryError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn display_mentions_interval() {
        let gt = line(5, 0.1);
        let r = rpe(&gt, &gt, 2).unwrap();
        assert!(format!("{r}").contains("Δ=2"));
    }
}
